#!/usr/bin/env python3
"""Extending the library: plug in your own TLB-coherence mechanism.

This example implements "eager-batch": a middle ground between Linux and
LATR that acknowledges munmap() immediately (like LATR) but flushes remote
TLBs with one *deferred* batched IPI round per millisecond instead of
per-core sweeps -- roughly what you'd build if you wanted laziness without
touching the scheduler tick path. It reuses the library's lazy-reclamation
plumbing, so the safety invariant (no reuse before invalidation) still
holds and the invariant checkers can prove it.

Run:  python examples/custom_mechanism.py
"""

from typing import Generator, List, Optional

from repro import build_system
from repro.coherence import MECHANISMS
from repro.coherence.base import MechanismProperties, ShootdownReason, TLBCoherence
from repro.kernel.invariants import check_all
from repro.mm.addr import PAGE_SIZE, VirtRange
from repro.mm.mmstruct import MmStruct
from repro.sim.engine import MSEC, Timeout


class EagerBatchShootdown(TLBCoherence):
    """Acknowledge frees immediately; flush remotes in periodic batches."""

    name = "eager-batch"
    properties = MechanismProperties(
        asynchronous=True,
        non_ipi=False,            # still IPIs, just off the critical path
        no_remote_core_involvement=False,
        no_hardware_changes=True,
    )

    def __init__(self, batch_interval_ns: int = MSEC):
        super().__init__()
        self.batch_interval_ns = batch_interval_ns
        self._pending = []  # (mm, vrange, pfns, vrange_to_free, targets)

    def start(self) -> None:
        self.kernel.sim.spawn(self._flusher(), name="eager-batch-flusher")

    def shootdown_free(self, core, mm, vrange, pfns, vrange_to_free) -> Generator:
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        if not targets:
            self.kernel.release_frames(pfns)
            if vrange_to_free is not None:
                mm.release_vrange(vrange_to_free)
            return
        # Park the memory (reuse MmStruct's lazy lists) and return at once.
        mm.defer_frames(list(pfns))
        if vrange_to_free is not None:
            mm.defer_vrange(vrange_to_free)
        self._pending.append((core, mm, vrange, list(pfns), vrange_to_free, targets))
        self._stats.counter("eagerbatch.deferred").add()
        self._stats.rate("shootdowns").hit()

    def migration_unmap(self, core, mm, vrange, apply_pte_change) -> Generator:
        # Keep migrations synchronous for simplicity: apply + IPI round.
        apply_pte_change()
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        yield from self.ipi_round(core, mm, vrange, targets, ShootdownReason.MIGRATION)
        from repro.sim.engine import Signal

        return Signal(self.kernel.sim).succeed(None)

    def _flusher(self) -> Generator:
        while True:
            yield Timeout(self.batch_interval_ns)
            batch, self._pending = self._pending, []
            for core, mm, vrange, pfns, vrange_to_free, targets in batch:
                live = [t for t in targets if not t.lazy_tlb_mode]
                _, acked = self.kernel.machine.interconnect.multicast_ipi(
                    core,
                    live,
                    self._lat.ipi_handler(
                        vrange.n_pages, self.kernel.machine.spec.full_flush_threshold
                    ),
                )
                for target in live:
                    target.tlb.invalidate_range(mm.pcid, vrange.vpn_start, vrange.vpn_end)
                yield acked
                mm.take_lazy_frames(pfns)
                self.kernel.release_frames(pfns)
                if vrange_to_free is not None:
                    mm.reclaim_vrange(vrange_to_free)
                self._stats.counter("eagerbatch.flushed").add()


def main():
    # Register it like a built-in and run the quickstart scenario.
    MECHANISMS["eager-batch"] = EagerBatchShootdown

    results = {}
    for mech in ("linux", "eager-batch", "latr"):
        system = build_system(mech, cores=16)
        kernel = system.kernel
        proc = kernel.create_process("demo")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(16)]
        out = {}

        def scenario():
            t0, c0 = tasks[0], kernel.machine.core(0)
            total = 0
            for _ in range(20):
                vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
                for task in tasks:
                    core = kernel.machine.core(task.home_core_id)
                    yield from kernel.syscalls.touch_pages(task, core, vrange, write=True)
                start = system.sim.now
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                total += system.sim.now - start
            out["munmap_us"] = total / 20 / 1000

        system.sim.spawn(scenario())
        system.sim.run(until=100 * MSEC)
        violations = check_all(kernel)
        results[mech] = (out["munmap_us"], kernel.stats.counter("ipi.sent").value, violations)

    print(f"{'mechanism':>14}{'munmap us':>12}{'IPIs':>8}{'invariants':>12}")
    for mech, (us, ipis, violations) in results.items():
        status = "OK" if not violations else f"{len(violations)} BAD"
        print(f"{mech:>14}{us:>12.2f}{ipis:>8}{status:>12}")
    print("\neager-batch gets LATR-like munmap latency but still burns IPIs; "
          "LATR's sweeps avoid even those. Both pass the reuse-safety checker.")


if __name__ == "__main__":
    main()
