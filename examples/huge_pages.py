#!/usr/bin/env python3
"""Transparent huge pages under lazy translation coherence (paper section 7).

Two demonstrations:

1. khugepaged collapses a 4 KiB-populated 2 MiB range into one PD-level
   entry -- a migration-class operation that LATR performs without IPIs,
   freeing the 512 old frames only after every core has invalidated.
2. Unmapping 2 MiB shared by 16 cores: 512 base pages vs one huge page
   (the mitigation Figure 8's discussion points at).

Run:  python examples/huge_pages.py
"""

from repro import build_system
from repro.kernel.thp import Khugepaged
from repro.mm.addr import HUGE_PAGE_PAGES, HUGE_PAGE_SIZE, PAGE_SIZE
from repro.sim.engine import MSEC


def demo_collapse():
    print("=== khugepaged collapse under LATR ===")
    system = build_system("latr", cores=4)
    kernel = system.kernel
    khugepaged = Khugepaged.install(kernel, scan_period_ns=5 * MSEC)
    proc = kernel.create_process("app")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]
    khugepaged.register(proc)

    def setup():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, HUGE_PAGE_SIZE)
        yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
        print(f"  mapped {vrange.n_pages} x 4KiB pages "
              f"({len(proc.mm.page_table)} PTEs, 0 huge)")

    system.sim.spawn(setup())
    system.sim.run(until=40 * MSEC)
    stats = kernel.stats
    print(f"  after khugepaged: {len(proc.mm.page_table)} 4KiB PTEs, "
          f"{proc.mm.page_table.huge_count()} huge mapping(s)")
    print(f"  collapses: {stats.counter('thp.collapses').value}, "
          f"old frames freed after lazy invalidation: "
          f"{stats.counter('thp.frames_freed').value}, "
          f"IPIs sent: {stats.counter('ipi.sent').value}")
    print()


def demo_unmap_cost():
    print("=== unmapping 2 MiB shared by 16 cores ===")
    print(f"{'mapping':>22}{'linux us':>12}{'latr us':>12}")
    for label, huge in (("512 x 4KiB pages", False), ("1 x 2MiB huge page", True)):
        row = [f"{label:>22}"]
        for mech in ("linux", "latr"):
            system = build_system(mech, cores=16)
            kernel = system.kernel
            proc = kernel.create_process("demo")
            tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(16)]
            out = {}

            def body():
                t0, c0 = tasks[0], kernel.machine.core(0)
                vrange = yield from kernel.syscalls.mmap(t0, c0, HUGE_PAGE_SIZE, huge=huge)
                for t in tasks:
                    core = kernel.machine.core(t.home_core_id)
                    yield from kernel.syscalls.touch_pages(t, core, vrange)
                start = system.sim.now
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                out["us"] = (system.sim.now - start) / 1000

            system.sim.spawn(body())
            system.sim.run(until=2000 * MSEC)
            row.append(f"{out['us']:>12.2f}")
        print("".join(row))
    print("\nA huge page turns 512 PTE clears + invalidations into one entry;")
    print("LATR additionally keeps the remote shootdown off the critical path.")


if __name__ == "__main__":
    demo_collapse()
    demo_unmap_cost()
