#!/usr/bin/env python3
"""Quickstart: boot a simulated machine and compare one munmap() under the
synchronous Linux shootdown vs LATR's lazy mechanism.

Run:  python examples/quickstart.py
"""

from repro import build_system
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC


def measure_munmap(mechanism: str, cores: int = 16, pages: int = 1) -> dict:
    """Map a buffer, share it across all cores, munmap it; report timing."""
    system = build_system(mechanism, machine="commodity-2s16c", cores=cores)
    kernel = system.kernel

    # One process with a thread pinned on every core (so every core's TLB
    # can cache the mapping -- the shootdown has to reach them all).
    proc = kernel.create_process("demo")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(cores)]
    out = {}

    def scenario():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, pages * PAGE_SIZE)
        for task in tasks:
            core = kernel.machine.core(task.home_core_id)
            yield from kernel.syscalls.touch_pages(task, core, vrange, write=True)

        start = system.sim.now
        yield from kernel.syscalls.munmap(t0, c0, vrange)
        out["munmap_us"] = (system.sim.now - start) / 1000

    system.sim.spawn(scenario())
    system.sim.run(until=10 * MSEC)  # a few scheduler ticks

    out["ipis_sent"] = kernel.stats.counter("ipi.sent").value
    out["latr_states"] = kernel.stats.counter("latr.states_posted").value
    out["shootdown_us"] = kernel.stats.latency("shootdown.free").mean / 1000
    return out


def main():
    print("One munmap() of a page shared by 16 cores (2-socket machine):\n")
    linux = measure_munmap("linux")
    latr = measure_munmap("latr")
    print(f"{'':24}{'Linux':>12}{'LATR':>12}")
    print(f"{'munmap latency (us)':24}{linux['munmap_us']:>12.2f}{latr['munmap_us']:>12.2f}")
    print(f"{'shootdown part (us)':24}{linux['shootdown_us']:>12.2f}{latr['shootdown_us']:>12.2f}")
    print(f"{'IPIs sent':24}{linux['ipis_sent']:>12}{latr['ipis_sent']:>12}")
    print(f"{'LATR states posted':24}{linux['latr_states']:>12}{latr['latr_states']:>12}")
    improvement = 100 * (1 - latr["munmap_us"] / linux["munmap_us"])
    print(f"\nLATR removes the IPI round from the critical path: "
          f"{improvement:.1f}% faster munmap (paper: 70.8%).")


if __name__ == "__main__":
    main()
