#!/usr/bin/env python3
"""The other migration-class operations from Table 1: page swap, KSM
deduplication, and compaction -- all lazy under LATR.

Each daemon changes live PTEs; under LATR the change is deferred into a
state, applied by the first sweeping core, and the displaced frame is
freed only after every core has invalidated (the completion signal). Watch
the IPI counter stay at zero.

Run:  python examples/migration_daemons.py
"""

from repro import build_system
from repro.kernel.compaction import Compactor
from repro.kernel.ksm import KsmDaemon
from repro.kernel.swapd import SwapDevice
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC


def main():
    system = build_system("latr", cores=4)
    kernel = system.kernel
    SwapDevice.install(kernel)
    ksm = KsmDaemon.install(kernel, scan_period_ns=5 * MSEC)
    compactor = Compactor.install(kernel)

    proc_a = kernel.create_process("a")
    proc_b = kernel.create_process("b")
    tasks_a = [kernel.spawn_thread(proc_a, f"t{i}", i) for i in range(2)]
    task_b = kernel.spawn_thread(proc_b, "t0", 2)
    ksm.register(proc_a)
    ksm.register(proc_b)
    compactor.register(proc_a)
    compactor.register(proc_b)

    def scenario():
        t0, c0 = tasks_a[0], kernel.machine.core(0)
        c2 = kernel.machine.core(2)

        # --- dedup: identical pages in two different processes -----------
        ra = yield from kernel.syscalls.mmap(t0, c0, 3 * PAGE_SIZE)
        rb = yield from kernel.syscalls.mmap(task_b, c2, 3 * PAGE_SIZE)
        for i in range(3):
            yield from kernel.syscalls.write_with_content(
                t0, c0, ra.start + i * PAGE_SIZE, tag="config-blob"
            )
            yield from kernel.syscalls.write_with_content(
                task_b, c2, rb.start + i * PAGE_SIZE, tag="config-blob"
            )
        frames_before = kernel.frames.allocated_count()
        print(f"6 identical pages in 2 processes: {frames_before} frames allocated")

        # --- swap: push a cold region out --------------------------------
        cold = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
        yield from kernel.syscalls.touch_pages(t0, c0, cold, write=True)
        yield from kernel.syscalls.touch_pages(tasks_a[1], kernel.machine.core(1), cold)
        swapped = yield from kernel.swap.swap_out_pages(t0, c0, cold)
        print(f"swapped out {swapped} cold pages (lazy unmap posted)")

        # --- compaction: evacuate an aligned block -----------------------
        moved = yield from kernel.compactor.compact_node(0, max_pages=64)
        print(f"compaction relocated {moved} pages out of one 2MiB block")

        # touch the swapped region again: swap-in faults
        yield from kernel.syscalls.touch_pages(t0, c0, cold)

    system.sim.spawn(scenario())
    system.sim.run(until=60 * MSEC)

    stats = kernel.stats
    print(f"\nafter the daemons settled:")
    print(f"  ksm pages merged:   {stats.counter('ksm.pages_merged').value} "
          f"(frames freed: {stats.counter('ksm.frames_freed').value})")
    print(f"  swap writes/reads:  {stats.counter('swap.writes').value}/"
          f"{stats.counter('swap.ins').value}")
    print(f"  frames now:         {kernel.frames.allocated_count()}")
    print(f"  IPIs sent:          {stats.counter('ipi.sent').value}  "
          "<- only KSM's write-protect (ownership change: must stay sync)")

    from repro.kernel.invariants import check_all
    violations = check_all(kernel)
    print(f"  safety invariants:  {'OK' if not violations else violations}")


if __name__ == "__main__":
    main()
