#!/usr/bin/env python3
"""Trace a burst of munmaps through LATR's machinery, event by event.

Attaches a Tracer to the kernel and prints the merged timeline: state
posts on the initiating core, sweeps on the remote cores (batched full
flushes once enough states pile up), and the reclamation daemon freeing
two ticks later.

Run:  python examples/trace_explorer.py
"""

from repro import build_system
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC
from repro.sim.trace import Tracer


def main():
    system = build_system("latr", cores=4)
    tracer = Tracer(system.sim)
    system.kernel.tracer = tracer
    kernel = system.kernel

    proc = kernel.create_process("app")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]

    def burst():
        t0, c0 = tasks[0], kernel.machine.core(0)
        for _ in range(5):
            vrange = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            yield from c0.execute(50_000)

    system.sim.spawn(burst())
    system.sim.run(until=5 * MSEC)

    print("LATR event timeline (5 munmaps of pages shared by 4 cores):\n")
    print(tracer.dump(limit=60))
    print("\nEvent counts:", tracer.counts())
    print("\nReading the trace: every state.post returns control to the app in")
    print("~150 ns; each remote core's sweep batches all pending states into")
    print("one pass at its tick; reclaim events land two ticks after posting.")


if __name__ == "__main__":
    main()
