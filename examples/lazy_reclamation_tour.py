#!/usr/bin/env python3
"""A guided tour of one LATR state's lifecycle (paper sections 3, 4.1, 4.2).

Follows a single munmap() of a page shared by four cores:

  1. the state is posted (132 ns) instead of sending IPIs,
  2. the freed memory parks on the mm's lazy lists,
  3. each remote core invalidates at its own scheduler tick,
  4. the state deactivates when the bitmask empties,
  5. the background daemon frees the memory two ticks after posting,
  6. only then can the virtual range be mmap()ed again.

Run:  python examples/lazy_reclamation_tour.py
"""

from repro import build_system
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC


def main():
    system = build_system("latr", cores=4)
    kernel = system.kernel
    coherence = kernel.coherence
    proc = kernel.create_process("app")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]
    box = {}

    def scenario():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
        for task in tasks:
            core = kernel.machine.core(task.home_core_id)
            yield from kernel.syscalls.touch_pages(task, core, vrange, write=True)
        print(f"[t={system.sim.now/1e6:6.3f} ms] page mapped & cached in all 4 TLBs")
        yield from kernel.syscalls.munmap(t0, c0, vrange)
        box["vrange"] = vrange
        print(f"[t={system.sim.now/1e6:6.3f} ms] munmap returned to the application")

    system.sim.spawn(scenario())
    system.sim.run(until=1)
    while "vrange" not in box:
        system.sim.step()

    state = coherence._pending_reclaim[-1]
    vrange = box["vrange"]
    print(f"           LATR state: range={vrange.start:#x}, "
          f"bitmask={sorted(state.cpu_bitmask)}, flag={state.flag.value}")
    print(f"           lazy frames pinned: {proc.mm.lazy_frames} "
          f"(refcounts keep them unreusable)")

    # Watch the bitmask drain as each core's tick sweeps.
    last = set(state.cpu_bitmask)
    while state.active:
        system.sim.step()
        if set(state.cpu_bitmask) != last:
            gone = last - set(state.cpu_bitmask)
            last = set(state.cpu_bitmask)
            print(f"[t={system.sim.now/1e6:6.3f} ms] core {sorted(gone)} swept & "
                  f"invalidated; bitmask now {sorted(last)}")
    print(f"[t={state.completed_at/1e6:6.3f} ms] state deactivated (last core cleared it)")

    while not state.reclaimed:
        system.sim.step()
    print(f"[t={system.sim.now/1e6:6.3f} ms] background daemon reclaimed the memory "
          f"(>= 2 ticks after posting)")
    print(f"           lazy frames now: {proc.mm.lazy_frames}")

    # Show that the virtual range is reusable again.
    def remap():
        t0, c0 = tasks[0], kernel.machine.core(0)
        again = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
        print(f"[t={system.sim.now/1e6:6.3f} ms] mmap reuses the range: "
              f"{again.start:#x} == {vrange.start:#x} -> {again == vrange}")

    system.sim.spawn(remap())
    system.sim.run(until=system.sim.now + MSEC)


if __name__ == "__main__":
    main()
