#!/usr/bin/env python3
"""The paper's headline experiment (Figure 9) as a runnable example:
Apache serving a 10 KB static page under three TLB-coherence mechanisms.

Each request mmap()s the file, serves it, munmap()s it -- one shootdown per
request. Watch Linux stop scaling once the synchronous shootdown saturates
mmap_sem, ABIS trade IPIs for tracking overhead, and LATR scale through.

Run:  python examples/webserver_showdown.py [--cores 12] [--duration-ms 80]
"""

import argparse

from repro.workloads.apache import ApacheConfig, ApacheWorkload


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cores", type=int, default=12)
    parser.add_argument("--duration-ms", type=int, default=80)
    args = parser.parse_args()

    core_counts = sorted({2, max(2, args.cores // 2), args.cores})
    mechanisms = ("linux", "abis", "latr")

    print(f"Apache throughput (requests/sec), duration {args.duration_ms} ms\n")
    header = f"{'cores':>6}" + "".join(f"{m:>12}" for m in mechanisms)
    print(header)
    print("-" * len(header))
    results = {}
    for cores in core_counts:
        row = [f"{cores:>6}"]
        for mech in mechanisms:
            result = ApacheWorkload(
                ApacheConfig(cores=cores, duration_ms=args.duration_ms, warmup_ms=15)
            ).run(mech)
            results[(cores, mech)] = result
            row.append(f"{result.metric('requests_per_sec'):>12,.0f}")
        print("".join(row))

    top = args.cores
    linux = results[(top, "linux")].metric("requests_per_sec")
    abis = results[(top, "abis")].metric("requests_per_sec")
    latr = results[(top, "latr")].metric("requests_per_sec")
    print(f"\nAt {top} cores LATR beats Linux by {100 * (latr / linux - 1):.1f}% "
          f"(paper: 59.9%) and ABIS by {100 * (latr / abis - 1):.1f}% (paper: 37.9%).")
    print("\nWhy: per-request shootdown cost sits inside mmap_sem. Breakdown at "
          f"{top} cores:")
    for mech in mechanisms:
        r = results[(top, mech)]
        ipis = r.counters.get("ipi.sent", 0)
        states = r.counters.get("latr.states_posted", 0)
        print(f"  {mech:>10}: {ipis:>8} IPIs, {states:>8} LATR states, "
              f"{r.metric('shootdowns_per_sec'):>10,.0f} shootdowns/s")


if __name__ == "__main__":
    main()
