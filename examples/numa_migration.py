#!/usr/bin/env python3
"""AutoNUMA page migration under lazy translation coherence (paper 4.3).

A worker on socket 1 hammers a page that physically lives on socket 0.
AutoNUMA samples the page (write-protecting it with PROT_NONE), the worker's
next touches fault, and after two remote-node faults the page migrates.

Under Linux the sampling pays a synchronous IPI shootdown; under LATR the
PTE change itself is deferred to the first sweeping core and the migration
is gated until every core has invalidated (the section 4.4 rule).

Run:  python examples/numa_migration.py
"""

from repro import build_system
from repro.kernel.autonuma import AutoNuma
from repro.mm.addr import PAGE_SIZE
from repro.sim.engine import MSEC


def run(mechanism: str) -> dict:
    system = build_system(mechanism, machine="commodity-2s16c", cores=16)
    kernel = system.kernel
    autonuma = AutoNuma.install(
        kernel, scan_period_ns=2 * MSEC, scan_pages_per_round=4, chunk_pages=1
    )
    proc = kernel.create_process("app")
    main_task = kernel.spawn_thread(proc, "main", 0)      # socket 0
    worker_task = kernel.spawn_thread(proc, "worker", 8)  # socket 1
    log = []

    def scenario():
        c0 = kernel.machine.core(0)
        c8 = kernel.machine.core(8)
        vrange = yield from kernel.syscalls.mmap(main_task, c0, PAGE_SIZE)
        yield from kernel.syscalls.touch_pages(main_task, c0, vrange, write=True)
        pte = proc.mm.page_table.walk(vrange.vpn_start)
        log.append(f"t={system.sim.now/1e6:7.3f} ms  page allocated on node "
                   f"{kernel.frames.node_of(pte.pfn)} (first touch by main on core 0)")
        autonuma.register(proc)

        while kernel.stats.counter("numa.migrations").value == 0:
            yield from kernel.syscalls.touch_pages(
                worker_task, c8, vrange, process_data=True
            )
            yield from c8.execute(150_000)
            if system.sim.now > 400 * MSEC:
                raise RuntimeError("no migration")
        pte = proc.mm.page_table.walk(vrange.vpn_start)
        log.append(f"t={system.sim.now/1e6:7.3f} ms  page migrated to node "
                   f"{kernel.frames.node_of(pte.pfn)} (worker runs on core 8 / node 1)")

    system.sim.spawn(scenario())
    system.sim.run(until=500 * MSEC)

    stats = kernel.stats
    return {
        "log": log,
        "samples": stats.counter("numa.pages_sampled").value,
        "hint_faults": stats.counter("numa.hint_faults").value,
        "gate_waits": stats.counter("numa.gate_waits").value,
        "ipis": stats.counter("ipi.sent").value,
        "latr_states": stats.counter("latr.migration_states").value,
    }


def main():
    for mech in ("linux", "latr"):
        print(f"=== {mech} ===")
        result = run(mech)
        for line in result["log"]:
            print(" ", line)
        print(f"  pages sampled: {result['samples']}, hint faults: {result['hint_faults']}")
        print(f"  IPIs for sampling: {result['ipis']}, LATR migration states: "
              f"{result['latr_states']}, gate waits: {result['gate_waits']}")
        print()
    print("LATR samples without a single IPI; the migration waits (gate) until "
          "every core swept -- correctness per paper section 4.4.")


if __name__ == "__main__":
    main()
