"""Benchmark-harness helpers.

Each benchmark regenerates one paper table/figure (fast mode), prints the
same rows/series the paper reports, and asserts the figure's directional
claim. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def regenerate(benchmark, exp_id, fast=True):
    """Run one experiment under pytest-benchmark and print its table."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(exp_id,), kwargs={"fast": fast}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.rows, f"{exp_id} produced no rows"
    return result
