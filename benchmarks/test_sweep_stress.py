"""Benchmark the simulator hot paths on the paper's 120-core machine.

Times the sweep-stress microbench with the active-state index on and off
(the indexed run must be at least 2x faster), the engine-stress microbench
with the timer wheel on and off (identical event order, wheel faster), and
the invalidate-stress microbench with the per-pcid TLB index on and off
(identical final state, at least 2x faster) -- the same gates the
wall-clock harness records in BENCH_*.json. The sweep-stress case is also
held to >= 3x the events/sec of the committed pre-wheel baseline.
"""

import gc
import json
import os
import time

#: The committed pre-timer-wheel baseline this PR's 3x target is measured
#: against (see EXPERIMENTS.md).
BASELINE_FILE = "BENCH_20260806-190159.json"
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def test_sweep_stress_index_speedup(benchmark):
    from repro.bench import SWEEP_STRESS_MS, run_sweep_stress

    started = time.perf_counter()
    full_summary = run_sweep_stress(SWEEP_STRESS_MS, use_sweep_index=False)
    full_wall = time.perf_counter() - started

    started = time.perf_counter()
    indexed_summary = benchmark.pedantic(
        run_sweep_stress,
        args=(SWEEP_STRESS_MS,),
        kwargs={"use_sweep_index": True},
        rounds=1,
        iterations=1,
    )
    indexed_wall = time.perf_counter() - started

    print(
        f"\nsweep-stress-120c: indexed {indexed_wall:.2f}s, "
        f"full scan {full_wall:.2f}s, speedup {full_wall / indexed_wall:.2f}x"
    )
    assert indexed_summary == full_summary, "index changed a modelled result"
    assert full_wall >= 2.0 * indexed_wall, (
        f"sweep index speedup below 2x: {full_wall / indexed_wall:.2f}x"
    )


def test_sweep_stress_beats_prewheel_baseline():
    """The tentpole gate: >= 3x the events/sec of the committed pre-wheel
    baseline BENCH file (best of three, wall-clock timing is noisy)."""
    from repro.bench import SWEEP_STRESS_MS, run_sweep_stress
    from repro.sim.engine import Simulator

    path = os.path.join(RESULTS_DIR, BASELINE_FILE)
    with open(path) as fh:
        baseline = json.load(fh)
    base_eps = baseline["cases"]["sweep-stress-120c"]["events_per_sec"]

    best_eps = 0.0
    for _ in range(3):
        # Earlier tests in this file leave the cyclic GC primed mid-cycle;
        # collect so each round times the workload, not the leftovers.
        gc.collect()
        events_before = Simulator.total_events_executed
        started = time.perf_counter()
        run_sweep_stress(SWEEP_STRESS_MS, use_sweep_index=True)
        wall = time.perf_counter() - started
        events = Simulator.total_events_executed - events_before
        best_eps = max(best_eps, events / wall)

    print(
        f"\nsweep-stress-120c: {best_eps:,.0f} events/s vs baseline "
        f"{base_eps:,.0f} ({best_eps / base_eps:.2f}x)"
    )
    assert best_eps >= 3.0 * base_eps, (
        f"sweep-stress below 3x pre-wheel baseline: {best_eps / base_eps:.2f}x"
    )


def test_engine_stress_wheel_speedup(benchmark):
    """Timer wheel vs binary heap on pure event-loop churn: byte-identical
    (time, seq) execution order, and the wheel must not be slower."""
    from repro.bench import ENGINE_STRESS_EVENTS, run_engine_stress

    started = time.perf_counter()
    _sim, heap_order = run_engine_stress(
        ENGINE_STRESS_EVENTS, use_timer_wheel=False, record_order=True
    )
    heap_wall = time.perf_counter() - started

    started = time.perf_counter()
    _sim, wheel_order = benchmark.pedantic(
        run_engine_stress,
        args=(ENGINE_STRESS_EVENTS,),
        kwargs={"use_timer_wheel": True, "record_order": True},
        rounds=1,
        iterations=1,
    )
    wheel_wall = time.perf_counter() - started

    print(
        f"\nengine-stress: wheel {wheel_wall:.2f}s, heap {heap_wall:.2f}s, "
        f"speedup {heap_wall / wheel_wall:.2f}x"
    )
    assert wheel_order == heap_order, "timer wheel changed the event order"
    assert heap_wall >= 1.1 * wheel_wall, (
        f"timer wheel speedup below 1.1x: {heap_wall / wheel_wall:.2f}x"
    )


def test_invalidate_stress_index_speedup(benchmark):
    """Per-pcid TLB index vs linear scan: identical final TLB state, and
    the indexed run must be at least 2x faster."""
    from repro.bench import INVALIDATE_STRESS_OPS, run_invalidate_stress

    started = time.perf_counter()
    scan_result = run_invalidate_stress(INVALIDATE_STRESS_OPS, use_index=False)
    scan_wall = time.perf_counter() - started

    started = time.perf_counter()
    indexed_result = benchmark.pedantic(
        run_invalidate_stress,
        args=(INVALIDATE_STRESS_OPS,),
        kwargs={"use_index": True},
        rounds=1,
        iterations=1,
    )
    indexed_wall = time.perf_counter() - started

    print(
        f"\ninvalidate-stress: indexed {indexed_wall:.2f}s, "
        f"scan {scan_wall:.2f}s, speedup {scan_wall / indexed_wall:.2f}x"
    )
    assert indexed_result == scan_result, "TLB index changed observable state"
    assert scan_wall >= 2.0 * indexed_wall, (
        f"TLB index speedup below 2x: {scan_wall / indexed_wall:.2f}x"
    )
