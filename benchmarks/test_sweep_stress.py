"""Benchmark the LATR sweep hot path on the paper's 120-core machine.

Times the sweep-stress microbench with the active-state index on and off;
the indexed run must be at least 2x faster (the same gate the wall-clock
harness records in BENCH_*.json).
"""

import time


def test_sweep_stress_index_speedup(benchmark):
    from repro.bench import SWEEP_STRESS_MS, run_sweep_stress

    started = time.perf_counter()
    full_summary = run_sweep_stress(SWEEP_STRESS_MS, use_sweep_index=False)
    full_wall = time.perf_counter() - started

    started = time.perf_counter()
    indexed_summary = benchmark.pedantic(
        run_sweep_stress,
        args=(SWEEP_STRESS_MS,),
        kwargs={"use_sweep_index": True},
        rounds=1,
        iterations=1,
    )
    indexed_wall = time.perf_counter() - started

    print(
        f"\nsweep-stress-120c: indexed {indexed_wall:.2f}s, "
        f"full scan {full_wall:.2f}s, speedup {full_wall / indexed_wall:.2f}x"
    )
    assert indexed_summary == full_summary, "index changed a modelled result"
    assert full_wall >= 2.0 * indexed_wall, (
        f"sweep index speedup below 2x: {full_wall / indexed_wall:.2f}x"
    )
