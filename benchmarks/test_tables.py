"""Benchmarks regenerating Tables 1-5 and the design-figure timelines."""

from conftest import regenerate


def test_tab1_operation_classes(benchmark):
    result = regenerate(benchmark, "tab1")
    lazy = {row[0]: row[2] for row in result.rows}
    assert lazy["munmap(): unmap address range"] == "yes"
    assert lazy["mprotect(): change page permission"] == "no"


def test_tab2_mechanism_properties(benchmark):
    result = regenerate(benchmark, "tab2")
    latr_row = next(row for row in result.rows if row[0] == "LATR")
    assert all(cell == "yes" for cell in latr_row[1:])


def test_tab3_machines(benchmark):
    result = regenerate(benchmark, "tab3")
    cores = {row[0]: row[2] for row in result.rows}
    assert cores["commodity-2s16c"] == 16
    assert cores["large-numa-8s120c"] == 120


def test_tab4_llc_miss_ratio(benchmark):
    result = regenerate(benchmark, "tab4")
    for label, linux_pct, latr_pct, rel in result.rows:
        # Paper Table 4: relative changes within a few percent, LATR never
        # meaningfully worse (its states occupy <1% of the LLC).
        assert rel < 1.0, f"{label}: {rel}%"
        assert abs(rel) < 3.5, f"{label}: {rel}%"


def test_tab5_operation_breakdown(benchmark):
    result = regenerate(benchmark, "tab5")
    by_name = {row[0]: row for row in result.rows}
    save = by_name["saving a LATR state (ns)"][1]
    per_state = by_name["LATR state sweep, per state (ns)"][1]
    linux_sd = by_name["single Linux shootdown (ns)"][1]
    assert abs(save - 132.3) < 5
    assert 100 < per_state < 400  # paper: 158 ns
    assert linux_sd > 1000  # paper: 1594 ns
    reduction = by_name["LATR reduction of shootdown time (%)"][1]
    assert reduction > 60.0  # paper: 81.8%


def test_fig2_munmap_timeline(benchmark):
    result = regenerate(benchmark, "fig2")
    latr_events = {row[1]: row[2] for row in result.rows if row[0] == "latr"}
    linux_events = {row[1]: row[2] for row in result.rows if row[0] == "linux"}
    # LATR's munmap returns before Linux's and the sweep happens ~1 tick in.
    assert latr_events["munmap() returns (app resumes)"] < linux_events[
        "munmap() returns (app resumes)"
    ]
    assert 100 < latr_events["last remote core swept + invalidated"] < 1100


def test_fig3_autonuma_timeline(benchmark):
    result = regenerate(benchmark, "fig3")
    latr = {row[1]: row[2] for row in result.rows if row[0] == "latr"}
    linux = {row[1]: row[2] for row in result.rows if row[0] == "linux"}
    assert linux["IPIs sent"] > 0
    assert latr["IPIs sent"] == 0
    assert latr["migrations"] >= 1 and linux["migrations"] >= 1
