"""Benchmarks regenerating Figures 10, 11, 12 (application studies)."""

from conftest import regenerate


def test_fig10_parsec(benchmark):
    result = regenerate(benchmark, "fig10")
    by_name = {row[0]: row for row in result.rows}
    # dedup is the big winner (paper: -9.6%), canneal the only loser
    # (paper: +1.7%), and the average improves.
    assert by_name["dedup"][1] < 0.97
    assert 1.0 < by_name["canneal"][1] < 1.05
    assert by_name["AVERAGE"][1] < 1.0


def test_fig11_autonuma(benchmark):
    result = regenerate(benchmark, "fig11")
    by_name = {row[0]: row for row in result.rows}
    graph = by_name["graph500"]
    # graph500: LATR faster (paper -5.7%), migrations happening, zero IPIs.
    assert graph[1] < 1.0
    assert graph[2] > 500  # linux migrations/sec
    assert graph[6] == 0.0  # latr ipi/s


def test_fig12_low_shootdown_overhead(benchmark):
    result = regenerate(benchmark, "fig12")
    for row in result.rows:
        # Paper: at most 1.7% overhead on any low-shootdown application.
        assert row[1] < 1.05, f"{row[0]} overhead too high: {row[1]}"


def test_memoverhead_bound(benchmark):
    result = regenerate(benchmark, "memoverhead")
    for row in result.rows:
        assert row[2] < 25.0  # paper bound: ~21 MB
