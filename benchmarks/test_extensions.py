"""Benchmarks for the extension experiments: THP, the six-way mechanism
comparison, and the model self-check."""

from conftest import regenerate


def test_thp_huge_vs_base_pages(benchmark):
    result = regenerate(benchmark, "thp")
    by_label = {row[0]: row for row in result.rows}
    base = by_label["512 x 4 KiB pages"]
    huge = by_label["1 x 2 MiB huge page"]
    # Huge pages collapse the unmap cost for both mechanisms...
    assert huge[1] < base[1] / 4  # linux
    assert huge[2] < base[2] / 4  # latr
    # ...and LATR wins in both shapes.
    assert base[3] > 0 and huge[3] > 0


def test_mechanism_comparison(benchmark):
    result = regenerate(benchmark, "mech-compare")
    by_mech = {row[0]: row for row in result.rows}
    # LATR (software) within 25% of the hardware designs on munmap latency.
    assert by_mech["latr"][3] < 1.25 * by_mech["didi"][3]
    assert by_mech["latr"][3] < 1.25 * by_mech["unitd"][3]
    # Linux is the only mechanism still sending IPIs.
    assert by_mech["linux"][6] > 0
    for mech in ("barrelfish", "abis", "didi", "unitd", "latr"):
        assert by_mech[mech][6] == 0


def test_model_check(benchmark):
    result = regenerate(benchmark, "model-check")
    for row in result.rows:
        label, model, measured = row[0], row[1], row[2]
        if "shootdown us" in label or "critical path" in label:
            assert model == __import__("pytest").approx(measured, rel=0.3), label


def test_tail_latency(benchmark):
    result = regenerate(benchmark, "tail")
    by_label = {row[0]: row for row in result.rows}
    linux = by_label["apache request (linux)"]
    latr = by_label["apache request (latr)"]
    # LATR improves both the median and the p99 request latency.
    assert latr[1] < linux[1]
    assert latr[2] < linux[2]
