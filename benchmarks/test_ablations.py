"""Benchmarks for the design-choice ablations (DESIGN.md section 5)."""

from conftest import regenerate


def test_ablation_queue_depth(benchmark):
    result = regenerate(benchmark, "abl-queue")
    fallback_pct = {row[0]: row[3] for row in result.rows}
    depths = sorted(fallback_pct)
    # Shallower queues fall back to IPIs more.
    assert fallback_pct[depths[0]] > fallback_pct[depths[-1]]
    assert fallback_pct[64] < 5.0  # the paper's choice works at this load


def test_ablation_reclaim_delay(benchmark):
    result = regenerate(benchmark, "abl-reclaim")
    held = [row[2] for row in result.rows]
    # Longer delays never hold less memory.
    assert held == sorted(held)


def test_ablation_sweep_triggers(benchmark):
    result = regenerate(benchmark, "abl-sweep")
    by_label = {row[0]: row for row in result.rows}
    both = by_label["tick + context switch"]
    tick_only = by_label["tick only"]
    # Context-switch sweeps tighten the staleness bound...
    assert both[1] < tick_only[1]
    # ...and tick-only still respects the 1 ms bound (plus small slack).
    assert tick_only[2] <= 1100.0


def test_ablation_pcid(benchmark):
    result = regenerate(benchmark, "abl-pcid")
    req = {row[0]: row[1] for row in result.rows}
    # PCID mode must not change Apache throughput materially (section 4.5).
    assert abs(req["on"] - req["off"]) / req["off"] < 0.1


def test_ablation_flush_threshold(benchmark):
    result = regenerate(benchmark, "abl-flushthresh")
    flushes = {row[0]: row[2] for row in result.rows}
    thresholds = sorted(flushes)
    # Past the unmap size, handlers stop full-flushing.
    assert flushes[thresholds[0]] > 0
    assert flushes[thresholds[-1]] == 0
