"""Benchmarks regenerating Figures 6, 7, 8 (munmap microbenchmark)."""

from conftest import regenerate


def test_fig6_munmap_vs_cores_2socket(benchmark):
    result = regenerate(benchmark, "fig6")
    # Directional claims of Figure 6: LATR improves at every core count,
    # and the improvement grows with cores.
    improvements = [row[-1] for row in result.rows]
    assert all(i > 0 for i in improvements)
    assert improvements[-1] > improvements[0]
    # At 16 cores the shootdown dominates Linux's munmap (paper: 71.6%).
    last = result.rows[-1]
    assert last[3] > 55.0  # linux shootdown share %


def test_fig7_munmap_vs_cores_8socket(benchmark):
    result = regenerate(benchmark, "fig7")
    last = result.rows[-1]
    cores, linux_us, _, _, latr_us, _, improvement = last
    assert cores == 120
    assert linux_us > 80.0        # paper: >120 us
    assert latr_us < 45.0         # paper: <40 us
    assert improvement > 55.0     # paper: 66.7%


def test_fig8_munmap_vs_pages(benchmark):
    result = regenerate(benchmark, "fig8")
    improvements = [row[-1] for row in result.rows]
    # Improvement shrinks with page count but stays positive (paper: 70.8%
    # at one page down to 7.5% at 512).
    assert improvements[0] > 50.0
    assert improvements[-1] > 0.0
    assert improvements[0] > improvements[-1]
