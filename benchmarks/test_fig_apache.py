"""Benchmarks regenerating Figures 1 and 9 (Apache throughput)."""

from conftest import regenerate


def test_fig1_apache_linux_vs_latr(benchmark):
    result = regenerate(benchmark, "fig1")
    first, last = result.rows[0], result.rows[-1]
    # At low core counts the mechanisms tie; at 12 cores LATR wins big.
    assert abs(first[3] - first[1]) / first[1] < 0.15
    assert last[3] > 1.3 * last[1]  # paper: +59.9%
    # LATR also *handles more shootdowns* (paper: +46.3%).
    assert last[4] > 1.2 * last[2]


def test_fig9_apache_three_mechanisms(benchmark):
    result = regenerate(benchmark, "fig9")
    low, high = result.rows[0], result.rows[-1]
    linux_low, abis_low = low[1], low[3]
    linux_high, abis_high, latr_high = high[1], high[3], high[5]
    # ABIS below Linux at low core counts (tracking overhead)...
    assert abis_low < linux_low
    # ...above Linux at high counts, but below LATR (paper: +37.9% LATR).
    assert linux_high < abis_high < latr_high
    assert latr_high > 1.15 * abis_high
