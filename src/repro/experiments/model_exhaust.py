"""Exhaustive model-checking experiment (``model-exhaust``).

Two claims, proven by enumeration rather than sampling:

* **Healthy exhaustion** -- at the reference small scope, *every* reduced
  interleaving of program ops, sweeps, and reclaim rounds passes the
  invariant monitor, drains, and agrees with the fast-path-toggled and
  synchronous-mechanism replays. The exploration shards across the run-cell
  backend one root branch per cell -- the same left-to-right sleep-set
  split ``run_mc`` uses internally, so ``--jobs N`` output is byte-identical
  to ``--jobs 1``.
* **Exhaustive mutation audit** -- every known-bad variant in
  :data:`repro.verify.MUTATIONS` is caught *within the enumerated space*
  (not just on lucky fuzz schedules), and its counterexample shrinks to a
  minimal replayable trace.
"""

from __future__ import annotations

from typing import List

from ..verify import MUTATIONS
from ..verify.mc import CellResult, McConfig, McScope, merge_cells, root_actions, run_mc
from .runner import ExperimentResult, RunCell, cell_experiment


def _healthy_config(fast: bool) -> McConfig:
    scope = McScope(cores=2, pages=2, ops=4) if fast else McScope(cores=3, pages=2, ops=5)
    return McConfig(scope=scope)


def _audit_config(fast: bool, mutation: str) -> McConfig:
    # ops=5 brings the second posting op (migrate) into scope, which the
    # stale-cache liveness bug needs; 2 cores keep audits instant.
    scope = McScope(cores=2, pages=2, ops=5, mutate=mutation)
    return McConfig(scope=scope)


def healthy_cell(fast: bool, cell: int) -> CellResult:
    from ..verify.mc import explore_cell

    return explore_cell(_healthy_config(fast), cell)


def audit_cell(fast: bool, mutation: str):
    result = run_mc(_audit_config(fast, mutation))
    ce = result.counterexample
    return (
        mutation,
        result.verdict,
        result.nodes,
        len(ce.trace) if ce else 0,
        len(ce.shrunk) if ce and ce.shrunk is not None else 0,
        ce.findings[0] if ce else "",
    )


def model_exhaust_cells(fast: bool = False) -> List[RunCell]:
    config = _healthy_config(fast)
    cells = [
        RunCell(
            exp_id="model-exhaust",
            cell_id=f"explore/{root}",
            fn="repro.experiments.model_exhaust:healthy_cell",
            params=dict(fast=fast, cell=i),
            fast=fast,
        )
        for i, root in enumerate(root_actions(config))
    ]
    cells += [
        RunCell(
            exp_id="model-exhaust",
            cell_id=f"audit/{mutation}",
            fn="repro.experiments.model_exhaust:audit_cell",
            params=dict(fast=fast, mutation=mutation),
            fast=fast,
        )
        for mutation in MUTATIONS
    ]
    return cells


def model_exhaust_assemble(values, fast: bool = False) -> ExperimentResult:
    config = _healthy_config(fast)
    roots = root_actions(config)
    explore_values = values[: len(roots)]
    audit_values = values[len(roots):]

    merged = merge_cells(config, roots, list(explore_values))
    scope = config.scope
    rows = [
        (
            f"healthy {scope.cores}c/{scope.pages}p/{scope.ops}ops",
            merged.verdict,
            merged.nodes,
            f"{merged.hash_pruned} hash + {merged.sleep_skipped} sleep",
            sum(c.complete_leaves for c in merged.cells),
            "",
        )
    ]
    failures = []
    if merged.verdict != "ok":
        ce = merged.counterexample
        failures.append(
            "healthy scope: "
            + (ce.findings[0] if ce else "exploration incomplete (budget)")
        )
    for mutation, verdict, nodes, trace_len, shrunk_len, finding in audit_values:
        caught = verdict == "violation"
        if not caught:
            failures.append(f"mutation {mutation} not caught exhaustively")
        rows.append(
            (
                f"mutate {mutation}",
                "caught" if caught else "MISSED",
                nodes,
                "-",
                f"{trace_len} -> {shrunk_len}" if caught else "-",
                finding[:72],
            )
        )
    return ExperimentResult(
        exp_id="model-exhaust",
        title="exhaustive small-scope model checking (DPOR + state hashing)",
        headers=(
            "scope",
            "verdict",
            "states",
            "pruned",
            "complete traces / trace->shrunk",
            "first finding",
        ),
        rows=rows,
        paper_expectation=(
            "every schedulable interleaving of sweeps, reclaim rounds, and "
            "racing mm operations preserves the safety invariants and "
            "converges to the synchronous end state (sections 3-4); every "
            "injected bug is caught by enumeration, not luck"
        ),
        notes="FAILURES: " + "; ".join(failures) if failures else "all clean",
    )


cell_experiment("model-exhaust", model_exhaust_cells, model_exhaust_assemble)
