"""Tables 1-5 of the paper.

Tables 1-3 are static property tables (single-cell fallback); Tables 4 and
5 sweep real workload boots and decompose into run cells.
"""

from __future__ import annotations

from ..coherence.base import MECHANISM_PROPERTIES, OPERATION_CLASSES
from ..hw.spec import PRESETS
from ..workloads.apache import APACHE_CACHE_PROFILES
from ..workloads.parsec import PARSEC_PROFILES
from .runner import ExperimentResult, RunCell, cell_experiment, experiment

APACHE_FN = "repro.workloads.apache:run_apache"
PARSEC_FN = "repro.workloads.parsec:run_parsec"


@experiment("tab1")
def tab1(fast: bool = False) -> ExperimentResult:
    rows = [
        (op, cls.value, "yes" if lazy else "no")
        for op, cls, lazy in OPERATION_CLASSES
    ]
    return ExperimentResult(
        exp_id="tab1",
        title="Virtual-address operations and lazy-shootdown applicability",
        headers=("operation", "class", "lazy possible"),
        rows=rows,
        paper_expectation="free and migration classes lazy; permission/ownership/remap not",
    )


@experiment("tab2")
def tab2(fast: bool = False) -> ExperimentResult:
    rows = [
        (
            name,
            _yn(props.asynchronous),
            _yn(props.non_ipi),
            _yn(props.no_remote_core_involvement),
            _yn(props.no_hardware_changes),
        )
        for name, props in MECHANISM_PROPERTIES.items()
    ]
    return ExperimentResult(
        exp_id="tab2",
        title="Mechanism comparison (paper Table 2)",
        headers=("mechanism", "async", "non-IPI", "no remote involvement", "no hw changes"),
        rows=rows,
        paper_expectation="LATR is the only row with every property",
    )


def _yn(flag: bool) -> str:
    return "yes" if flag else "-"


@experiment("tab3")
def tab3(fast: bool = False) -> ExperimentResult:
    rows = []
    for spec in PRESETS.values():
        rows.append(
            (
                spec.name,
                spec.sockets,
                spec.total_cores,
                spec.freq_ghz,
                spec.ram_gb,
                spec.llc_mb_per_socket,
                spec.l1_dtlb_entries,
                spec.l2_tlb_entries,
            )
        )
    return ExperimentResult(
        exp_id="tab3",
        title="Evaluation machines (paper Table 3)",
        headers=("machine", "sockets", "cores", "GHz", "RAM GB", "LLC MB/skt", "L1 dTLB", "L2 TLB"),
        rows=rows,
        paper_expectation="E5-2630v3 2x8 @2.4GHz and E7-8870v2 8x15 @2.3GHz",
    )


# ---------------------------------------------------------------------------
# Table 4: LLC miss-ratio comparison
#
# The Linux column is the measured baseline (we anchor it to the paper's
# Table 4 values via each workload's CacheProfile); the LATR column adds
# the *difference* in cache disturbance between the two runs: IPI-handler
# pollution removed, LATR state traffic added.
# ---------------------------------------------------------------------------


def _tab4_apache_cores(fast: bool):
    return (1, 12) if fast else (1, 6, 12)


def _tab4_parsec_names(fast: bool):
    return ("dedup",) if fast else ("canneal", "dedup", "ferret", "streamcluster", "swaptions")


def tab4_cells(fast: bool = False):
    duration = 40 if fast else 120
    cells = []
    for cores in _tab4_apache_cores(fast):
        for mech in ("linux", "latr"):
            cells.append(
                RunCell(
                    exp_id="tab4",
                    cell_id=f"apache_{cores}/{mech}",
                    fn=APACHE_FN,
                    params=dict(
                        mechanism=mech, cores=cores, duration_ms=duration, warmup_ms=10
                    ),
                    fast=fast,
                )
            )
    for name in _tab4_parsec_names(fast):
        for mech in ("linux", "latr"):
            cells.append(
                RunCell(
                    exp_id="tab4",
                    cell_id=f"{name}_16/{mech}",
                    fn=PARSEC_FN,
                    params=dict(profile=name, mechanism=mech, work_per_core_ms=duration),
                    fast=fast,
                )
            )
    return cells


def tab4_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    pairs = [values[i : i + 2] for i in range(0, len(values), 2)]
    apache_cores = _tab4_apache_cores(fast)
    for cores, (linux, latr) in zip(apache_cores, pairs):
        profile = APACHE_CACHE_PROFILES[cores]
        rows.append(_tab4_row(f"apache_{cores}", profile, {"linux": linux, "latr": latr}, cores))
    for name, (linux, latr) in zip(_tab4_parsec_names(fast), pairs[len(apache_cores) :]):
        profile = PARSEC_PROFILES[name].cache
        rows.append(_tab4_row(f"{name}_16", profile, {"linux": linux, "latr": latr}, 16))
    return ExperimentResult(
        exp_id="tab4",
        title="LLC miss ratio: Linux vs LATR (paper Table 4)",
        headers=("application", "linux miss %", "latr miss %", "relative change %"),
        rows=rows,
        paper_expectation=(
            "LATR within +-1% relative of Linux, usually slightly better "
            "(removed IPI-handler pollution outweighs the <1%-of-LLC states)"
        ),
    )


def _tab4_row(label, profile, runs, cores):
    from ..hw.cache import POLLUTION_MISS_CONVERSION

    linux, latr = runs["linux"], runs["latr"]

    def extra_misses(r):
        lines = r.metric("llc_pollution_lines") + r.metric("llc_state_lines")
        return lines * POLLUTION_MISS_CONVERSION

    def accesses(r):
        return profile.accesses_per_sec_per_core * cores * (r.metric("window_ns") / 1e9)

    linux_pct = profile.baseline_miss_pct
    delta = 100.0 * (
        extra_misses(latr) / max(1.0, accesses(latr))
        - extra_misses(linux) / max(1.0, accesses(linux))
    )
    latr_pct = linux_pct + delta
    rel = 100.0 * (latr_pct - linux_pct) / linux_pct if linux_pct else 0.0
    return (label, round(linux_pct, 2), round(latr_pct, 3), round(rel, 2))


def tab5_cells(fast: bool = False):
    duration = 40 if fast else 120
    return [
        RunCell(
            exp_id="tab5",
            cell_id=f"apache/{mech}",
            fn=APACHE_FN,
            params=dict(mechanism=mech, cores=12, duration_ms=duration, warmup_ms=10),
            fast=fast,
        )
        for mech in ("linux", "latr")
    ]


def tab5_assemble(values, fast: bool = False) -> ExperimentResult:
    linux, latr = values
    save = latr.metrics.get("state_write_ns", 0.0)
    # The paper's 158 ns is the cost of sweeping a single state; our sweep
    # recorder times whole passes that batch ~100 in-flight states, so
    # normalize per state examined.
    sweeps = latr.counters.get("latr.sweeps", 0)
    examined = latr.counters.get("latr.entries_examined", 0)
    sweep_pass = latr.metrics.get("sweep_ns", 0.0)
    per_state = sweep_pass / max(1.0, examined / max(1, sweeps))
    linux_sd = linux.metrics.get("sync_shootdown_ns", 0.0)
    reduction = 100.0 * (1 - (save + per_state) / linux_sd) if linux_sd else 0.0
    rows = [
        ("saving a LATR state (ns)", round(save, 1), 132.3),
        ("LATR state sweep, per state (ns)", round(per_state, 1), 158.0),
        ("full sweep pass (ns)", round(sweep_pass, 1), ""),
        ("single Linux shootdown (ns)", round(linux_sd, 1), 1594.2),
        ("LATR reduction of shootdown time (%)", round(reduction, 1), 81.8),
    ]
    return ExperimentResult(
        exp_id="tab5",
        title="Operation breakdown under Apache @ 12 cores (paper Table 5)",
        headers=("operation", "measured", "paper"),
        rows=rows,
        paper_expectation="LATR cuts per-shootdown time by up to 81.8%",
        notes=(
            "our Linux shootdown targets 11 remote cores (the paper's Apache "
            "spread its event-MPM processes across fewer)"
        ),
    )


cell_experiment("tab4", tab4_cells, tab4_assemble)
cell_experiment("tab5", tab5_cells, tab5_assemble)
