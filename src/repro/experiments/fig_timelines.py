"""Figures 2 and 3: operation timelines (design figures).

The paper's Figures 2 and 3 are annotated timelines of one munmap() and
one AutoNUMA sampling operation under Linux and LATR. We regenerate them
as event tables from an instrumented single-operation run.
"""

from __future__ import annotations

from .. import build_system
from ..kernel.autonuma import AutoNuma
from ..mm.addr import PAGE_SIZE
from ..sim.engine import MSEC
from .runner import ExperimentResult, experiment


def _run_single_munmap(mechanism: str):
    system = build_system(mechanism, cores=3)
    kernel = system.kernel
    proc = kernel.create_process("a")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(3)]
    events = []

    def body():
        t1, c1 = tasks[1], kernel.machine.core(1)  # initiate from core 2 (id 1)
        vrange = yield from kernel.syscalls.mmap(t1, c1, PAGE_SIZE)
        for t in tasks:
            core = kernel.machine.core(t.home_core_id)
            yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
        events.append(("munmap() enters", system.sim.now))
        yield from kernel.syscalls.munmap(t1, c1, vrange)
        events.append(("munmap() returns (app resumes)", system.sim.now))
        return vrange

    driver = system.sim.spawn(body())
    system.sim.run(until=10 * MSEC)
    vrange = driver.value
    start = events[0][1]

    coherence = kernel.coherence
    if mechanism == "latr":
        state = next(iter(coherence.queues[1].all_states()))
        events.append(("LATR state saved", state.posted_at))
        events.append(("last remote core swept + invalidated", state.completed_at))
        # Reclamation: frames freed two ticks after posting.
        reclaim_at = None
        if kernel.stats.counter("latr.states_reclaimed").value:
            reclaim_at = state.posted_at + coherence.reclaim_delay_ticks * kernel.machine.spec.tick_interval_ns
        if reclaim_at:
            events.append(("background thread reclaims pages", reclaim_at))
    else:
        sync = kernel.stats.latency("shootdown.sync_wait")
        if sync.count:
            events.append(("all IPI ACKs received", start + int(sync.maximum)))
    rows = [(label, (t - start) / 1000.0) for label, t in sorted(events, key=lambda e: e[1])]
    return rows


@experiment("fig2")
def fig2(fast: bool = False) -> ExperimentResult:
    rows = []
    for mech in ("linux", "latr"):
        for label, t_us in _run_single_munmap(mech):
            rows.append((mech, label, t_us))
    return ExperimentResult(
        exp_id="fig2",
        title="Timeline of one munmap() of a shared page (3 cores)",
        headers=("mechanism", "event", "t (us, from munmap entry)"),
        rows=rows,
        paper_expectation=(
            "Linux: app blocked ~6 us for IPIs + ACK wait; LATR: app resumes "
            "after ~150 ns state save, remote TLBs invalidated at their next "
            "tick (<=1 ms), memory reclaimed at 2 ms"
        ),
    )


def _run_single_sampling(mechanism: str):
    # Two cores on *different* sockets (0 and 8 on the 2-socket box), so a
    # remote access can actually trigger a NUMA migration.
    system = build_system(mechanism, cores=16)
    kernel = system.kernel
    autonuma = AutoNuma.install(kernel, scan_period_ns=2 * MSEC, scan_pages_per_round=1, chunk_pages=1)
    proc = kernel.create_process("a")
    tasks = [
        kernel.spawn_thread(proc, "t0", 0),
        kernel.spawn_thread(proc, "t1", 8),
    ]
    events = {}

    def body():
        t0, c0 = tasks[0], kernel.machine.core(0)
        vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
        yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
        autonuma.register(proc)
        events["mapped"] = system.sim.now
        # Remote core touches repeatedly; two remote hint faults migrate it.
        t1, c1 = tasks[1], kernel.machine.core(tasks[1].home_core_id)
        while kernel.stats.counter("numa.migrations").value == 0:
            yield from kernel.syscalls.touch_pages(t1, c1, vrange, process_data=True)
            yield from c1.execute(200_000)
            if system.sim.now > 500 * MSEC:
                raise RuntimeError("no migration happened")
        events["migrated"] = system.sim.now

    driver = system.sim.spawn(body())
    system.sim.run(until=600 * MSEC)
    if driver.alive:
        raise RuntimeError("sampling timeline did not finish")
    stats = kernel.stats
    return [
        ("pages sampled (PTE unmap posted)", stats.counter("numa.pages_sampled").value),
        ("sync IPI rounds paid for sampling", stats.counter("shootdown.sync.migration").value
         + stats.counter("ipi.sent").value * 0),
        ("IPIs sent", stats.counter("ipi.sent").value),
        ("hint faults", stats.counter("numa.hint_faults").value),
        ("gate waits (LATR 4.4 rule)", stats.counter("numa.gate_waits").value),
        ("migrations", stats.counter("numa.migrations").value),
        ("time to first migration (ms)", round((events["migrated"] - events["mapped"]) / MSEC, 2)),
    ]


@experiment("fig3")
def fig3(fast: bool = False) -> ExperimentResult:
    rows = []
    for mech in ("linux", "latr"):
        for label, value in _run_single_sampling(mech):
            rows.append((mech, label, value))
    return ExperimentResult(
        exp_id="fig3",
        title="AutoNUMA sampling-to-migration path (2 cores, 2 sockets)",
        headers=("mechanism", "quantity", "value"),
        rows=rows,
        paper_expectation=(
            "Linux pays a synchronous IPI shootdown per sampled page before any "
            "migration decision; LATR defers the PTE change to the first "
            "sweeping core and sends no IPIs, gating the migration on all "
            "cores having invalidated"
        ),
    )
