"""Tail-latency experiment (paper section 1's data-center motivation).

The introduction cites "Attack of the Killer Microseconds": the synchronous
shootdown's microseconds "contribute to the tail latency of some critical
services in data centers". This experiment measures the per-request latency
distribution of the Apache workload: the synchronous shootdown sits inside
the per-request critical section, so requests queue behind each other's IPI
rounds and the tail inflates; LATR removes it.

Each (workload, mechanism) measurement is one independent boot -> one run
cell: three Apache runs and two munmap-microbench runs.
"""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment

APACHE_MECHS = ("linux", "abis", "latr")
MICRO_MECHS = ("linux", "latr")


def tail_cells(fast: bool = False):
    duration = 40 if fast else 120
    cells = [
        RunCell(
            exp_id="tail",
            cell_id=f"apache/{mech}",
            fn="repro.workloads.apache:run_apache",
            params=dict(mechanism=mech, cores=12, duration_ms=duration, warmup_ms=15),
            fast=fast,
        )
        for mech in APACHE_MECHS
    ]
    cells.extend(
        RunCell(
            exp_id="tail",
            cell_id=f"munmap/{mech}",
            fn="repro.workloads.microbench:run_microbench",
            params=dict(mechanism=mech, cores=16, reps=20 if fast else 60),
            fast=fast,
        )
        for mech in MICRO_MECHS
    )
    return cells


def tail_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    for mech, result in zip(APACHE_MECHS, values[: len(APACHE_MECHS)]):
        rows.append(
            (
                f"apache request ({mech})",
                result.metric("latency_p50_us"),
                result.metric("latency_p99_us"),
                result.metric("latency_p999_us"),
            )
        )
    # The munmap() syscall itself (microbench): the p50 column reports the
    # actual median, not the mean it used to be mislabeled with.
    for mech, micro in zip(MICRO_MECHS, values[len(APACHE_MECHS) :]):
        rows.append(
            (
                f"munmap syscall ({mech})",
                micro.metric("munmap_p50_us"),
                micro.metric("munmap_p99_us"),
                "",
            )
        )
    return ExperimentResult(
        exp_id="tail",
        title="Latency distributions: Apache requests and munmap(), 12/16 cores",
        headers=("quantity", "p50 us", "p99 us", "p99.9 us"),
        rows=rows,
        paper_expectation=(
            "the synchronous shootdown adds microseconds inside the request "
            "critical section; under load the queueing inflates the tail "
            "(section 1's 'killer microseconds'); LATR flattens it"
        ),
    )


cell_experiment("tail", tail_cells, tail_assemble)
