"""Tail-latency experiment (paper section 1's data-center motivation).

The introduction cites "Attack of the Killer Microseconds": the synchronous
shootdown's microseconds "contribute to the tail latency of some critical
services in data centers". This experiment measures the per-request latency
distribution of the Apache workload: the synchronous shootdown sits inside
the per-request critical section, so requests queue behind each other's IPI
rounds and the tail inflates; LATR removes it.
"""

from __future__ import annotations

from ..workloads.apache import ApacheConfig, ApacheWorkload
from ..workloads.microbench import MicrobenchConfig, MunmapMicrobench
from .runner import ExperimentResult, experiment


@experiment("tail")
def tail_latency(fast: bool = False) -> ExperimentResult:
    duration = 40 if fast else 120
    rows = []
    for mech in ("linux", "abis", "latr"):
        result = ApacheWorkload(
            ApacheConfig(cores=12, duration_ms=duration, warmup_ms=15)
        ).run(mech)
        rows.append(
            (
                f"apache request ({mech})",
                result.metric("latency_p50_us"),
                result.metric("latency_p99_us"),
                result.metric("latency_p999_us"),
            )
        )
    # The munmap() syscall itself, p99 (microbench).
    for mech in ("linux", "latr"):
        micro = MunmapMicrobench(
            MicrobenchConfig(cores=16, reps=20 if fast else 60)
        ).run(mech)
        rows.append(
            (
                f"munmap syscall ({mech})",
                micro.metric("munmap_us"),
                micro.metric("munmap_p99_us"),
                "",
            )
        )
    return ExperimentResult(
        exp_id="tail",
        title="Latency distributions: Apache requests and munmap(), 12/16 cores",
        headers=("quantity", "p50 us", "p99 us", "p99.9 us"),
        rows=rows,
        paper_expectation=(
            "the synchronous shootdown adds microseconds inside the request "
            "critical section; under load the queueing inflates the tail "
            "(section 1's 'killer microseconds'); LATR flattens it"
        ),
    )
