"""SLO tables: open-loop offered-load sweep past saturation (ROADMAP item 3).

The ``tail`` experiment measures closed-loop Apache, where the client
politely waits -- queueing can never compound, so it understates how much
damage synchronous shootdowns do to a *service-level objective*. Here the
:mod:`repro.workloads.openloop` workload offers load on an independent
arrival clock and sweeps it past each mechanism's capacity on the 8-socket
120-core box. Below saturation all mechanisms hold their p50; past it, the
backlog compounds every request's queueing delay and the p99/p999 explode.
Because Linux's capacity is capped by synchronous IPI rounds inside
``mmap_sem``, its knee arrives at a fraction of LATR's offered load -- the
table shows Linux's tail inflating at loads LATR serves flat.

One (mechanism, offered-load, arrival-process) measurement is one
independent boot -> one run cell.
"""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment

MECHS = ("linux", "abis", "latr")

#: Offered loads (kilo-requests/s, whole machine). Chosen to straddle the
#: measured capacities at 120 cores: Linux saturates near 5 kreq/s (sync
#: IPI rounds under mmap_sem), LATR near 25 kreq/s.
LOADS_FULL = (2.5, 5.0, 10.0, 20.0, 40.0)
LOADS_FAST = (5.0, 10.0, 20.0)

#: One bursty (MMPP) row per mechanism at this mean load: same average
#: traffic as the Poisson row, nastier tail.
BURSTY_LOAD = 10.0


def _cell(mech: str, load: float, arrival: str, fast: bool) -> RunCell:
    return RunCell(
        exp_id="slo",
        cell_id=f"{arrival}/{load:g}k/{mech}",
        fn="repro.workloads.openloop:run_openloop",
        params=dict(
            mechanism=mech,
            offered_kreq_s=load,
            arrival=arrival,
            duration_ms=25 if fast else 60,
            warmup_ms=5 if fast else 10,
        ),
        fast=fast,
    )


def slo_cells(fast: bool = False):
    loads = LOADS_FAST if fast else LOADS_FULL
    cells = [_cell(mech, load, "poisson", fast) for mech in MECHS for load in loads]
    cells.extend(_cell(mech, BURSTY_LOAD, "bursty", fast) for mech in MECHS)
    return cells


def slo_assemble(values, fast: bool = False) -> ExperimentResult:
    loads = LOADS_FAST if fast else LOADS_FULL
    rows = []
    it = iter(values)
    for mech in MECHS:
        for load in loads:
            result = next(it)
            rows.append(
                (
                    f"{mech} @ {load:g}k poisson",
                    result.metric("achieved_kreq_s"),
                    result.metric("latency_p50_us"),
                    result.metric("latency_p99_us"),
                    result.metric("latency_p999_us"),
                    result.metric("backlog_requests"),
                )
            )
    for mech in MECHS:
        result = next(it)
        rows.append(
            (
                f"{mech} @ {BURSTY_LOAD:g}k bursty",
                result.metric("achieved_kreq_s"),
                result.metric("latency_p50_us"),
                result.metric("latency_p99_us"),
                result.metric("latency_p999_us"),
                result.metric("backlog_requests"),
            )
        )
    return ExperimentResult(
        exp_id="slo",
        title="Open-loop SLO tables: offered load vs latency percentiles, 120 cores",
        headers=(
            "mechanism @ offered",
            "achieved kreq/s",
            "p50 us",
            "p99 us",
            "p99.9 us",
            "backlog",
        ),
        rows=rows,
        paper_expectation=(
            "past each mechanism's capacity the open-loop backlog compounds "
            "queueing delay; Linux's knee (sync shootdowns inside mmap_sem) "
            "arrives at a fraction of LATR's offered load, so Linux's "
            "p99/p999 inflate at loads LATR serves with a flat tail"
        ),
    )


cell_experiment("slo", slo_cells, slo_assemble)
