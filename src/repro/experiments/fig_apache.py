"""Figures 1, 9 and the Apache rows of Figure 12 / Tables 4, 5.

One (core count, mechanism) Apache boot per run cell; ``assemble``
re-derives the core sweep from ``fast`` and interleaves the req/s and
shootdown/s columns exactly like the historical serial loop.
"""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment

APACHE_FN = "repro.workloads.apache:run_apache"


def _apache_cores(fast: bool):
    return (2, 6, 12) if fast else (2, 4, 6, 8, 10, 12)


def _apache_sweep_cells(exp_id: str, mechanisms, fast: bool):
    duration = 40 if fast else 120
    warmup = 10 if fast else 20
    cells = []
    for cores in _apache_cores(fast):
        for mech in mechanisms:
            cells.append(
                RunCell(
                    exp_id=exp_id,
                    cell_id=f"cores={cores}/{mech}",
                    fn=APACHE_FN,
                    params=dict(
                        mechanism=mech,
                        cores=cores,
                        duration_ms=duration,
                        warmup_ms=warmup,
                    ),
                    fast=fast,
                )
            )
    return cells


def _apache_sweep_assemble(mechanisms, core_counts, values) -> list:
    rows = []
    per_row = len(mechanisms)
    for i, cores in enumerate(core_counts):
        row = [cores]
        for result in values[i * per_row : (i + 1) * per_row]:
            row.append(result.metric("requests_per_sec"))
            row.append(result.metric("shootdowns_per_sec"))
        rows.append(tuple(row))
    return rows


def fig1_cells(fast: bool = False):
    return _apache_sweep_cells("fig1", ("linux", "latr"), fast)


def fig1_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = _apache_sweep_assemble(("linux", "latr"), _apache_cores(fast), values)
    return ExperimentResult(
        exp_id="fig1",
        title="Apache requests/sec and TLB shootdowns/sec: Linux vs LATR",
        headers=("cores", "linux req/s", "linux sd/s", "latr req/s", "latr sd/s"),
        rows=rows,
        paper_expectation=(
            "Linux stops scaling past ~6 cores (~60-90k req/s); LATR reaches "
            "~145k at 12 cores, +59.9%, while handling 46.3% more shootdowns"
        ),
    )


def fig9_cells(fast: bool = False):
    return _apache_sweep_cells("fig9", ("linux", "abis", "latr"), fast)


def fig9_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = _apache_sweep_assemble(("linux", "abis", "latr"), _apache_cores(fast), values)
    return ExperimentResult(
        exp_id="fig9",
        title="Apache requests/sec: Linux vs ABIS vs LATR",
        headers=(
            "cores",
            "linux req/s",
            "linux sd/s",
            "abis req/s",
            "abis sd/s",
            "latr req/s",
            "latr sd/s",
        ),
        rows=rows,
        paper_expectation=(
            "ABIS below Linux under ~8 cores (tracking overhead), above beyond; "
            "LATR beats Linux by up to 59.9% and ABIS by up to 37.9% at 12 cores; "
            "ABIS's shootdown rate collapses (sharer tracking)"
        ),
    )


cell_experiment("fig1", fig1_cells, fig1_assemble)
cell_experiment("fig9", fig9_cells, fig9_assemble)
