"""Figures 1, 9 and the Apache rows of Figure 12 / Tables 4, 5."""

from __future__ import annotations

from ..workloads.apache import ApacheConfig, ApacheWorkload
from .runner import ExperimentResult, experiment


def _apache_sweep(mechanisms, core_counts, fast: bool) -> list:
    duration = 40 if fast else 120
    warmup = 10 if fast else 20
    rows = []
    for cores in core_counts:
        row = [cores]
        for mech in mechanisms:
            result = ApacheWorkload(
                ApacheConfig(cores=cores, duration_ms=duration, warmup_ms=warmup)
            ).run(mech)
            row.append(result.metric("requests_per_sec"))
            row.append(result.metric("shootdowns_per_sec"))
        rows.append(tuple(row))
    return rows


@experiment("fig1")
def fig1(fast: bool = False) -> ExperimentResult:
    core_counts = (2, 6, 12) if fast else (2, 4, 6, 8, 10, 12)
    rows = _apache_sweep(("linux", "latr"), core_counts, fast)
    return ExperimentResult(
        exp_id="fig1",
        title="Apache requests/sec and TLB shootdowns/sec: Linux vs LATR",
        headers=("cores", "linux req/s", "linux sd/s", "latr req/s", "latr sd/s"),
        rows=rows,
        paper_expectation=(
            "Linux stops scaling past ~6 cores (~60-90k req/s); LATR reaches "
            "~145k at 12 cores, +59.9%, while handling 46.3% more shootdowns"
        ),
    )


@experiment("fig9")
def fig9(fast: bool = False) -> ExperimentResult:
    core_counts = (2, 6, 12) if fast else (2, 4, 6, 8, 10, 12)
    rows = _apache_sweep(("linux", "abis", "latr"), core_counts, fast)
    return ExperimentResult(
        exp_id="fig9",
        title="Apache requests/sec: Linux vs ABIS vs LATR",
        headers=(
            "cores",
            "linux req/s",
            "linux sd/s",
            "abis req/s",
            "abis sd/s",
            "latr req/s",
            "latr sd/s",
        ),
        rows=rows,
        paper_expectation=(
            "ABIS below Linux under ~8 cores (tracking overhead), above beyond; "
            "LATR beats Linux by up to 59.9% and ABIS by up to 37.9% at 12 cores; "
            "ABIS's shootdown rate collapses (sharer tracking)"
        ),
    )
