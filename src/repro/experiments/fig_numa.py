"""Figure 11: AutoNUMA applications, normalized runtime + migration rates."""

from __future__ import annotations

from ..workloads.numa_apps import NUMA_PROFILES, NumaConfig, NumaWorkload
from .runner import ExperimentResult, experiment


@experiment("fig11")
def fig11(fast: bool = False) -> ExperimentResult:
    names = ("graph500", "pbzip2") if fast else list(NUMA_PROFILES)
    # The refresh->sample->migrate pipeline needs ~40 ms to reach steady
    # state, so even fast mode runs 80 ms and averages two seeds.
    seeds = (1, 2)
    rows = []
    for name in names:
        ratios = []
        for seed in seeds:
            cfg = NumaConfig(work_per_core_ms=80 if fast else 120, seed=seed)
            linux = NumaWorkload(NUMA_PROFILES[name], cfg).run("linux")
            latr = NumaWorkload(NUMA_PROFILES[name], cfg).run("latr")
            ratios.append(latr.metric("runtime_ms") / linux.metric("runtime_ms"))
        ratio = sum(ratios) / len(ratios)
        rows.append(
            (
                name,
                ratio,
                linux.metric("migrations_per_sec"),
                latr.metric("migrations_per_sec"),
                linux.metric("samples_per_sec"),
                linux.metric("ipis_per_sec"),
                latr.metric("ipis_per_sec"),
            )
        )
    return ExperimentResult(
        exp_id="fig11",
        title="NUMA balancing: normalized runtime (LATR/Linux) and migrations/sec, 16 cores",
        headers=(
            "benchmark",
            "latr/linux runtime",
            "linux mig/s",
            "latr mig/s",
            "samples/s",
            "linux ipi/s",
            "latr ipi/s",
        ),
        rows=rows,
        paper_expectation=(
            "LATR up to 5.7% faster (graph500), larger gains with more "
            "migrations; pbzip2 nearly unchanged (app-level overheads dominate)"
        ),
        notes="LATR eliminates the per-sample IPI round of AutoNUMA's unmap",
    )
