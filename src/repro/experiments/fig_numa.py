"""Figure 11: AutoNUMA applications, normalized runtime + migration rates.

One (application, seed, mechanism) boot per run cell; ``assemble`` averages
the per-seed ratios and reports the last seed's rate columns, matching the
historical serial loop.
"""

from __future__ import annotations

from ..workloads.numa_apps import NUMA_PROFILES
from .runner import ExperimentResult, RunCell, cell_experiment

NUMA_FN = "repro.workloads.numa_apps:run_numa"

#: The refresh->sample->migrate pipeline needs ~40 ms to reach steady
#: state, so even fast mode runs 80 ms and averages two seeds.
SEEDS = (1, 2)


def _fig11_names(fast: bool):
    return ("graph500", "pbzip2") if fast else list(NUMA_PROFILES)


def fig11_cells(fast: bool = False):
    cells = []
    for name in _fig11_names(fast):
        for seed in SEEDS:
            for mech in ("linux", "latr"):
                cells.append(
                    RunCell(
                        exp_id="fig11",
                        cell_id=f"{name}/seed={seed}/{mech}",
                        fn=NUMA_FN,
                        params=dict(
                            profile=name,
                            mechanism=mech,
                            work_per_core_ms=80 if fast else 120,
                            seed=seed,
                        ),
                        seed=seed,
                        fast=fast,
                    )
                )
    return cells


def fig11_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    per_name = 2 * len(SEEDS)
    for i, name in enumerate(_fig11_names(fast)):
        chunk = values[i * per_name : (i + 1) * per_name]
        ratios = []
        linux = latr = None
        for j in range(len(SEEDS)):
            linux, latr = chunk[2 * j], chunk[2 * j + 1]
            ratios.append(latr.metric("runtime_ms") / linux.metric("runtime_ms"))
        ratio = sum(ratios) / len(ratios)
        rows.append(
            (
                name,
                ratio,
                linux.metric("migrations_per_sec"),
                latr.metric("migrations_per_sec"),
                linux.metric("samples_per_sec"),
                linux.metric("ipis_per_sec"),
                latr.metric("ipis_per_sec"),
            )
        )
    return ExperimentResult(
        exp_id="fig11",
        title="NUMA balancing: normalized runtime (LATR/Linux) and migrations/sec, 16 cores",
        headers=(
            "benchmark",
            "latr/linux runtime",
            "linux mig/s",
            "latr mig/s",
            "samples/s",
            "linux ipi/s",
            "latr ipi/s",
        ),
        rows=rows,
        paper_expectation=(
            "LATR up to 5.7% faster (graph500), larger gains with more "
            "migrations; pbzip2 nearly unchanged (app-level overheads dominate)"
        ),
        notes="LATR eliminates the per-sample IPI round of AutoNUMA's unmap",
    )


cell_experiment("fig11", fig11_cells, fig11_assemble)
