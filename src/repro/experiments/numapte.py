"""Replicated page tables (numaPTE): remote-walk elimination vs fan-out cost.

Every mechanism runs the same pt-placement workload on the big NUMA box
with hop-aware walk charging forced on (``use_pt_replication=True``).
Single-table mechanisms (linux/abis/latr) pay an interconnect hop per
hardware walk from a remote socket; numaPTE walks each socket's local
replica instead and pays the replica-update fan-out on every page-table
mutation. One mechanism per run cell.
"""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment

MECHS = ("linux", "abis", "latr", "numapte")


def numapte_cells(fast: bool = False):
    cores = 30 if fast else None  # fast: 2 of the 8 sockets
    pages = 32 if fast else 64
    reps = 6 if fast else 12
    return [
        RunCell(
            exp_id="numapte",
            cell_id=f"mech={mech}",
            fn="repro.workloads.microbench:run_pt_placement",
            params=dict(mechanism=mech, cores=cores, pages=pages, reps=reps),
            fast=fast,
        )
        for mech in MECHS
    ]


def numapte_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    for mech, result in zip(MECHS, values):
        rows.append(
            (
                mech,
                round(result.metric("runtime_ms"), 3),
                int(result.metric("walks_local")),
                int(result.metric("walks_remote")),
                round(result.metric("remote_walk_ms"), 3),
                int(result.metric("replica_updates")),
                round(result.metric("replica_update_ms"), 3),
                int(result.metric("replica_table_pages")),
            )
        )
    return ExperimentResult(
        exp_id="numapte",
        title="numaPTE: local-replica walks vs single-table remote walks (8s120c)",
        headers=(
            "mechanism",
            "runtime ms",
            "local walks",
            "remote walks",
            "remote-walk ms",
            "replica updates",
            "replica-update ms",
            "replica table pages",
        ),
        rows=rows,
        paper_expectation=(
            "numapte eliminates remote hardware walks entirely (remote walks = 0), "
            "trading them for replica-update fan-out charged at mutation sites; "
            "single-table mechanisms pay an interconnect hop per remote-socket walk"
        ),
        notes=(
            "all mechanisms run with use_pt_replication=True so walk placement is "
            "charged uniformly; only numapte (wants_pt_replicas) builds replicas"
        ),
    )


cell_experiment("numapte", numapte_cells, numapte_assemble)
