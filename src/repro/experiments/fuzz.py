"""Coherence-fuzzer experiments: differential smoke run + mutation audit.

``fuzz-smoke`` replays one randomized plan across every lazy mechanism and
diffs the end state against synchronous Linux; ``fuzz-mutation`` proves
the harness has teeth by injecting the known-bad LATR variants and
checking that the invariant monitor flags them.
"""

from __future__ import annotations

from ..verify import MUTATIONS, FuzzConfig, run_fuzz
from .runner import ExperimentResult, experiment


def _result_rows(report) -> list:
    rows = []
    for name, res in report.results.items():
        if res.violations:
            status = f"{len(res.violations)} violation(s)"
        elif res.errors:
            status = "error"
        elif name in report.mismatches:
            status = "state mismatch"
        else:
            status = "ok"
        rows.append(
            (
                name,
                status,
                res.ops_executed,
                res.checks_run,
                f"{res.sim_time_ns / 1e6:.1f}",
            )
        )
    return rows


@experiment("fuzz-smoke")
def fuzz_smoke(fast: bool = False) -> ExperimentResult:
    seeds = (1, 2) if fast else (1, 2, 3, 4, 5)
    n_ops = 40 if fast else 120
    rows = []
    failures = []
    for seed in seeds:
        report = run_fuzz(FuzzConfig(seed=seed, n_ops=n_ops, shrink=False))
        rows.extend((seed,) + row for row in _result_rows(report))
        failures.extend(f"seed {seed}: {m}" for m in report.failures)
    return ExperimentResult(
        exp_id="fuzz-smoke",
        title="differential coherence fuzz (randomized schedules)",
        headers=("seed", "mechanism", "status", "ops", "checks", "sim ms"),
        rows=rows,
        paper_expectation=(
            "every mechanism reaches the same end state as synchronous Linux "
            "with zero invariant violations (sections 3-4 safety argument)"
        ),
        notes="FAILURES: " + "; ".join(failures) if failures else "all clean",
    )


@experiment("fuzz-mutation")
def fuzz_mutation(fast: bool = False) -> ExperimentResult:
    n_ops = 60 if fast else 120
    rows = []
    missed = []
    for mutation in MUTATIONS:
        report = run_fuzz(
            FuzzConfig(seed=1, n_ops=n_ops, mutate=mutation, shrink=not fast)
        )
        latr = report.results["latr"]
        # Safety mutations show up as invariant violations; liveness/engine
        # mutations as stall or drain errors; equivalence bugs as end-state
        # mismatches against the synchronous baseline.
        caught = bool(latr.violations or latr.errors or "latr" in report.mismatches)
        if not caught:
            missed.append(mutation)
        if latr.violations:
            finding = str(latr.violations[0])
        elif latr.errors:
            finding = latr.errors[0]
        elif "latr" in report.mismatches:
            finding = report.mismatches["latr"][0]
        else:
            finding = ""
        rows.append(
            (
                mutation,
                "caught" if caught else "MISSED",
                len(latr.violations),
                len(report.shrunk_plan.ops) if report.shrunk_plan else "-",
                finding,
            )
        )
    return ExperimentResult(
        exp_id="fuzz-mutation",
        title="mutation audit: injected bugs must be caught",
        headers=("mutation", "verdict", "violations", "min repro ops", "first finding"),
        rows=rows,
        paper_expectation=(
            "every broken variant (eager reclaim without the bitmask guard; "
            "sweep that skips the TLB invalidation; dropped timer buckets; "
            "desynced TLB index; stale sweep cache) is flagged by the "
            "invariant monitor, the progress guards, or the differential"
        ),
        notes="MISSED: " + ", ".join(missed) if missed else "all mutations detected",
    )
