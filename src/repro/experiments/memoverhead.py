"""Section 6.4: LATR's transient memory overhead."""

from __future__ import annotations

from ..workloads.microbench import MicrobenchConfig, MunmapMicrobench
from .runner import ExperimentResult, experiment


@experiment("memoverhead")
def memoverhead(fast: bool = False) -> ExperimentResult:
    configs = [
        (2, 1),
        (16, 1),
        (16, 64),
    ]
    if not fast:
        configs.append((16, 512))
    rows = []
    for cores, pages in configs:
        reps = 30 if fast else 120
        bench = MunmapMicrobench(
            MicrobenchConfig(cores=cores, pages=pages, reps=reps)
        )
        result = bench.lazy_memory_overhead("latr")
        rows.append((cores, pages, result.metric("peak_lazy_mb")))
    return ExperimentResult(
        exp_id="memoverhead",
        title="Peak physical memory parked on LATR lazy lists (section 6.4)",
        headers=("cores", "pages per munmap", "peak lazy MB"),
        rows=rows,
        paper_expectation=(
            "1.5-3 MB for single-page runs, bounded by ~21 MB at 512 pages; "
            "<0.03% of server RAM, released within 2 ms"
        ),
        notes="the bound is rate x pages x 4 KB x reclamation delay",
    )
