"""Section 6.4: LATR's transient memory overhead.

One (mechanism, cores, pages-per-munmap) configuration per run cell. The
numaPTE row prices the *other* memory trade: no lazy lists, but replica
page-table pages on every remote node.
"""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment


def _configs(fast: bool):
    configs = [
        ("latr", 2, 1),
        ("latr", 16, 1),
        ("latr", 16, 64),
    ]
    if not fast:
        configs.append(("latr", 16, 512))
    # Replicated page tables: lazy MB stays 0, table pages split by node.
    configs.append(("numapte", 16, 64))
    return configs


def memoverhead_cells(fast: bool = False):
    reps = 30 if fast else 120
    return [
        RunCell(
            exp_id="memoverhead",
            cell_id=f"mech={mech}/cores={cores}/pages={pages}",
            fn="repro.workloads.microbench:run_memoverhead",
            params=dict(mechanism=mech, cores=cores, pages=pages, reps=reps),
            fast=fast,
        )
        for mech, cores, pages in _configs(fast)
    ]


def memoverhead_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = [
        (
            mech,
            cores,
            pages,
            result.metric("peak_lazy_mb"),
            # numaPTE has no LATR queues; its fixed state cost is 0.
            result.metrics.get("latr_state_kb", 0.0),
            int(result.metric("pt_pages_node0")),
            # A 2-core run collapses to one socket; no node-1 exists.
            int(result.metrics.get("pt_pages_node1", 0)),
        )
        for (mech, cores, pages), result in zip(_configs(fast), values)
    ]
    return ExperimentResult(
        exp_id="memoverhead",
        title="Peak physical memory parked on LATR lazy lists (section 6.4)",
        headers=(
            "mechanism",
            "cores",
            "pages per munmap",
            "peak lazy MB",
            "LATR state KB",
            "PT pages node0",
            "PT pages node1",
        ),
        rows=rows,
        paper_expectation=(
            "1.5-3 MB for single-page runs, bounded by ~21 MB at 512 pages; "
            "<0.03% of server RAM, released within 2 ms"
        ),
        notes=(
            "the lazy bound is rate x pages x 4 KB x reclamation delay; "
            "fixed LATR state is cores x 64 slots x 68 B (136 KB at 32 "
            "cores, paper 4.1); numaPTE instead spends node-1 table pages "
            "on its replica"
        ),
    )


cell_experiment("memoverhead", memoverhead_cells, memoverhead_assemble)
