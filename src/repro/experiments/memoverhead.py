"""Section 6.4: LATR's transient memory overhead.

One (cores, pages-per-munmap) configuration per run cell."""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment


def _configs(fast: bool):
    configs = [
        (2, 1),
        (16, 1),
        (16, 64),
    ]
    if not fast:
        configs.append((16, 512))
    return configs


def memoverhead_cells(fast: bool = False):
    reps = 30 if fast else 120
    return [
        RunCell(
            exp_id="memoverhead",
            cell_id=f"cores={cores}/pages={pages}",
            fn="repro.workloads.microbench:run_memoverhead",
            params=dict(mechanism="latr", cores=cores, pages=pages, reps=reps),
            fast=fast,
        )
        for cores, pages in _configs(fast)
    ]


def memoverhead_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = [
        (cores, pages, result.metric("peak_lazy_mb"))
        for (cores, pages), result in zip(_configs(fast), values)
    ]
    return ExperimentResult(
        exp_id="memoverhead",
        title="Peak physical memory parked on LATR lazy lists (section 6.4)",
        headers=("cores", "pages per munmap", "peak lazy MB"),
        rows=rows,
        paper_expectation=(
            "1.5-3 MB for single-page runs, bounded by ~21 MB at 512 pages; "
            "<0.03% of server RAM, released within 2 ms"
        ),
        notes="the bound is rate x pages x 4 KB x reclamation delay",
    )


cell_experiment("memoverhead", memoverhead_cells, memoverhead_assemble)
