"""Analytical model vs simulator cross-check.

Predicts the headline costs with the closed-form model
(:mod:`repro.analysis.model`) and measures the same quantities in the
simulator -- a self-validation table for the reproduction itself.
"""

from __future__ import annotations

from ..analysis.model import (
    dominant_term,
    latr_free_critical_path,
    linux_shootdown,
    migration_shootdown_share,
)
from ..hw.spec import COMMODITY_2S16C, LARGE_NUMA_8S120C
from ..workloads.microbench import MicrobenchConfig, MunmapMicrobench
from .runner import ExperimentResult, experiment


@experiment("model-check")
def model_check(fast: bool = False) -> ExperimentResult:
    reps = 10 if fast else 30
    rows = []

    configs = [
        ("2s16c", COMMODITY_2S16C, "commodity-2s16c", 16),
        ("8s120c", LARGE_NUMA_8S120C, "large-numa-8s120c", 120),
    ]
    for label, spec, machine, cores in configs:
        predicted = linux_shootdown(spec, pages=1)
        measured = MunmapMicrobench(
            MicrobenchConfig(machine=machine, cores=cores, reps=reps)
        ).run("linux")
        rows.append(
            (
                f"linux shootdown us ({label})",
                predicted.total_ns / 1000,
                measured.metric("shootdown_us"),
                dominant_term(predicted),
            )
        )

    latr_pred = latr_free_critical_path(pages=1, spec=COMMODITY_2S16C)
    latr_meas = MunmapMicrobench(MicrobenchConfig(cores=16, reps=reps)).run("latr")
    rows.append(
        (
            "latr critical path us (2s16c)",
            latr_pred / 1000,
            latr_meas.metric("shootdown_us"),
            "state write",
        )
    )
    rows.append(
        (
            "migration shootdown share % (1 page)",
            100 * migration_shootdown_share(1, COMMODITY_2S16C),
            5.8,
            "paper value in 'measured' column",
        )
    )
    rows.append(
        (
            "migration shootdown share % (512 pages)",
            100 * migration_shootdown_share(512, COMMODITY_2S16C),
            21.1,
            "paper value in 'measured' column",
        )
    )
    return ExperimentResult(
        exp_id="model-check",
        title="Closed-form model vs simulator (self-validation)",
        headers=("quantity", "model", "measured", "dominant term / note"),
        rows=rows,
        paper_expectation=(
            "model and simulation agree within ~25%; the dominant overhead "
            "shifts from ACK wait (small machines) to IPI send occupancy "
            "(120 cores), which is why Figure 7 is superlinear"
        ),
    )
