"""One experiment runner per paper table/figure, plus ablations.

Use ``python -m repro <id>`` or::

    from repro.experiments import run_experiment
    print(run_experiment("fig6", fast=True).render())
"""

from .runner import ExperimentResult, available_experiments, run_experiment

__all__ = ["ExperimentResult", "available_experiments", "run_experiment"]
