"""One experiment runner per paper table/figure, plus ablations.

Use ``python -m repro <id>`` or::

    from repro.experiments import run_experiment
    print(run_experiment("fig6", fast=True).render())

Experiments decompose into declarative :class:`RunCell` units that can run
inline or sharded across worker processes::

    from repro.experiments import run_many
    runs = run_many(["fig6", "fig7"], fast=True, jobs=4)
"""

from .runner import (
    CellExecutionError,
    CellOutcome,
    ExperimentResult,
    ExperimentRun,
    RunCell,
    available_experiments,
    execute_experiment,
    experiment_cells,
    run_experiment,
    run_many,
)

__all__ = [
    "CellExecutionError",
    "CellOutcome",
    "ExperimentResult",
    "ExperimentRun",
    "RunCell",
    "available_experiments",
    "execute_experiment",
    "experiment_cells",
    "run_experiment",
    "run_many",
]
