"""Two-level translation coherence: the virtualization shootdown tax.

Every mechanism runs virtualized Apache and PARSEC dedup on the big NUMA
box twice -- flat (``use_virtualization=False``) and virtualized (guest
page tables composed over per-mm host EPT tables). Under virtualization a
guest ``munmap`` must also invalidate the host-level translations, and
the *mechanism running in the host* decides how:

* linux/abis pay a synchronous INVEPT broadcast to every vCPU sharing the
  mm (on top of their native guest-side IPIs) -- the per-munmap cost
  explodes with the sharer count,
* latr defers the host invalidation off the critical path exactly like
  its guest-side shootdown (one state write synchronously, per-entry
  invalidation charged to the background sweep),
* hatric (HW-assisted translation coherence) snoops host-table updates
  through per-vCPU TLB directory tags, so no vCPU is interrupted at all.

The headline table reports each mechanism's per-munmap cost flat vs
virtualized and how much of the virtualization tax (relative to the
virtualized-Linux explosion) it recovers. One (workload, mechanism,
virtualization) boot per run cell.
"""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment

MECHS = ("linux", "abis", "latr", "hatric")
DEDUP_MECHS = ("linux", "latr", "hatric")
MACHINE = "large-numa-8s120c"


def virt_cells(fast: bool = False):
    cores = 30 if fast else 60
    duration = 40 if fast else 120
    warmup = 10 if fast else 20
    work = 30 if fast else 80
    cells = []
    for mech in MECHS:
        for virt in (False, True):
            cells.append(
                RunCell(
                    exp_id="virt",
                    cell_id=f"apache/{mech}/{'virt' if virt else 'flat'}",
                    fn="repro.workloads.apache:run_apache",
                    params=dict(
                        mechanism=mech,
                        mechanism_kwargs={"use_virtualization": virt},
                        machine=MACHINE,
                        cores=cores,
                        duration_ms=duration,
                        warmup_ms=warmup,
                    ),
                    fast=fast,
                )
            )
    for mech in DEDUP_MECHS:
        for virt in (False, True):
            cells.append(
                RunCell(
                    exp_id="virt",
                    cell_id=f"dedup/{mech}/{'virt' if virt else 'flat'}",
                    fn="repro.workloads.parsec:run_parsec",
                    params=dict(
                        profile="dedup",
                        mechanism=mech,
                        mechanism_kwargs={"use_virtualization": virt},
                        machine=MACHINE,
                        cores=cores,
                        work_per_core_ms=work,
                    ),
                    fast=fast,
                )
            )
    return cells


def _pairs(values, mechs):
    """(mech, flat result, virt result) triples in cell order."""
    out = []
    for i, mech in enumerate(mechs):
        out.append((mech, values[2 * i], values[2 * i + 1]))
    return out


def virt_assemble(values, fast: bool = False) -> ExperimentResult:
    apache = _pairs(values[: 2 * len(MECHS)], MECHS)
    dedup = _pairs(values[2 * len(MECHS):], DEDUP_MECHS)

    rows = []

    def recovery(tax: float, linux_tax: float) -> float:
        # Fraction of the virtualized-Linux explosion this mechanism does
        # NOT pay; linux itself is the 0% reference.
        if linux_tax <= 0:
            return 0.0
        return round(100.0 * (1.0 - tax / linux_tax), 1)

    linux_tax_apache = None
    for mech, flat, virt in apache:
        tax = virt.metric("munmap_us") - flat.metric("munmap_us")
        if mech == "linux":
            linux_tax_apache = tax
        rows.append(
            (
                "apache",
                mech,
                round(flat.metric("munmap_us"), 2),
                round(virt.metric("munmap_us"), 2),
                round(tax, 2),
                recovery(tax, linux_tax_apache),
                int(virt.counters.get("virt.walk.2d", 0)),
                round(virt.counters.get("virt.host_inval.ns", 0) / 1e6, 3),
            )
        )
    linux_tax_dedup = None
    for mech, flat, virt in dedup:
        tax = virt.metric("runtime_ms") - flat.metric("runtime_ms")
        if mech == "linux":
            linux_tax_dedup = tax
        rows.append(
            (
                "dedup",
                mech,
                round(flat.metric("runtime_ms"), 3),
                round(virt.metric("runtime_ms"), 3),
                round(tax, 3),
                recovery(tax, linux_tax_dedup),
                int(virt.counters.get("virt.walk.2d", 0)),
                round(virt.counters.get("virt.host_inval.ns", 0) / 1e6, 3),
            )
        )
    return ExperimentResult(
        exp_id="virt",
        title=(
            "Two-level translation: virtualization shootdown tax and recovery "
            "(8s120c; apache cost = munmap us, dedup cost = runtime ms)"
        ),
        headers=(
            "workload",
            "mechanism",
            "flat cost",
            "virt cost",
            "virt tax",
            "recovered %",
            "2D walks",
            "host-inval ms",
        ),
        rows=tuple(rows),
        paper_expectation=(
            "virtualized linux pays strictly more per munmap than flat linux "
            "(synchronous INVEPT broadcast to every sharing vCPU on top of the "
            "guest IPIs); latr and hatric each recover >= 50% of that added tax "
            "-- latr by deferring host invalidation off the critical path, "
            "hatric by snooping host-table updates instead of interrupting vCPUs"
        ),
        notes=(
            "flat rows run with use_virtualization=False and carry zero virt.* "
            "counters (escape-hatch discipline: off is byte-identical to pre-"
            "virtualization builds); 2D-walk stepping charges (n*m + n + m - n) "
            "EPT steps per guest walk, short-circuited at hugepage levels"
        ),
    )


cell_experiment("virt", virt_cells, virt_assemble)
