"""Experiment machinery: result tables, registry, text rendering.

Each paper table/figure has one module in this package registering a
callable via :func:`experiment`. The CLI (``python -m repro <id>``) and the
benchmark harness both go through :func:`run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A rendered experiment: a table plus provenance."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    #: What the paper reports for this table/figure (for EXPERIMENTS.md).
    paper_expectation: str = ""
    notes: str = ""

    def render(self) -> str:
        cols = len(self.headers)
        widths = [len(str(h)) for h in self.headers]
        formatted_rows = []
        for row in self.rows:
            # Render ragged rows defensively: short rows pad with empty
            # cells, long rows truncate to the header count.
            cells = [self._fmt(cell) for cell in row][:cols]
            cells += [""] * (cols - len(cells))
            formatted_rows.append(cells)
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(self.headers)),
            sep,
        ]
        for cells in formatted_rows:
            lines.append(" | ".join(cells[i].ljust(widths[i]) for i in range(cols)))
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def to_csv(self) -> str:
        """Comma-separated rows (header first) for plotting pipelines."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        cols = len(self.headers)
        writer.writerow(list(self.headers))
        for row in self.rows:
            # Same pad/truncate-to-headers rule as render(): every CSV row
            # parses with a fixed column count.
            cells = list(row)[:cols]
            cells += [""] * (cols - len(cells))
            writer.writerow(cells)
        return buf.getvalue()


#: exp id -> callable(fast: bool) -> ExperimentResult
_REGISTRY: Dict[str, Callable[[bool], ExperimentResult]] = {}


def experiment(exp_id: str):
    """Decorator registering an experiment under ``exp_id``."""

    def wrap(fn: Callable[[bool], ExperimentResult]):
        _REGISTRY[exp_id] = fn
        return fn

    return wrap


def available_experiments() -> List[str]:
    _load_all()
    return sorted(_REGISTRY)


def run_experiment(exp_id: str, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id ('fig6', 'tab5', ...)."""
    _load_all()
    try:
        fn = _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return fn(fast)


def _load_all() -> None:
    """Import every experiment module (they self-register)."""
    from . import (  # noqa: F401
        ablations,
        fig_apache,
        fig_microbench,
        fig_numa,
        fig_parsec,
        fig_timelines,
        fuzz,
        mech_compare,
        memoverhead,
        model_check,
        tail_latency,
        thp,
        tables,
    )
