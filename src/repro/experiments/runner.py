"""Experiment machinery: result tables, the run-cell model, execution backends.

Each paper table/figure has one module in this package. The CLI
(``python -m repro <id>``) and the benchmark harness both go through
:func:`run_experiment` / :func:`run_many`.

The cell model
==============

An experiment is a *sweep over independent simulated boots*: every row (or
cell of a row) comes from booting a fresh :func:`repro.build_system` machine
with one ``(machine, mechanism, cores/pages/workload)`` configuration and
measuring it. The registry therefore stores, per experiment id, a pair of
pure functions instead of one opaque callable:

* ``cells(fast) -> list[RunCell]`` -- enumerate the independent units of
  work. A :class:`RunCell` is a picklable declarative record: the dotted
  ``"module:function"`` entry point to execute, its keyword ``params``
  (builder kwargs for ``build_system`` / a workload config), the
  deterministic ``seed``, and the fast-mode flag.
* ``assemble(values, fast) -> ExperimentResult`` -- fold the cell values
  (in cell order) into the rendered table.

Because cells share no state -- each boots its own :class:`Simulator` with
its own seed -- they can execute anywhere: inline in this process
(``jobs=1``, the default, byte-identical to the historical serial code) or
sharded across a :class:`concurrent.futures.ProcessPoolExecutor`
(``jobs=N``). The executor preserves cell order on reassembly, records
per-cell wall-clock and simulator-event counts (:class:`CellOutcome`), and
surfaces worker crashes as :class:`CellExecutionError` naming the cell.

Experiments that are inherently sequential (fig2/fig3 timelines, the fuzz
campaigns, model-check) register through the legacy :func:`experiment`
decorator, which wraps the whole body in a single fallback cell -- the
registry API stays uniform and ``--jobs`` remains valid for every id.
"""

from __future__ import annotations

import importlib
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass
class ExperimentResult:
    """A rendered experiment: a table plus provenance."""

    exp_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    #: What the paper reports for this table/figure (for EXPERIMENTS.md).
    paper_expectation: str = ""
    notes: str = ""

    def render(self) -> str:
        cols = len(self.headers)
        widths = [len(str(h)) for h in self.headers]
        formatted_rows = []
        for row in self.rows:
            # Render ragged rows defensively: short rows pad with empty
            # cells, long rows truncate to the header count.
            cells = [self._fmt(cell) for cell in row][:cols]
            cells += [""] * (cols - len(cells))
            formatted_rows.append(cells)
            for i, cell in enumerate(cells):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.exp_id}: {self.title} ==",
            " | ".join(str(h).ljust(widths[i]) for i, h in enumerate(self.headers)),
            sep,
        ]
        for cells in formatted_rows:
            lines.append(" | ".join(cells[i].ljust(widths[i]) for i in range(cols)))
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    @staticmethod
    def _fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def to_csv(self) -> str:
        """Comma-separated rows (header first) for plotting pipelines."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        cols = len(self.headers)
        writer.writerow(list(self.headers))
        for row in self.rows:
            # Same pad/truncate-to-headers rule as render(): every CSV row
            # parses with a fixed column count.
            cells = list(row)[:cols]
            cells += [""] * (cols - len(cells))
            writer.writerow(cells)
        return buf.getvalue()

    def to_json(self) -> str:
        """A JSON document that :meth:`from_json` restores to an equal-
        rendering result. Tuples become lists, but :meth:`render` and
        :meth:`to_csv` treat the two identically, so round-tripped results
        diff cleanly against originals."""
        import json

        return json.dumps(
            {
                "exp_id": self.exp_id,
                "title": self.title,
                "headers": list(self.headers),
                "rows": [list(row) for row in self.rows],
                "paper_expectation": self.paper_expectation,
                "notes": self.notes,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        import json

        data = json.loads(text)
        return cls(
            exp_id=data["exp_id"],
            title=data["title"],
            headers=tuple(data["headers"]),
            rows=[tuple(row) for row in data["rows"]],
            paper_expectation=data.get("paper_expectation", ""),
            notes=data.get("notes", ""),
        )


# ---------------------------------------------------------------------------
# Run cells
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunCell:
    """One independent simulated boot of an experiment sweep.

    Declarative and picklable: nothing here references live simulator
    objects, so a cell can cross a process boundary and execute anywhere.
    """

    #: The experiment this cell belongs to.
    exp_id: str
    #: Stable human-readable id, unique within the experiment
    #: (e.g. ``"cores=8/latr"``).
    cell_id: str
    #: Entry point as ``"package.module:function"``; must be module-level so
    #: worker processes can resolve it by name.
    fn: str
    #: Keyword arguments for ``fn`` -- builder kwargs for ``build_system`` /
    #: the workload config. Every value must be picklable.
    params: Dict[str, Any] = field(default_factory=dict)
    #: Deterministic RNG seed this cell runs under (mirrored inside
    #: ``params`` where the entry point takes one).
    seed: int = 1
    #: Whether the cell was enumerated in fast mode (reduced sweeps).
    fast: bool = False

    def resolve(self) -> Callable[..., object]:
        mod_name, _, fn_name = self.fn.partition(":")
        if not fn_name:
            raise ValueError(f"cell {self.cell_id}: fn must be 'module:function', got {self.fn!r}")
        module = importlib.import_module(mod_name)
        return getattr(module, fn_name)

    def run(self) -> object:
        return self.resolve()(**self.params)


@dataclass
class CellOutcome:
    """A finished cell: its value plus where the time went."""

    cell: RunCell
    value: object
    #: Wall-clock seconds inside the executing process (worker-side when
    #: sharded, so pool queueing does not pollute the timing).
    wall_s: float
    #: Simulator events the cell executed (worker-local counter delta).
    events: int


class CellExecutionError(RuntimeError):
    """A cell raised (or its worker process died) during execution."""

    def __init__(self, cell: RunCell, message: str):
        super().__init__(f"cell {cell.exp_id}/{cell.cell_id} failed: {message}")
        self.cell = cell
        self.message = message

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` (the
        # formatted string) and would crash the pool's result thread;
        # rebuild from the original (cell, message) pair instead.
        return (CellExecutionError, (self.cell, self.message))


def execute_cell(cell: RunCell) -> CellOutcome:
    """Run one cell in this process, timing it and counting its simulator
    events. This is the worker entry point for the sharded backend."""
    from ..sim.engine import Simulator

    events_before = Simulator.total_events_executed
    started = time.perf_counter()
    value = cell.run()
    wall = time.perf_counter() - started
    return CellOutcome(
        cell=cell,
        value=value,
        wall_s=wall,
        events=Simulator.total_events_executed - events_before,
    )


def _execute_cell_in_worker(cell: RunCell) -> CellOutcome:
    """Pool target: make failures picklable by flattening the traceback."""
    try:
        return execute_cell(cell)
    except Exception:  # noqa: BLE001 -- re-raised with provenance in the parent
        raise CellExecutionError(cell, traceback.format_exc())


def resolve_jobs(jobs: Optional[int]) -> int:
    """``None``/``<=0`` means one worker per CPU."""
    import os

    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_cells(cells: Sequence[RunCell], jobs: int = 1) -> List[CellOutcome]:
    """Execute cells, returning outcomes in the order the cells were given.

    ``jobs == 1`` runs everything inline in this process -- no pool, no
    pickling, byte-identical to the historical serial path. ``jobs > 1``
    shards the cells across a ``ProcessPoolExecutor``; completion order is
    arbitrary but reassembly order is not. A cell that raises (or whose
    worker process dies) surfaces as :class:`CellExecutionError` naming it.
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(cells) <= 1:
        return [execute_cell(cell) for cell in cells]

    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        futures = [(i, pool.submit(_execute_cell_in_worker, cell)) for i, cell in enumerate(cells)]
        for i, future in futures:
            try:
                outcomes[i] = future.result()
            except CellExecutionError:
                raise
            except BrokenProcessPool as exc:
                raise CellExecutionError(
                    cells[i],
                    f"worker process died abruptly ({exc}); "
                    "a sibling cell may have crashed the pool",
                ) from exc
    return [outcome for outcome in outcomes if outcome is not None]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


#: Signature of a cell enumerator: fast -> ordered independent cells.
CellsFn = Callable[[bool], List[RunCell]]
#: Signature of an assembler: (cell values in cell order, fast) -> table.
AssembleFn = Callable[[List[object], bool], ExperimentResult]


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: how to decompose and reassemble one experiment."""

    exp_id: str
    cells: CellsFn
    assemble: AssembleFn
    #: False for inherently sequential experiments riding the single-cell
    #: fallback (their one cell still runs under any ``--jobs``).
    parallel: bool = True


#: exp id -> spec. Every experiment, cell-decomposed or legacy, lives here.
_REGISTRY: Dict[str, ExperimentSpec] = {}

#: Monolithic bodies behind the single-cell fallback (legacy registrations).
_LEGACY_BODIES: Dict[str, Callable[[bool], ExperimentResult]] = {}


def cell_experiment(exp_id: str, cells: CellsFn, assemble: AssembleFn) -> None:
    """Register a cell-decomposed experiment."""
    _REGISTRY[exp_id] = ExperimentSpec(exp_id=exp_id, cells=cells, assemble=assemble)


def experiment(exp_id: str):
    """Decorator registering a monolithic ``callable(fast) -> ExperimentResult``.

    The body is wrapped in a single fallback :class:`RunCell`, so sequential
    experiments share the registry API (and the ``--jobs`` plumbing) with
    cell-decomposed ones.
    """

    def wrap(fn: Callable[[bool], ExperimentResult]):
        _LEGACY_BODIES[exp_id] = fn

        def cells(fast: bool) -> List[RunCell]:
            return [
                RunCell(
                    exp_id=exp_id,
                    cell_id="all",
                    fn="repro.experiments.runner:run_legacy_body",
                    params={"exp_id": exp_id, "fast": fast},
                    fast=fast,
                )
            ]

        def assemble(values: List[object], fast: bool) -> ExperimentResult:
            (result,) = values
            assert isinstance(result, ExperimentResult)
            return result

        _REGISTRY[exp_id] = ExperimentSpec(
            exp_id=exp_id, cells=cells, assemble=assemble, parallel=False
        )
        return fn

    return wrap


def run_legacy_body(exp_id: str, fast: bool) -> ExperimentResult:
    """Worker entry point for the single-cell fallback."""
    _load_all()
    return _LEGACY_BODIES[exp_id](fast)


def available_experiments() -> List[str]:
    _load_all()
    return sorted(_REGISTRY)


def experiment_spec(exp_id: str) -> ExperimentSpec:
    _load_all()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def experiment_cells(exp_id: str, fast: bool = False) -> List[RunCell]:
    """The declarative work list one experiment would run."""
    return experiment_spec(exp_id).cells(fast)


# ---------------------------------------------------------------------------
# Execution layer
# ---------------------------------------------------------------------------


@dataclass
class ExperimentRun:
    """One executed experiment: its table plus per-cell accounting."""

    exp_id: str
    result: ExperimentResult
    outcomes: List[CellOutcome]
    jobs: int

    @property
    def cell_seconds(self) -> float:
        """Aggregate in-cell wall-clock (sums across workers when sharded,
        so it can exceed elapsed time)."""
        return sum(outcome.wall_s for outcome in self.outcomes)

    @property
    def events(self) -> int:
        return sum(outcome.events for outcome in self.outcomes)

    def cell_timings(self) -> List[Tuple[str, float]]:
        return [(o.cell.cell_id, o.wall_s) for o in self.outcomes]


def execute_experiment(exp_id: str, fast: bool = False, jobs: int = 1) -> ExperimentRun:
    """Run one experiment through the cell executor."""
    spec = experiment_spec(exp_id)
    cells = spec.cells(fast)
    outcomes = run_cells(cells, jobs=jobs)
    result = spec.assemble([outcome.value for outcome in outcomes], fast)
    return ExperimentRun(exp_id=exp_id, result=result, outcomes=outcomes, jobs=jobs)


def run_experiment(exp_id: str, fast: bool = False, jobs: int = 1) -> ExperimentResult:
    """Run one experiment by id ('fig6', 'tab5', ...)."""
    return execute_experiment(exp_id, fast=fast, jobs=jobs).result


def run_many(
    exp_ids: Sequence[str], fast: bool = False, jobs: int = 1
) -> List[ExperimentRun]:
    """Run several experiments, sharding the *union* of their cells.

    With ``jobs > 1`` every cell of every experiment goes into one shared
    pool, so single-cell (sequential-fallback) experiments overlap with the
    big sweeps instead of serializing between them -- this is what makes
    ``python -m repro all --fast --jobs N`` scale. Results come back in
    ``exp_ids`` order with tables identical to per-experiment serial runs.
    """
    specs = [experiment_spec(exp_id) for exp_id in exp_ids]
    cell_lists = [spec.cells(fast) for spec in specs]
    flat = [cell for cell_list in cell_lists for cell in cell_list]
    outcomes = run_cells(flat, jobs=jobs)
    runs: List[ExperimentRun] = []
    offset = 0
    for spec, cell_list in zip(specs, cell_lists):
        chunk = outcomes[offset : offset + len(cell_list)]
        offset += len(cell_list)
        result = spec.assemble([outcome.value for outcome in chunk], fast)
        runs.append(
            ExperimentRun(exp_id=spec.exp_id, result=result, outcomes=chunk, jobs=jobs)
        )
    return runs


def _load_all() -> None:
    """Import every experiment module (they self-register)."""
    from . import (  # noqa: F401
        ablations,
        fig_apache,
        fig_microbench,
        fig_numa,
        fig_parsec,
        fig_timelines,
        fuzz,
        mech_compare,
        memoverhead,
        model_check,
        model_exhaust,
        numapte,
        slo,
        tail_latency,
        thp,
        tables,
        virt,
    )
