"""Six-way mechanism comparison (an executable version of Table 2).

Runs every implemented mechanism -- including the hardware proposals DiDi
and UNITD -- on the Figure 6 microbenchmark and the Apache workload. The
punchline is the paper's thesis: LATR, requiring no hardware changes,
matches the hardware-assisted designs on the free-operation path.

One mechanism = one run cell (its microbench + Apache boots together).
"""

from __future__ import annotations

from ..coherence import MECHANISMS
from .runner import ExperimentResult, RunCell, cell_experiment

ORDER = ("linux", "barrelfish", "abis", "didi", "unitd", "latr")


def mech_cell(mechanism: str, reps: int, duration: int):
    """Both workload boots for one mechanism (module-level so cells can
    name it)."""
    from ..workloads.apache import ApacheConfig, ApacheWorkload
    from ..workloads.microbench import MicrobenchConfig, MunmapMicrobench

    micro = MunmapMicrobench(
        MicrobenchConfig(cores=16, pages=1, reps=reps)
    ).run(mechanism)
    apache = ApacheWorkload(
        ApacheConfig(cores=12, duration_ms=duration, warmup_ms=10)
    ).run(mechanism)
    return micro, apache


def mech_compare_cells(fast: bool = False):
    reps = 20 if fast else 50
    duration = 30 if fast else 80
    return [
        RunCell(
            exp_id="mech-compare",
            cell_id=mech,
            fn="repro.experiments.mech_compare:mech_cell",
            params=dict(mechanism=mech, reps=reps, duration=duration),
            fast=fast,
        )
        for mech in ORDER
    ]


def mech_compare_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    for mech, (micro, apache) in zip(ORDER, values):
        props = MECHANISMS[mech].properties
        rows.append(
            (
                mech,
                "sw" if props.no_hardware_changes else "HW",
                "async" if props.asynchronous else "sync",
                micro.metric("munmap_us"),
                micro.metric("shootdown_us"),
                apache.metric("requests_per_sec"),
                apache.counters.get("ipi.sent", 0),
            )
        )
    return ExperimentResult(
        exp_id="mech-compare",
        title="All mechanisms on the Fig. 6 microbenchmark and Apache @ 12 cores",
        headers=(
            "mechanism",
            "hw?",
            "mode",
            "munmap us (16c)",
            "shootdown us",
            "apache req/s",
            "IPIs",
        ),
        rows=rows,
        paper_expectation=(
            "the hardware proposals (DiDi, UNITD) eliminate IPI costs but "
            "need microarchitectural changes; LATR gets equivalent "
            "free-operation latency in software (Table 2's argument)"
        ),
    )


cell_experiment("mech-compare", mech_compare_cells, mech_compare_assemble)
