"""Figures 6, 7, 8: the munmap/shootdown microbenchmark.

Each (core-count|page-count, mechanism) pair is one independent simulated
boot, so the sweeps decompose into run cells executed by the sharded
backend; ``assemble`` re-derives the sweep axes from ``fast`` and folds the
cell results pairwise into the table rows.
"""

from __future__ import annotations

from .runner import ExperimentResult, RunCell, cell_experiment

MICROBENCH_FN = "repro.workloads.microbench:run_microbench"


def _fig6_cores(fast: bool):
    return (2, 4, 8, 16) if fast else (1, 2, 4, 6, 8, 10, 12, 14, 16)


def _fig7_cores(fast: bool):
    return (15, 60, 120) if fast else (15, 30, 45, 60, 75, 90, 105, 120)


def _fig8_pages(fast: bool):
    return (1, 32, 512) if fast else (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def _core_sweep_cells(exp_id: str, machine: str, core_counts, reps: int, fast: bool):
    cells = []
    for cores in core_counts:
        for mech in ("linux", "latr"):
            cells.append(
                RunCell(
                    exp_id=exp_id,
                    cell_id=f"cores={cores}/{mech}",
                    fn=MICROBENCH_FN,
                    params=dict(
                        mechanism=mech, machine=machine, cores=cores, pages=1, reps=reps
                    ),
                    fast=fast,
                )
            )
    return cells


def _core_sweep_assemble(core_counts, values) -> ExperimentResult:
    rows = []
    pairs = [values[i : i + 2] for i in range(0, len(values), 2)]
    for cores, (linux, latr) in zip(core_counts, pairs):
        improvement = 100.0 * (1 - latr.metric("munmap_us") / linux.metric("munmap_us"))
        rows.append(
            (
                cores,
                linux.metric("munmap_us"),
                linux.metric("shootdown_us"),
                100.0 * linux.metric("shootdown_fraction"),
                latr.metric("munmap_us"),
                latr.metric("shootdown_us"),
                improvement,
            )
        )
    return ExperimentResult(
        exp_id="",
        title="",
        headers=(
            "cores",
            "linux munmap us",
            "linux shootdown us",
            "linux sd %",
            "latr munmap us",
            "latr shootdown us",
            "latr improvement %",
        ),
        rows=rows,
    )


def fig6_cells(fast: bool = False):
    return _core_sweep_cells("fig6", "commodity-2s16c", _fig6_cores(fast), 20 if fast else 60, fast)


def fig6_assemble(values, fast: bool = False) -> ExperimentResult:
    result = _core_sweep_assemble(_fig6_cores(fast), values)
    result.exp_id = "fig6"
    result.title = "munmap cost vs cores, 1 page, 2-socket/16-core"
    result.paper_expectation = (
        "Linux munmap up to ~8 us at 16 cores with shootdown up to 71.6% of it; "
        "LATR improves munmap by up to 70.8% (to ~2.4 us)"
    )
    return result


def fig7_cells(fast: bool = False):
    return _core_sweep_cells(
        "fig7", "large-numa-8s120c", _fig7_cores(fast), 8 if fast else 25, fast
    )


def fig7_assemble(values, fast: bool = False) -> ExperimentResult:
    result = _core_sweep_assemble(_fig7_cores(fast), values)
    result.exp_id = "fig7"
    result.title = "munmap cost vs cores, 1 page, 8-socket/120-core"
    result.paper_expectation = (
        "Linux >120 us at 120 cores (shootdown up to 82 us / 69.3%), sharp rise "
        "past 3 sockets; LATR <40 us, a 66.7% improvement"
    )
    result.notes = "rise past 45 cores comes from two-hop IPI delivery"
    return result


def fig8_cells(fast: bool = False):
    cells = []
    for pages in _fig8_pages(fast):
        reps = 10 if (fast or pages >= 128) else 40
        for mech in ("linux", "latr"):
            cells.append(
                RunCell(
                    exp_id="fig8",
                    cell_id=f"pages={pages}/{mech}",
                    fn=MICROBENCH_FN,
                    params=dict(
                        mechanism=mech,
                        machine="commodity-2s16c",
                        cores=16,
                        pages=pages,
                        reps=reps,
                    ),
                    fast=fast,
                )
            )
    return cells


def fig8_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    pairs = [values[i : i + 2] for i in range(0, len(values), 2)]
    for pages, (linux, latr) in zip(_fig8_pages(fast), pairs):
        improvement = 100.0 * (1 - latr.metric("munmap_us") / linux.metric("munmap_us"))
        rows.append(
            (
                pages,
                linux.metric("munmap_us"),
                linux.metric("shootdown_us"),
                latr.metric("munmap_us"),
                latr.metric("shootdown_us"),
                improvement,
            )
        )
    return ExperimentResult(
        exp_id="fig8",
        title="munmap cost vs page count, 16 cores",
        headers=(
            "pages",
            "linux munmap us",
            "linux shootdown us",
            "latr munmap us",
            "latr shootdown us",
            "latr improvement %",
        ),
        rows=rows,
        paper_expectation=(
            "shootdown impact diminishes with pages (Linux full-flushes past 32); "
            "LATR improves 70.8% at 1 page, still 7.5% at 512 pages"
        ),
    )


cell_experiment("fig6", fig6_cells, fig6_assemble)
cell_experiment("fig7", fig7_cells, fig7_assemble)
cell_experiment("fig8", fig8_cells, fig8_assemble)
