"""Figures 6, 7, 8: the munmap/shootdown microbenchmark."""

from __future__ import annotations

from ..workloads.microbench import MicrobenchConfig, MunmapMicrobench
from .runner import ExperimentResult, experiment


def _core_sweep(machine: str, core_counts, reps: int) -> ExperimentResult:
    rows = []
    for cores in core_counts:
        bench = MunmapMicrobench(
            MicrobenchConfig(machine=machine, cores=cores, pages=1, reps=reps)
        )
        linux = bench.run("linux")
        latr = bench.run("latr")
        improvement = 100.0 * (1 - latr.metric("munmap_us") / linux.metric("munmap_us"))
        rows.append(
            (
                cores,
                linux.metric("munmap_us"),
                linux.metric("shootdown_us"),
                100.0 * linux.metric("shootdown_fraction"),
                latr.metric("munmap_us"),
                latr.metric("shootdown_us"),
                improvement,
            )
        )
    return ExperimentResult(
        exp_id="",
        title="",
        headers=(
            "cores",
            "linux munmap us",
            "linux shootdown us",
            "linux sd %",
            "latr munmap us",
            "latr shootdown us",
            "latr improvement %",
        ),
        rows=rows,
    )


@experiment("fig6")
def fig6(fast: bool = False) -> ExperimentResult:
    core_counts = (2, 4, 8, 16) if fast else (1, 2, 4, 6, 8, 10, 12, 14, 16)
    reps = 20 if fast else 60
    result = _core_sweep("commodity-2s16c", core_counts, reps)
    result.exp_id = "fig6"
    result.title = "munmap cost vs cores, 1 page, 2-socket/16-core"
    result.paper_expectation = (
        "Linux munmap up to ~8 us at 16 cores with shootdown up to 71.6% of it; "
        "LATR improves munmap by up to 70.8% (to ~2.4 us)"
    )
    return result


@experiment("fig7")
def fig7(fast: bool = False) -> ExperimentResult:
    core_counts = (15, 60, 120) if fast else (15, 30, 45, 60, 75, 90, 105, 120)
    reps = 8 if fast else 25
    result = _core_sweep("large-numa-8s120c", core_counts, reps)
    result.exp_id = "fig7"
    result.title = "munmap cost vs cores, 1 page, 8-socket/120-core"
    result.paper_expectation = (
        "Linux >120 us at 120 cores (shootdown up to 82 us / 69.3%), sharp rise "
        "past 3 sockets; LATR <40 us, a 66.7% improvement"
    )
    result.notes = "rise past 45 cores comes from two-hop IPI delivery"
    return result


@experiment("fig8")
def fig8(fast: bool = False) -> ExperimentResult:
    page_counts = (1, 32, 512) if fast else (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
    rows = []
    for pages in page_counts:
        reps = 10 if (fast or pages >= 128) else 40
        bench = MunmapMicrobench(
            MicrobenchConfig(machine="commodity-2s16c", cores=16, pages=pages, reps=reps)
        )
        linux = bench.run("linux")
        latr = bench.run("latr")
        improvement = 100.0 * (1 - latr.metric("munmap_us") / linux.metric("munmap_us"))
        rows.append(
            (
                pages,
                linux.metric("munmap_us"),
                linux.metric("shootdown_us"),
                latr.metric("munmap_us"),
                latr.metric("shootdown_us"),
                improvement,
            )
        )
    return ExperimentResult(
        exp_id="fig8",
        title="munmap cost vs page count, 16 cores",
        headers=(
            "pages",
            "linux munmap us",
            "linux shootdown us",
            "latr munmap us",
            "latr shootdown us",
            "latr improvement %",
        ),
        rows=rows,
        paper_expectation=(
            "shootdown impact diminishes with pages (Linux full-flushes past 32); "
            "LATR improves 70.8% at 1 page, still 7.5% at 512 pages"
        ),
    )
