"""Figure 10 (PARSEC normalized runtime) and Figure 12 (low-shootdown apps)."""

from __future__ import annotations

from ..workloads.apache import ApacheConfig, ApacheWorkload
from ..workloads.parsec import PARSEC_PROFILES, ParsecConfig, ParsecWorkload
from .runner import ExperimentResult, experiment


def _normalized_runtime(profile_name: str, fast: bool):
    cfg = ParsecConfig(work_per_core_ms=40 if fast else 120)
    linux = ParsecWorkload(PARSEC_PROFILES[profile_name], cfg).run("linux")
    latr = ParsecWorkload(PARSEC_PROFILES[profile_name], cfg).run("latr")
    ratio = latr.metric("runtime_ms") / linux.metric("runtime_ms")
    return ratio, linux, latr


@experiment("fig10")
def fig10(fast: bool = False) -> ExperimentResult:
    names = ("blackscholes", "canneal", "dedup", "vips") if fast else sorted(PARSEC_PROFILES)
    rows = []
    ratios = []
    for name in names:
        ratio, linux, latr = _normalized_runtime(name, fast)
        ratios.append(ratio)
        rows.append(
            (
                name,
                ratio,
                linux.metric("shootdowns_per_sec"),
                latr.metric("shootdowns_per_sec"),
                linux.metric("ipis_per_sec"),
            )
        )
    rows.append(("AVERAGE", sum(ratios) / len(ratios), "", "", ""))
    return ExperimentResult(
        exp_id="fig10",
        title="PARSEC normalized runtime (LATR/Linux) and shootdown rates, 16 cores",
        headers=("benchmark", "latr/linux runtime", "linux sd/s", "latr sd/s", "linux ipi/s"),
        rows=rows,
        paper_expectation=(
            "up to 9.6% faster for dedup (highest shootdown rate), at most 1.7% "
            "slower for canneal (frequent context switches -> sweeps); 1.5% "
            "faster on average"
        ),
    )


@experiment("fig12")
def fig12(fast: bool = False) -> ExperimentResult:
    rows = []
    duration = 40 if fast else 120
    # Webservers on a single core: no remote cores, so every shootdown takes
    # the no-target fast path (still counted as initiated, but no IPI work).
    for server, use_mmap in (("nginx", False), ("apache", True)):
        results = {}
        for mech in ("linux", "latr"):
            results[mech] = ApacheWorkload(
                ApacheConfig(cores=1, use_mmap=use_mmap, duration_ms=duration, warmup_ms=10)
            ).run(mech)
        # Normalized performance: higher is better, so invert for "runtime".
        ratio = results["linux"].metric("requests_per_sec") / max(
            1.0, results["latr"].metric("requests_per_sec")
        )
        rows.append(
            (f"{server} (1 core)", ratio, results["latr"].metric("shootdowns_per_sec"))
        )
    parsec_subset = (
        ("canneal",) if fast else ("bodytrack", "canneal", "facesim", "ferret", "streamcluster")
    )
    for name in parsec_subset:
        ratio, linux, latr = _normalized_runtime(name, fast)
        rows.append((f"{name} (16 cores)", ratio, latr.metric("shootdowns_per_sec")))
    return ExperimentResult(
        exp_id="fig12",
        title="LATR overhead on applications with few TLB shootdowns",
        headers=("application", "latr/linux runtime", "shootdowns/s"),
        rows=rows,
        paper_expectation="at most 1.7% overhead (canneal); some apps slightly improve",
    )
