"""Figure 10 (PARSEC normalized runtime) and Figure 12 (low-shootdown apps).

One (application, mechanism) boot per run cell; ``assemble`` re-derives the
benchmark lists from ``fast`` and computes the normalized-runtime ratios.
"""

from __future__ import annotations

from ..workloads.parsec import PARSEC_PROFILES
from .runner import ExperimentResult, RunCell, cell_experiment

APACHE_FN = "repro.workloads.apache:run_apache"
PARSEC_FN = "repro.workloads.parsec:run_parsec"


def _parsec_pair_cells(exp_id: str, name: str, fast: bool):
    work = 40 if fast else 120
    return [
        RunCell(
            exp_id=exp_id,
            cell_id=f"{name}/{mech}",
            fn=PARSEC_FN,
            params=dict(profile=name, mechanism=mech, work_per_core_ms=work),
            fast=fast,
        )
        for mech in ("linux", "latr")
    ]


def _fig10_names(fast: bool):
    return ("blackscholes", "canneal", "dedup", "vips") if fast else sorted(PARSEC_PROFILES)


def fig10_cells(fast: bool = False):
    cells = []
    for name in _fig10_names(fast):
        cells.extend(_parsec_pair_cells("fig10", name, fast))
    return cells


def fig10_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    ratios = []
    pairs = [values[i : i + 2] for i in range(0, len(values), 2)]
    for name, (linux, latr) in zip(_fig10_names(fast), pairs):
        ratio = latr.metric("runtime_ms") / linux.metric("runtime_ms")
        ratios.append(ratio)
        rows.append(
            (
                name,
                ratio,
                linux.metric("shootdowns_per_sec"),
                latr.metric("shootdowns_per_sec"),
                linux.metric("ipis_per_sec"),
            )
        )
    rows.append(("AVERAGE", sum(ratios) / len(ratios), "", "", ""))
    return ExperimentResult(
        exp_id="fig10",
        title="PARSEC normalized runtime (LATR/Linux) and shootdown rates, 16 cores",
        headers=("benchmark", "latr/linux runtime", "linux sd/s", "latr sd/s", "linux ipi/s"),
        rows=rows,
        paper_expectation=(
            "up to 9.6% faster for dedup (highest shootdown rate), at most 1.7% "
            "slower for canneal (frequent context switches -> sweeps); 1.5% "
            "faster on average"
        ),
    )


def _fig12_parsec_names(fast: bool):
    return ("canneal",) if fast else ("bodytrack", "canneal", "facesim", "ferret", "streamcluster")


def fig12_cells(fast: bool = False):
    duration = 40 if fast else 120
    cells = []
    # Webservers on a single core: no remote cores, so every shootdown takes
    # the no-target fast path (still counted as initiated, but no IPI work).
    for server, use_mmap in (("nginx", False), ("apache", True)):
        for mech in ("linux", "latr"):
            cells.append(
                RunCell(
                    exp_id="fig12",
                    cell_id=f"{server}/{mech}",
                    fn=APACHE_FN,
                    params=dict(
                        mechanism=mech,
                        cores=1,
                        use_mmap=use_mmap,
                        duration_ms=duration,
                        warmup_ms=10,
                    ),
                    fast=fast,
                )
            )
    for name in _fig12_parsec_names(fast):
        cells.extend(_parsec_pair_cells("fig12", name, fast))
    return cells


def fig12_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    pairs = [values[i : i + 2] for i in range(0, len(values), 2)]
    for (server, _use_mmap), (linux, latr) in zip(
        (("nginx", False), ("apache", True)), pairs[:2]
    ):
        # Normalized performance: higher is better, so invert for "runtime".
        ratio = linux.metric("requests_per_sec") / max(
            1.0, latr.metric("requests_per_sec")
        )
        rows.append((f"{server} (1 core)", ratio, latr.metric("shootdowns_per_sec")))
    for name, (linux, latr) in zip(_fig12_parsec_names(fast), pairs[2:]):
        ratio = latr.metric("runtime_ms") / linux.metric("runtime_ms")
        rows.append((f"{name} (16 cores)", ratio, latr.metric("shootdowns_per_sec")))
    return ExperimentResult(
        exp_id="fig12",
        title="LATR overhead on applications with few TLB shootdowns",
        headers=("application", "latr/linux runtime", "shootdowns/s"),
        rows=rows,
        paper_expectation="at most 1.7% overhead (canneal); some apps slightly improve",
    )


cell_experiment("fig10", fig10_cells, fig10_assemble)
cell_experiment("fig12", fig12_cells, fig12_assemble)
