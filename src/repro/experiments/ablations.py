"""Ablations of LATR's design choices (DESIGN.md section 5).

These go beyond the paper's own figures: they quantify the trade-offs the
paper only names -- the 64-entry queue depth (section 8), the two-tick
reclamation delay (section 3), the sweep triggers (section 4.1), and PCID
mode (section 4.5).
"""

from __future__ import annotations

from .. import build_system
from ..mm.addr import PAGE_SIZE
from ..sim.engine import MSEC, AllOf
from ..workloads.apache import ApacheConfig, ApacheWorkload
from ..workloads.microbench import MicrobenchConfig, MunmapMicrobench
from .runner import ExperimentResult, experiment


@experiment("abl-queue")
def ablation_queue_depth(fast: bool = False) -> ExperimentResult:
    """Queue depth vs fallback-IPI rate under a high munmap rate."""
    depths = (4, 16, 64) if fast else (2, 4, 8, 16, 32, 64, 128)
    duration = 30 if fast else 80
    rows = []
    for depth in depths:
        result = ApacheWorkload(
            ApacheConfig(cores=8, duration_ms=duration, warmup_ms=10)
        ).run("latr", queue_depth=depth)
        posted = result.counters.get("latr.states_posted", 0)
        fallbacks = result.counters.get("latr.fallback_ipi", 0)
        total = posted + fallbacks
        rows.append(
            (
                depth,
                result.metric("requests_per_sec"),
                fallbacks,
                100.0 * fallbacks / total if total else 0.0,
            )
        )
    return ExperimentResult(
        exp_id="abl-queue",
        title="Ablation: LATR state-queue depth (paper section 8 trade-off)",
        headers=("queue depth", "apache req/s", "fallback IPIs", "fallback %"),
        rows=rows,
        paper_expectation=(
            "the paper picks 64 states/core; shallow queues fall back to IPIs "
            "under load, deep queues only add sweep work"
        ),
    )


@experiment("abl-reclaim")
def ablation_reclaim_delay(fast: bool = False) -> ExperimentResult:
    """Reclamation delay vs transiently-held memory."""
    delays = (1, 2, 4) if fast else (1, 2, 3, 4, 6, 8)
    rows = []
    for ticks in delays:
        bench = MunmapMicrobench(
            MicrobenchConfig(cores=8, pages=16, reps=120 if fast else 260)
        )
        result = bench.run("latr", reclaim_delay_ticks=ticks)
        overhead = bench.lazy_memory_overhead("latr", reclaim_delay_ticks=ticks)
        rows.append(
            (
                ticks,
                result.metric("munmap_us"),
                overhead.metric("peak_lazy_mb"),
                overhead.counters.get("latr.fallback_ipi", 0),
            )
        )
    return ExperimentResult(
        exp_id="abl-reclaim",
        title="Ablation: reclamation delay (ticks) vs held memory",
        headers=("reclaim delay (ticks)", "munmap us", "peak lazy MB", "fallback IPIs"),
        rows=rows,
        paper_expectation=(
            "2 ticks is the minimum safe delay with unsynchronized ticks; "
            "longer delays hold more transient memory and, past the queue "
            "depth, start forcing fallback IPIs (states pinned until reclaim)"
        ),
    )


@experiment("abl-sweep")
def ablation_sweep_triggers(fast: bool = False) -> ExperimentResult:
    """Tick-only vs tick+context-switch sweeping: staleness bound."""
    rows = []
    for label, on_tick, on_ctx in (
        ("tick + context switch", True, True),
        ("tick only", True, False),
    ):
        system = build_system(
            "latr", cores=4, sweep_on_tick=on_tick, sweep_on_context_switch=on_ctx
        )
        kernel = system.kernel
        proc = kernel.create_process("p")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]
        staleness = []

        def remote_ctx_switches(stop):
            # Remote cores context-switch ~every 200 us (a blocking workload
            # like canneal); with context-switch sweeps enabled this tightens
            # the staleness bound well below the tick interval.
            from repro.sim.engine import Timeout

            while not stop:
                yield Timeout(200_000)
                for core in kernel.machine.cores[1:]:
                    kernel.scheduler.synthetic_context_switch(core)

        stop_flag = []
        system.sim.spawn(remote_ctx_switches(stop_flag))

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _ in range(10 if fast else 40):
                vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
                spawned = [
                    system.sim.spawn(
                        kernel.syscalls.touch_pages(
                            t, kernel.machine.core(t.home_core_id), vrange, write=True
                        )
                    )
                    for t in tasks
                ]
                yield AllOf(spawned)
                posted_at = system.sim.now
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                # Wait for the posted state to complete and record staleness.
                states = list(kernel.coherence._pending_reclaim)
                if states:
                    state = states[-1]
                    yield state.done
                    staleness.append(state.completed_at - posted_at)
            stop_flag.append(True)

        driver = system.sim.spawn(body())
        system.sim.run(until=500 * MSEC)
        mean_stale = sum(staleness) / len(staleness) / 1000.0 if staleness else 0.0
        max_stale = max(staleness) / 1000.0 if staleness else 0.0
        rows.append((label, mean_stale, max_stale, kernel.stats.counter("latr.sweeps").value))
    return ExperimentResult(
        exp_id="abl-sweep",
        title="Ablation: sweep triggers vs invalidation latency",
        headers=("sweep trigger", "mean staleness us", "max staleness us", "sweeps"),
        rows=rows,
        paper_expectation="ticks alone already bound staleness at ~1 ms; context switches tighten it",
    )


@experiment("abl-pcid")
def ablation_pcid(fast: bool = False) -> ExperimentResult:
    """PCID on/off (paper section 4.5): throughput and TLB behaviour."""
    duration = 30 if fast else 80
    rows = []
    for pcid in (False, True):
        result = ApacheWorkload(
            ApacheConfig(cores=8, duration_ms=duration, warmup_ms=10, pcid=pcid)
        ).run("latr")
        rows.append((("on" if pcid else "off"), result.metric("requests_per_sec")))
    return ExperimentResult(
        exp_id="abl-pcid",
        title="Ablation: PCID-tagged TLBs (paper section 4.5)",
        headers=("pcid", "apache req/s"),
        rows=rows,
        paper_expectation="LATR works in both modes; context-switch sweeps are mandatory with PCIDs",
        notes="single-process Apache keeps the PCID effect small by construction",
    )


@experiment("abl-flushthresh")
def ablation_flush_threshold(fast: bool = False) -> ExperimentResult:
    """Linux's 32-page full-flush heuristic (visible in Figure 8)."""
    from dataclasses import replace

    from ..hw.spec import COMMODITY_2S16C
    from ..hw.machine import Machine
    from ..kernel.kernel import Kernel
    from ..coherence import make_mechanism
    from ..sim.engine import Simulator

    thresholds = (8, 32, 128) if fast else (8, 16, 32, 64, 128)
    pages = 48
    rows = []
    for threshold in thresholds:
        spec = replace(
            COMMODITY_2S16C.with_cores(8), name=f"t{threshold}", full_flush_threshold=threshold
        )
        sim = Simulator()
        machine = Machine(sim, spec)
        kernel = Kernel(machine, make_mechanism("linux"))
        kernel.start()
        proc = kernel.create_process("p")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(8)]
        samples = []

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _ in range(10 if fast else 30):
                vrange = yield from kernel.syscalls.mmap(t0, c0, pages * PAGE_SIZE)
                for t in tasks:
                    core = kernel.machine.core(t.home_core_id)
                    yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
                start = sim.now
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                samples.append(sim.now - start)

        sim.spawn(body())
        sim.run(until=2000 * MSEC)
        full_flushes = sum(c.tlb.full_flushes for c in machine.cores)
        rows.append(
            (threshold, sum(samples) / len(samples) / 1000.0, full_flushes)
        )
    return ExperimentResult(
        exp_id="abl-flushthresh",
        title=f"Ablation: full-flush threshold, {pages}-page munmap, 8 cores (Linux)",
        headers=("threshold (pages)", "munmap us", "full flushes"),
        rows=rows,
        paper_expectation=(
            "thresholds below the unmap size switch the remote handlers to a "
            "single cheap full flush (the kink in Figure 8)"
        ),
    )
