"""Ablations of LATR's design choices (DESIGN.md section 5).

These go beyond the paper's own figures: they quantify the trade-offs the
paper only names -- the 64-entry queue depth (section 8), the two-tick
reclamation delay (section 3), the sweep triggers (section 4.1), and PCID
mode (section 4.5).

Every sweep point is an independent boot, so abl-queue/abl-reclaim/
abl-pcid/abl-flushthresh decompose into run cells; abl-sweep instruments
one live system with closures and keeps the single-cell fallback.
"""

from __future__ import annotations

from .. import build_system
from ..mm.addr import PAGE_SIZE
from ..sim.engine import MSEC, AllOf
from .runner import ExperimentResult, RunCell, cell_experiment, experiment

APACHE_FN = "repro.workloads.apache:run_apache"


def _queue_depths(fast: bool):
    return (4, 16, 64) if fast else (2, 4, 8, 16, 32, 64, 128)


def abl_queue_cells(fast: bool = False):
    """Queue depth vs fallback-IPI rate under a high munmap rate."""
    duration = 30 if fast else 80
    return [
        RunCell(
            exp_id="abl-queue",
            cell_id=f"depth={depth}",
            fn=APACHE_FN,
            params=dict(
                mechanism="latr",
                mechanism_kwargs={"queue_depth": depth},
                cores=8,
                duration_ms=duration,
                warmup_ms=10,
            ),
            fast=fast,
        )
        for depth in _queue_depths(fast)
    ]


def abl_queue_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    for depth, result in zip(_queue_depths(fast), values):
        posted = result.counters.get("latr.states_posted", 0)
        fallbacks = result.counters.get("latr.fallback_ipi", 0)
        total = posted + fallbacks
        rows.append(
            (
                depth,
                result.metric("requests_per_sec"),
                fallbacks,
                100.0 * fallbacks / total if total else 0.0,
            )
        )
    return ExperimentResult(
        exp_id="abl-queue",
        title="Ablation: LATR state-queue depth (paper section 8 trade-off)",
        headers=("queue depth", "apache req/s", "fallback IPIs", "fallback %"),
        rows=rows,
        paper_expectation=(
            "the paper picks 64 states/core; shallow queues fall back to IPIs "
            "under load, deep queues only add sweep work"
        ),
    )


def _reclaim_delays(fast: bool):
    return (1, 2, 4) if fast else (1, 2, 3, 4, 6, 8)


def reclaim_cell(ticks: int, fast: bool):
    """One reclamation-delay point: the latency run plus the held-memory
    run, both on a fresh system (module-level so cells can name it)."""
    from ..workloads.microbench import MicrobenchConfig, MunmapMicrobench

    bench = MunmapMicrobench(
        MicrobenchConfig(cores=8, pages=16, reps=120 if fast else 260)
    )
    result = bench.run("latr", reclaim_delay_ticks=ticks)
    overhead = bench.lazy_memory_overhead("latr", reclaim_delay_ticks=ticks)
    return result, overhead


def abl_reclaim_cells(fast: bool = False):
    """Reclamation delay vs transiently-held memory."""
    return [
        RunCell(
            exp_id="abl-reclaim",
            cell_id=f"ticks={ticks}",
            fn="repro.experiments.ablations:reclaim_cell",
            params=dict(ticks=ticks, fast=fast),
            fast=fast,
        )
        for ticks in _reclaim_delays(fast)
    ]


def abl_reclaim_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    for ticks, (result, overhead) in zip(_reclaim_delays(fast), values):
        rows.append(
            (
                ticks,
                result.metric("munmap_us"),
                overhead.metric("peak_lazy_mb"),
                overhead.counters.get("latr.fallback_ipi", 0),
            )
        )
    return ExperimentResult(
        exp_id="abl-reclaim",
        title="Ablation: reclamation delay (ticks) vs held memory",
        headers=("reclaim delay (ticks)", "munmap us", "peak lazy MB", "fallback IPIs"),
        rows=rows,
        paper_expectation=(
            "2 ticks is the minimum safe delay with unsynchronized ticks; "
            "longer delays hold more transient memory and, past the queue "
            "depth, start forcing fallback IPIs (states pinned until reclaim)"
        ),
    )


@experiment("abl-sweep")
def ablation_sweep_triggers(fast: bool = False) -> ExperimentResult:
    """Tick-only vs tick+context-switch sweeping: staleness bound."""
    rows = []
    for label, on_tick, on_ctx in (
        ("tick + context switch", True, True),
        ("tick only", True, False),
    ):
        system = build_system(
            "latr", cores=4, sweep_on_tick=on_tick, sweep_on_context_switch=on_ctx
        )
        kernel = system.kernel
        proc = kernel.create_process("p")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(4)]
        staleness = []

        def remote_ctx_switches(stop):
            # Remote cores context-switch ~every 200 us (a blocking workload
            # like canneal); with context-switch sweeps enabled this tightens
            # the staleness bound well below the tick interval.
            from repro.sim.engine import Timeout

            while not stop:
                yield Timeout(200_000)
                for core in kernel.machine.cores[1:]:
                    kernel.scheduler.synthetic_context_switch(core)

        stop_flag = []
        system.sim.spawn(remote_ctx_switches(stop_flag))

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _ in range(10 if fast else 40):
                vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
                spawned = [
                    system.sim.spawn(
                        kernel.syscalls.touch_pages(
                            t, kernel.machine.core(t.home_core_id), vrange, write=True
                        )
                    )
                    for t in tasks
                ]
                yield AllOf(spawned)
                posted_at = system.sim.now
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                # Wait for the posted state to complete and record staleness.
                states = list(kernel.coherence._pending_reclaim)
                if states:
                    state = states[-1]
                    yield state.done
                    staleness.append(state.completed_at - posted_at)
            stop_flag.append(True)

        driver = system.sim.spawn(body())
        system.sim.run(until=500 * MSEC)
        mean_stale = sum(staleness) / len(staleness) / 1000.0 if staleness else 0.0
        max_stale = max(staleness) / 1000.0 if staleness else 0.0
        rows.append((label, mean_stale, max_stale, kernel.stats.counter("latr.sweeps").value))
    return ExperimentResult(
        exp_id="abl-sweep",
        title="Ablation: sweep triggers vs invalidation latency",
        headers=("sweep trigger", "mean staleness us", "max staleness us", "sweeps"),
        rows=rows,
        paper_expectation="ticks alone already bound staleness at ~1 ms; context switches tighten it",
    )


def abl_pcid_cells(fast: bool = False):
    """PCID on/off (paper section 4.5): throughput and TLB behaviour."""
    duration = 30 if fast else 80
    return [
        RunCell(
            exp_id="abl-pcid",
            cell_id=f"pcid={'on' if pcid else 'off'}",
            fn=APACHE_FN,
            params=dict(
                mechanism="latr", cores=8, duration_ms=duration, warmup_ms=10, pcid=pcid
            ),
            fast=fast,
        )
        for pcid in (False, True)
    ]


def abl_pcid_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = [
        (("on" if pcid else "off"), result.metric("requests_per_sec"))
        for pcid, result in zip((False, True), values)
    ]
    return ExperimentResult(
        exp_id="abl-pcid",
        title="Ablation: PCID-tagged TLBs (paper section 4.5)",
        headers=("pcid", "apache req/s"),
        rows=rows,
        paper_expectation="LATR works in both modes; context-switch sweeps are mandatory with PCIDs",
        notes="single-process Apache keeps the PCID effect small by construction",
    )


FLUSHTHRESH_PAGES = 48


def _flush_thresholds(fast: bool):
    return (8, 32, 128) if fast else (8, 16, 32, 64, 128)


def flushthresh_cell(threshold: int, fast: bool):
    """One full-flush-threshold point on a dedicated 8-core Linux boot
    (module-level so cells can name it)."""
    from dataclasses import replace

    from ..hw.spec import COMMODITY_2S16C
    from ..hw.machine import Machine
    from ..kernel.kernel import Kernel
    from ..coherence import make_mechanism
    from ..sim.engine import Simulator

    spec = replace(
        COMMODITY_2S16C.with_cores(8), name=f"t{threshold}", full_flush_threshold=threshold
    )
    sim = Simulator()
    machine = Machine(sim, spec)
    kernel = Kernel(machine, make_mechanism("linux"))
    kernel.start()
    proc = kernel.create_process("p")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(8)]
    samples = []

    def body():
        t0, c0 = tasks[0], kernel.machine.core(0)
        for _ in range(10 if fast else 30):
            vrange = yield from kernel.syscalls.mmap(t0, c0, FLUSHTHRESH_PAGES * PAGE_SIZE)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.touch_pages(t, core, vrange, write=True)
            start = sim.now
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            samples.append(sim.now - start)

    sim.spawn(body())
    sim.run(until=2000 * MSEC)
    full_flushes = sum(c.tlb.full_flushes for c in machine.cores)
    return sum(samples) / len(samples) / 1000.0, full_flushes


def abl_flushthresh_cells(fast: bool = False):
    """Linux's 32-page full-flush heuristic (visible in Figure 8)."""
    return [
        RunCell(
            exp_id="abl-flushthresh",
            cell_id=f"threshold={threshold}",
            fn="repro.experiments.ablations:flushthresh_cell",
            params=dict(threshold=threshold, fast=fast),
            fast=fast,
        )
        for threshold in _flush_thresholds(fast)
    ]


def abl_flushthresh_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = [
        (threshold, munmap_us, full_flushes)
        for threshold, (munmap_us, full_flushes) in zip(_flush_thresholds(fast), values)
    ]
    return ExperimentResult(
        exp_id="abl-flushthresh",
        title=f"Ablation: full-flush threshold, {FLUSHTHRESH_PAGES}-page munmap, 8 cores (Linux)",
        headers=("threshold (pages)", "munmap us", "full flushes"),
        rows=rows,
        paper_expectation=(
            "thresholds below the unmap size switch the remote handlers to a "
            "single cheap full flush (the kink in Figure 8)"
        ),
    )


cell_experiment("abl-queue", abl_queue_cells, abl_queue_assemble)
cell_experiment("abl-reclaim", abl_reclaim_cells, abl_reclaim_assemble)
cell_experiment("abl-pcid", abl_pcid_cells, abl_pcid_assemble)
cell_experiment("abl-flushthresh", abl_flushthresh_cells, abl_flushthresh_assemble)
