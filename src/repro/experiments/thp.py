"""THP experiment: huge pages vs 4 KiB sweeps (paper sections 6.2.1, 7).

Figure 8's discussion ends with: "applications can use huge pages ... to
mitigate the effects of unmapping many pages at once", and section 7
sketches LATR's THP extension. This experiment quantifies both: unmapping
2 MiB as 512 base pages vs one PD-level entry, under Linux and LATR -- four
independent boots, one run cell each.
"""

from __future__ import annotations

from .. import build_system
from ..mm.addr import HUGE_PAGE_SIZE
from ..sim.engine import MSEC, AllOf
from .runner import ExperimentResult, RunCell, cell_experiment

SHAPES = (("512 x 4 KiB pages", False), ("1 x 2 MiB huge page", True))


def measure_unmap(mechanism: str, huge: bool, reps: int) -> float:
    """Mean munmap() latency (us) of a 2 MiB mapping shared by 16 cores
    (module-level so cells can name it)."""
    system = build_system(mechanism, cores=16)
    kernel = system.kernel
    proc = kernel.create_process("thp")
    tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(16)]
    samples = []

    def body():
        t0, c0 = tasks[0], kernel.machine.core(0)
        for _ in range(reps):
            vrange = yield from kernel.syscalls.mmap(t0, c0, HUGE_PAGE_SIZE, huge=huge)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            spawned = [
                system.sim.spawn(
                    kernel.syscalls.touch_pages(
                        t, kernel.machine.core(t.home_core_id), vrange
                    )
                )
                for t in tasks[1:]
            ]
            yield AllOf(spawned)
            start = system.sim.now
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            samples.append(system.sim.now - start)

    driver = system.sim.spawn(body())
    system.sim.run(until=4_000 * MSEC)
    if driver.alive:
        raise RuntimeError("thp experiment did not finish")
    return sum(samples) / len(samples) / 1000.0


def thp_cells(fast: bool = False):
    reps = 4 if fast else 12
    cells = []
    for label, huge in SHAPES:
        for mech in ("linux", "latr"):
            cells.append(
                RunCell(
                    exp_id="thp",
                    cell_id=f"{'huge' if huge else 'base'}/{mech}",
                    fn="repro.experiments.thp:measure_unmap",
                    params=dict(mechanism=mech, huge=huge, reps=reps),
                    fast=fast,
                )
            )
    return cells


def thp_assemble(values, fast: bool = False) -> ExperimentResult:
    rows = []
    pairs = [values[i : i + 2] for i in range(0, len(values), 2)]
    for (label, _huge), (linux_us, latr_us) in zip(SHAPES, pairs):
        rows.append(
            (
                label,
                linux_us,
                latr_us,
                100.0 * (1 - latr_us / linux_us),
            )
        )
    return ExperimentResult(
        exp_id="thp",
        title="Unmapping 2 MiB shared by 16 cores: base pages vs a huge page",
        headers=("mapping", "linux munmap us", "latr munmap us", "latr improvement %"),
        rows=rows,
        paper_expectation=(
            "huge pages collapse the per-page PTE/invalidation work into one "
            "entry (the Figure 8 mitigation); LATR still removes the IPI "
            "round from the critical path in both shapes"
        ),
        notes="section 7 extension: LATR states cover huge mappings transparently",
    )


cell_experiment("thp", thp_cells, thp_assemble)
