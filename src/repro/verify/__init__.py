"""Verification tooling: continuous invariant monitoring + the
differential, schedule-randomizing coherence fuzzer (``python -m repro
fuzz --seed N --ops M``)."""

from .fuzzer import (
    FUZZ_MECHANISMS,
    FuzzConfig,
    FuzzReport,
    RunResult,
    diff_snapshots,
    run_fuzz,
    run_one,
    shrink_plan,
)
from .monitor import (
    CONTINUOUS_CHECKS,
    QUIESCENT_CHECKS,
    InvariantMonitor,
    InvariantViolationError,
    Violation,
)
from .mutations import (
    MUTATION_SPECS,
    MUTATIONS,
    Mutation,
    mutated_latr_class,
    mutation_spec,
)
from .plan import FuzzPlan, Op, SchedulePlan, generate_plan
from .shrink import ddmin

__all__ = [
    "CONTINUOUS_CHECKS",
    "FUZZ_MECHANISMS",
    "FuzzConfig",
    "FuzzPlan",
    "FuzzReport",
    "InvariantMonitor",
    "InvariantViolationError",
    "MUTATIONS",
    "MUTATION_SPECS",
    "Mutation",
    "Op",
    "QUIESCENT_CHECKS",
    "RunResult",
    "SchedulePlan",
    "Violation",
    "ddmin",
    "diff_snapshots",
    "generate_plan",
    "mutated_latr_class",
    "mutation_spec",
    "run_fuzz",
    "run_one",
    "shrink_plan",
]
