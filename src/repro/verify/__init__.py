"""Verification tooling: continuous invariant monitoring + the
differential, schedule-randomizing coherence fuzzer (``python -m repro
fuzz --seed N --ops M``)."""

from .fuzzer import (
    FUZZ_MECHANISMS,
    FuzzConfig,
    FuzzReport,
    RunResult,
    diff_snapshots,
    run_fuzz,
    run_one,
    shrink_plan,
)
from .monitor import (
    CONTINUOUS_CHECKS,
    QUIESCENT_CHECKS,
    InvariantMonitor,
    InvariantViolationError,
    Violation,
)
from .mutations import MUTATIONS, mutated_latr_class
from .plan import FuzzPlan, Op, SchedulePlan, generate_plan

__all__ = [
    "CONTINUOUS_CHECKS",
    "FUZZ_MECHANISMS",
    "FuzzConfig",
    "FuzzPlan",
    "FuzzReport",
    "InvariantMonitor",
    "InvariantViolationError",
    "MUTATIONS",
    "Op",
    "QUIESCENT_CHECKS",
    "RunResult",
    "SchedulePlan",
    "Violation",
    "diff_snapshots",
    "generate_plan",
    "mutated_latr_class",
    "run_fuzz",
    "run_one",
    "shrink_plan",
]
