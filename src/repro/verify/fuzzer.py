"""The differential, schedule-randomizing coherence fuzzer.

One :class:`~repro.verify.plan.FuzzPlan` is replayed against several
coherence mechanisms on identically-built systems. Each run:

* perturbs the schedule (random per-core tick phases, synthetic context
  switches at pre-drawn times, randomized reclaim delay and LATR queue
  depth),
* keeps a :class:`~repro.verify.monitor.InvariantMonitor` attached so the
  safety invariants are checked at every sweep, reclaim, IPI round, PTE
  change, and frame free,
* drains all lazy work, runs the quiescent checks, and takes a canonical
  end-state snapshot.

The snapshots of the lazy mechanisms are then compared against the
synchronous Linux baseline. Absolute addresses and frame numbers are *not*
comparable across mechanisms (LATR delays virtual-range reuse, and frame
recycling order differs), so snapshots are region-relative: per-page
(state, NUMA node, writability, content tag) plus global allocator/swap
accounting.

On any failure -- invariant violation, harness exception, or differential
mismatch -- the failing plan is shrunk ddmin-style to a minimal reproducer
and the relevant tracer window is dumped.

Determinism contract (what makes the differential comparison sound): the
op driver is serial, and operations whose *functional* outcome could
depend on lazy-apply timing are preceded by a fixed-length settle barrier
(identical across mechanisms). Operations that race lazy work in
timing-only ways (munmap/madvise over still-cooling ranges, overlapping
swap-outs) deliberately do NOT settle -- those interleavings are the
interesting ones, and their end state is order-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..coherence import make_mechanism
from ..coherence.latr import LatrCoherence
from ..hw.machine import Machine
from ..hw.spec import preset
from ..kernel.autonuma import AutoNuma
from ..kernel.kernel import Kernel
from ..kernel.swapd import SwapDevice
from ..mm.addr import PAGE_SIZE, VirtRange
from ..sim.engine import Simulator, Timeout
from ..sim.trace import Tracer
from .monitor import InvariantMonitor, Violation
from .mutations import mutation_spec
from .plan import FuzzPlan, Op, generate_plan
from .shrink import ddmin

#: Mechanisms a fuzz run exercises against the synchronous baseline.
FUZZ_MECHANISMS = ("latr", "abis", "didi", "unitd")
DEFAULT_BASELINE = "linux"

#: Small enough to build fast, large enough that per-node frame pools
#: never run dry (which would make allocation placement schedule-timing
#: dependent and break the differential comparison).
FRAMES_PER_NODE = 4096

#: Settle barrier length in ticks. Every running core sweeps within one
#: tick interval, the reclaim delay is at most 3 ticks, and swap-finisher
#: device writes fit well inside one more.
SETTLE_TICKS = 4


# ---------------------------------------------------------------------------
# System construction
# ---------------------------------------------------------------------------


@dataclass
class FuzzSystem:
    """One booted machine+kernel ready to replay a plan."""

    sim: Simulator
    machine: Machine
    kernel: Kernel
    monitor: InvariantMonitor
    tracer: Optional[Tracer]
    procs: list
    #: tasks[proc_index][core_index]
    tasks: list


def build_fuzz_system(
    mechanism: str,
    plan: FuzzPlan,
    mutate: Optional[str] = None,
    with_tracer: bool = False,
    frames_per_node: int = FRAMES_PER_NODE,
    monitor_stride: int = 1,
    latr_kwargs: Optional[Dict[str, object]] = None,
    use_timer_wheel: Optional[bool] = None,
    use_tlb_index: Optional[bool] = None,
    use_pt_replication: Optional[bool] = None,
    use_packed_tlb: Optional[bool] = None,
    use_frame_slabs: Optional[bool] = None,
    use_virtualization: Optional[bool] = None,
) -> FuzzSystem:
    """Boot a system for one fuzz run, with every schedule knob applied
    *before* the kernel starts (tick offsets matter from the first tick)."""
    mutation = mutation_spec(mutate) if mutate is not None else None
    simulator_cls = Simulator
    if mutation is not None and mutation.simulator_cls is not None:
        simulator_cls = mutation.simulator_cls
    sim = simulator_cls(use_timer_wheel=use_timer_wheel)
    spec = preset("commodity-2s16c")
    if plan.n_cores >= 2 and plan.n_cores % 2 == 0:
        # Keep two NUMA nodes regardless of core count so migration and
        # remote-socket traffic stay exercised at small core counts.
        spec = replace(
            spec,
            name=f"fuzz-2s{plan.n_cores}c",
            sockets=2,
            cores_per_socket=plan.n_cores // 2,
        )
    else:
        spec = spec.with_cores(plan.n_cores)

    if mutation is not None:
        coherence_cls = mutation.coherence_cls or LatrCoherence
        coherence = coherence_cls(
            queue_depth=plan.schedule.queue_depth,
            reclaim_delay_ticks=plan.schedule.reclaim_delay_ticks,
            **(latr_kwargs or {}),
        )
    elif mechanism == "latr":
        coherence = LatrCoherence(
            queue_depth=plan.schedule.queue_depth,
            reclaim_delay_ticks=plan.schedule.reclaim_delay_ticks,
            **(latr_kwargs or {}),
        )
    else:
        coherence = make_mechanism(mechanism)

    machine = Machine(
        sim, spec, use_tlb_index=use_tlb_index, use_packed_tlb=use_packed_tlb
    )
    if mutation is not None and mutation.machine_patch is not None:
        mutation.machine_patch(machine)
    kernel = Kernel(
        machine,
        coherence,
        frames_per_node=frames_per_node,
        seed=plan.seed,
        use_pt_replication=use_pt_replication,
        use_frame_slabs=use_frame_slabs,
        use_virtualization=use_virtualization,
    )
    if mutation is not None and mutation.kernel_patch is not None:
        mutation.kernel_patch(kernel)
    kernel.scheduler.tick_offsets = dict(plan.schedule.tick_offsets)
    AutoNuma.install(kernel)  # fault side only; the fuzzer posts its own hints
    SwapDevice.install(kernel)
    tracer = None
    if with_tracer:
        tracer = Tracer(sim)
        kernel.tracer = tracer
    monitor = InvariantMonitor.install(kernel, stride=monitor_stride)
    kernel.start()

    procs = [kernel.create_process(f"fuzz{p}") for p in range(plan.n_procs)]
    tasks = [
        [
            kernel.spawn_thread(proc, f"fuzz{p}.t{c}", c)
            for c in range(plan.n_cores)
        ]
        for p, proc in enumerate(procs)
    ]
    return FuzzSystem(sim, machine, kernel, monitor, tracer, procs, tasks)


# ---------------------------------------------------------------------------
# The op driver
# ---------------------------------------------------------------------------


class _Region:
    """A live mapping plus its staleness bookkeeping."""

    __slots__ = ("vrange", "proc", "cooling")

    def __init__(self, vrange: VirtRange, proc: int):
        self.vrange = vrange
        self.proc = proc
        #: True while remote TLBs may still cache entries this region's
        #: last free/migration-class op invalidated lazily.
        self.cooling = False


class OpDriver:
    """Serially replays a plan's ops on a booted system.

    Runs as one simulation process; concurrency comes from the schedule
    (ticks, sweeps, reclaim, swap finishers, synthetic context switches),
    not from overlapping syscalls -- that is what keeps the end state
    mechanism-independent and the differential comparison meaningful.
    """

    def __init__(self, system: FuzzSystem, plan: FuzzPlan):
        self.system = system
        self.plan = plan
        self.kernel = system.kernel
        self.sched = system.kernel.scheduler
        self.sc = system.kernel.syscalls
        self.tick = system.machine.spec.tick_interval_ns
        self.settle_ns = SETTLE_TICKS * self.tick
        self.regions: List[_Region] = []
        #: Per-proc flag: a migration-class PTE change (swap-out) may still
        #: be lazily pending on this mm.
        self.mm_cooling = [False] * plan.n_procs
        self.errors: List[str] = []
        self.executed = 0
        self.settles = 0
        self.done = False

    # ---- main loop -----------------------------------------------------------

    def run(self) -> Generator:
        try:
            for op in self.plan.ops:
                yield from self._execute(op)
                self.executed += 1
        except Exception as exc:  # harness failure == fuzz finding
            self.errors.append(f"op {self.executed} ({self.plan.ops[self.executed]}): "
                               f"{type(exc).__name__}: {exc}")
        finally:
            self.done = True

    def _execute(self, op: Op) -> Generator:
        if op.kind == "mmap":
            yield from self._op_mmap(op)
        elif op.kind == "settle":
            yield from self._settle()
        else:
            region = self._pick_region(op)
            if region is None:
                return
            if op.kind == "munmap":
                yield from self._op_munmap(op, region)
            elif op.kind == "madvise":
                yield from self._op_madvise(op, region)
            elif op.kind == "touch":
                yield from self._op_touch(op, region)
            elif op.kind == "migrate":
                yield from self._op_migrate(op, region)
            elif op.kind == "swap":
                yield from self._op_swap(op, region)
            else:
                raise ValueError(f"unknown op kind {op.kind!r}")

    # ---- helpers -------------------------------------------------------------

    def _pick_region(self, op: Op) -> Optional[_Region]:
        if not self.regions:
            return None
        return self.regions[op.region % len(self.regions)]

    def _task(self, op: Op, region: Optional[_Region] = None):
        """The (core, task) pair an op runs on. Region ops must run as a
        task of the owning process (regions live in that mm)."""
        proc_idx = region.proc if region is not None else op.proc % self.plan.n_procs
        core = self.system.machine.core(op.core % self.plan.n_cores)
        return core, self.system.tasks[proc_idx][core.id]

    def _settle(self) -> Generator:
        """Fixed-length barrier: long enough that every lazily-posted PTE
        change has been applied and every stale TLB entry invalidated,
        identical across mechanisms so it never perturbs the differential."""
        self.settles += 1
        yield Timeout(self.settle_ns)
        for region in self.regions:
            region.cooling = False
        self.mm_cooling = [False] * self.plan.n_procs

    def _window(self, op: Op, region: _Region, max_pages: int = 16) -> VirtRange:
        n_pages = region.vrange.n_pages
        off = op.offset % n_pages
        width = max(1, min(op.pages, max_pages, n_pages - off))
        return VirtRange.from_pages(region.vrange.vpn_start + off, width)

    # ---- op implementations ----------------------------------------------------

    def _op_mmap(self, op: Op) -> Generator:
        core, task = self._task(op)
        vrange = yield from self.sched.run_on(
            core, task, self.sc.mmap(task, core, op.pages * PAGE_SIZE)
        )
        region = _Region(vrange, op.proc % self.plan.n_procs)
        self.regions.append(region)
        if op.write:
            yield from self.sched.run_on(
                core, task, self.sc.touch_pages(task, core, vrange, write=True)
            )

    def _op_munmap(self, op: Op, region: _Region) -> Generator:
        # Deliberately no settle: unmapping a still-cooling range races the
        # lazy machinery in exactly the ways the invariants must survive.
        core, task = self._task(op, region)
        self.regions.remove(region)
        yield from self.sched.run_on(
            core, task, self.sc.munmap(task, core, region.vrange)
        )

    def _op_madvise(self, op: Op, region: _Region) -> Generator:
        core, task = self._task(op, region)
        yield from self.sched.run_on(
            core, task, self.sc.madvise_dontneed(task, core, region.vrange)
        )
        region.cooling = True

    def _op_touch(self, op: Op, region: _Region) -> Generator:
        # A touch observes page *contents* (tags), so its outcome must not
        # depend on lazy-apply timing: settle first if this region cools.
        if region.cooling:
            yield from self._settle()
        core, task = self._task(op, region)
        window = self._window(op, region)
        if op.write and op.tag:
            for i, vpn in enumerate(window.vpns()):
                yield from self.sched.run_on(
                    core,
                    task,
                    self.sc.write_with_content(
                        task, core, vpn * PAGE_SIZE, f"{op.tag}.{i}"
                    ),
                )
        else:
            yield from self.sched.run_on(
                core, task, self.sc.touch_pages(task, core, window, write=op.write)
            )

    def _op_migrate(self, op: Op, region: _Region) -> Generator:
        """AutoNUMA two-touch migration, driven deterministically: post
        PROT_NONE hints over a window (the lazy migration-class unmap),
        settle, touch from the chosen core; then repeat, so the second
        hint fault sees a matching last-node and migrates remote pages."""
        if self.mm_cooling[region.proc] or region.cooling:
            # A lazily-pending PTE change (swap apply) could interleave
            # with the hint apply in a core-id-ordered sweep, which is NOT
            # the op order the synchronous baseline uses -- settle first.
            yield from self._settle()
        for _ in range(2):
            yield from self._post_hints(op, region)
            yield from self._settle()
            core, task = self._task(op, region)
            window = self._window(op, region, max_pages=8)
            yield from self.sched.run_on(
                core, task, self.sc.touch_pages(task, core, window)
            )

    def _post_hints(self, op: Op, region: _Region) -> Generator:
        """The scanner side of AutoNUMA (task_numa_work) for one window."""
        kernel = self.kernel
        core, task = self._task(op, region)
        mm = task.mm
        window = self._window(op, region, max_pages=8)

        def body() -> Generator:
            yield mm.mmap_sem.acquire()
            try:
                vpns = [
                    vpn
                    for vpn in window.vpns()
                    if kernel.autonuma._samplable(mm, vpn)
                ]
                if not vpns:
                    return
                kernel.stats.counter("numa.pages_sampled").add(len(vpns))

                def apply_change(mm=mm, vpns=tuple(vpns)) -> None:
                    for vpn in vpns:
                        pte = mm.page_table.walk(vpn)
                        if pte is not None and pte.present:
                            mm.page_table.update_pte(vpn, pte.make_numa_hint())

                yield from kernel.coherence.migration_unmap(
                    core, mm, window, apply_change
                )
            finally:
                mm.mmap_sem.release()

        yield from self.sched.run_on(core, task, body())

    def _op_swap(self, op: Op, region: _Region) -> Generator:
        # No settle: overlapping swap-outs and swap-over-madvise converge
        # to the same end state regardless of lazy-apply order (the apply
        # callbacks re-check PTEs), so let them race.
        core, task = self._task(op, region)
        window = self._window(op, region)
        yield from self.sched.run_on(
            core, task, self.kernel.swap.swap_out_pages(task, core, window)
        )
        region.cooling = True
        self.mm_cooling[region.proc] = True


def _perturber(system: FuzzSystem, core, gaps: Tuple[int, ...], flags: dict) -> Generator:
    """Synthetic context switches at pre-drawn times: the switch instants
    depend only on the plan, never on workload progress, so they perturb
    the schedule without perturbing the differential."""
    i = 0
    while not flags["stop"]:
        yield Timeout(gaps[i % len(gaps)])
        i += 1
        if flags["stop"]:
            return
        system.kernel.scheduler.synthetic_context_switch(core)


# ---------------------------------------------------------------------------
# Snapshots + differential comparison
# ---------------------------------------------------------------------------


def snapshot_state(system: FuzzSystem, driver: OpDriver) -> Dict[str, object]:
    """Canonical, mechanism-independent end state.

    Region-relative on purpose: absolute vpns differ across mechanisms
    (LATR delays vrange reuse) and pfns differ (recycling order), but the
    per-page state, its NUMA node, and its content tag must agree."""
    kernel = system.kernel
    region_rows = []
    for region in driver.regions:
        mm = system.procs[region.proc].mm
        pages = []
        for vpn in region.vrange.vpns():
            pte = mm.page_table.walk(vpn)
            if pte is None:
                pages.append("absent")
            elif pte.swapped:
                pages.append("swapped")
            else:
                node = kernel.frames.node_of(pte.pfn)
                tag = kernel.page_contents.get(pte.pfn, "")
                kind = "hint" if pte.numa_hint else "page"
                rw = "w" if pte.writable else "r"
                pages.append(f"{kind}@{node}:{rw}:{tag}")
        region_rows.append((region.proc, tuple(pages)))
    mms = [proc.mm for proc in system.procs]
    nodes = system.machine.spec.sockets
    return {
        "regions": tuple(region_rows),
        "frames_allocated": kernel.frames.allocated_count(),
        "frames_per_node": tuple(
            kernel.frames.frames_per_node - kernel.frames.free_count(n)
            for n in range(nodes)
        ),
        "swap_slots": kernel.swap.slots_in_use,
        "lazy_frames": sum(len(mm.lazy_frames) for mm in mms),
        "lazy_vranges": sum(len(mm.lazy_vranges) for mm in mms),
        "vmas": tuple(len(mm.vmas) for mm in mms),
    }


def diff_snapshots(base: Dict[str, object], other: Dict[str, object]) -> List[str]:
    """Human-readable differences (empty == states agree)."""
    diffs: List[str] = []
    for key in base:
        if base[key] == other.get(key):
            continue
        if key != "regions":
            diffs.append(f"{key}: baseline={base[key]} other={other.get(key)}")
            continue
        b_regions, o_regions = base[key], other.get(key, ())
        if len(b_regions) != len(o_regions):
            diffs.append(
                f"region count: baseline={len(b_regions)} other={len(o_regions)}"
            )
            continue
        for idx, (b_row, o_row) in enumerate(zip(b_regions, o_regions)):
            if b_row == o_row:
                continue
            for page, (b_pg, o_pg) in enumerate(zip(b_row[1], o_row[1])):
                if b_pg != o_pg:
                    diffs.append(
                        f"region {idx} page {page}: baseline={b_pg} other={o_pg}"
                    )
                    if len(diffs) >= 20:
                        diffs.append("... (diff truncated)")
                        return diffs
    return diffs


# ---------------------------------------------------------------------------
# Single runs
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """Outcome of one plan replay on one mechanism."""

    mechanism: str
    mutate: Optional[str]
    snapshot: Optional[Dict[str, object]]
    violations: List[Violation]
    errors: List[str]
    ops_executed: int
    checks_run: int
    sim_time_ns: int
    tracer: Optional[Tracer] = field(default=None, repr=False)
    #: StatsRegistry.summary() at end of run -- the sweep-index equivalence
    #: tests assert this is bit-for-bit identical across implementations.
    stats_summary: Dict[str, object] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors


def run_one(
    mechanism: str,
    plan: FuzzPlan,
    mutate: Optional[str] = None,
    with_tracer: bool = False,
    frames_per_node: int = FRAMES_PER_NODE,
    monitor_stride: int = 1,
    latr_kwargs: Optional[Dict[str, object]] = None,
    use_timer_wheel: Optional[bool] = None,
    use_tlb_index: Optional[bool] = None,
    use_pt_replication: Optional[bool] = None,
    use_packed_tlb: Optional[bool] = None,
    use_frame_slabs: Optional[bool] = None,
    use_virtualization: Optional[bool] = None,
    pool=None,
) -> RunResult:
    """Replay ``plan`` once on ``mechanism``; never raises -- harness
    exceptions come back as errors (they are findings, not crashes).

    ``pool`` (a :class:`repro.snapshot.BootPool`) enables warm-boot reuse:
    identical boot parameters restore the post-boot snapshot instead of
    rebuilding. Mutated and traced runs always boot cold (a mutation may
    carry state the snapshot layer does not model; tracers are refused by
    the snapshot layer)."""

    def build() -> FuzzSystem:
        return build_fuzz_system(
            mechanism,
            plan,
            mutate=mutate,
            with_tracer=with_tracer,
            frames_per_node=frames_per_node,
            monitor_stride=monitor_stride,
            latr_kwargs=latr_kwargs,
            use_timer_wheel=use_timer_wheel,
            use_tlb_index=use_tlb_index,
            use_pt_replication=use_pt_replication,
            use_packed_tlb=use_packed_tlb,
            use_frame_slabs=use_frame_slabs,
            use_virtualization=use_virtualization,
        )

    if pool is not None and mutate is None and not with_tracer:
        # The boot key: everything applied before (or at) kernel start.
        # Plan *ops* are deliberately absent -- replays of different op
        # subsequences (the shrink loop) share one boot.
        key = (
            mechanism, plan.seed, plan.n_cores, plan.n_procs,
            plan.schedule.queue_depth, plan.schedule.reclaim_delay_ticks,
            tuple(sorted(plan.schedule.tick_offsets.items())),
            frames_per_node, monitor_stride,
            tuple(sorted((latr_kwargs or {}).items())),
            use_timer_wheel, use_tlb_index, use_pt_replication,
            use_packed_tlb, use_frame_slabs, use_virtualization,
        )
        system = pool.acquire(key, build)
    else:
        system = build()
    sim, kernel = system.sim, system.kernel
    tick = system.machine.spec.tick_interval_ns
    driver = OpDriver(system, plan)
    flags = {"stop": False}
    spawned = []
    for core in system.machine.cores:
        gaps = plan.schedule.ctx_switch_gaps.get(core.id)
        if gaps:
            spawned.append(
                sim.spawn(_perturber(system, core, gaps, flags), name=f"perturb{core.id}")
            )
    spawned.append(sim.spawn(driver.run(), name="fuzz-driver"))

    errors: List[str] = []
    snapshot = None
    try:
        guard = 0
        while not driver.done:
            sim.run(until=sim.now + 20 * tick)
            guard += 1
            if guard > 2000:
                errors.append("driver stalled: plan did not finish in 40k ticks")
                break
        # Drain: all lazy work must complete, then swap finishers land.
        for _ in range(60):
            if kernel.coherence.pending_lazy_operations() == 0:
                break
            sim.run(until=sim.now + tick)
        sim.run(until=sim.now + 3 * tick)
        if kernel.coherence.pending_lazy_operations() != 0:
            errors.append(
                f"drain failed: {kernel.coherence.pending_lazy_operations()} "
                "lazy operations still pending after 60 ticks"
            )
        flags["stop"] = True
        system.monitor.check_quiescent()
        if driver.done and not errors:
            snapshot = snapshot_state(system, driver)
    except Exception as exc:  # daemon/engine crash is a finding too
        errors.append(f"engine: {type(exc).__name__}: {exc}")
    errors.extend(driver.errors)
    # Tear down the run's processes while their world is still consistent
    # (lock-release finallys must not fire later against a restored one);
    # this is what leaves a pooled system reusable.
    for proc in spawned:
        if proc.alive:
            proc.interrupt()
    return RunResult(
        mechanism=mechanism,
        mutate=mutate,
        snapshot=snapshot,
        violations=list(system.monitor.violations),
        errors=errors,
        ops_executed=driver.executed,
        checks_run=system.monitor.checks_run,
        sim_time_ns=sim.now,
        tracer=system.tracer,
        stats_summary=kernel.stats.summary(),
    )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def shrink_plan(
    plan: FuzzPlan,
    still_fails: Callable[[FuzzPlan], bool],
    budget: int = 80,
) -> Tuple[FuzzPlan, int]:
    """ddmin over the op sequence: remove chunks while the failure
    reproduces. Plans are symbolic (region slots resolve modulo the live
    count), so every subsequence is executable. Returns (minimal plan,
    runs spent)."""
    ops, runs = ddmin(
        plan.ops, lambda candidate: still_fails(plan.with_ops(candidate)), budget
    )
    return plan.with_ops(ops), runs


# ---------------------------------------------------------------------------
# The full differential campaign
# ---------------------------------------------------------------------------


@dataclass
class FuzzConfig:
    """One fuzz campaign: a plan replayed across mechanisms."""

    seed: int = 1
    n_ops: int = 200
    n_cores: int = 4
    n_procs: int = 2
    mechanisms: Tuple[str, ...] = FUZZ_MECHANISMS
    baseline: str = DEFAULT_BASELINE
    #: Inject a known-bad LATR variant (see repro.verify.mutations); the
    #: mutation applies to the 'latr' entry of ``mechanisms``.
    mutate: Optional[str] = None
    shrink: bool = True
    shrink_budget: int = 60
    frames_per_node: int = FRAMES_PER_NODE
    monitor_stride: int = 1
    #: Tracer window (in ticks) dumped around the first violation.
    trace_window_ticks: int = 3
    #: Warm-boot reuse: boot each distinct configuration once, restore its
    #: post-boot snapshot for every further replay (big win in the shrink
    #: loop). False is the bit-identical cold-boot escape hatch, gated by
    #: the replay-vs-restore differential test.
    use_snapshots: bool = True


@dataclass
class FuzzReport:
    """Everything one campaign learned."""

    config: FuzzConfig
    plan: FuzzPlan
    results: Dict[str, RunResult]
    mismatches: Dict[str, List[str]]
    failures: List[str]
    runs: int
    shrunk_plan: Optional[FuzzPlan] = None
    shrink_runs: int = 0
    trace_dump: str = ""
    #: Warm-boot accounting (0/0 when snapshots are off).
    warm_boots: int = 0
    warm_restores: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"coherence fuzz: seed={self.plan.seed} ops={len(self.plan.ops)} "
            f"cores={self.plan.n_cores} procs={self.plan.n_procs} "
            f"queue_depth={self.plan.schedule.queue_depth} "
            f"reclaim_delay={self.plan.schedule.reclaim_delay_ticks} ticks"
        ]
        if self.config.mutate:
            lines.append(f"mutation injected: {self.config.mutate}")
        for name, res in self.results.items():
            status = "ok"
            if res.violations:
                status = f"{len(res.violations)} INVARIANT VIOLATION(S)"
            elif res.errors:
                status = f"ERROR: {res.errors[0]}"
            elif name in self.mismatches:
                status = f"DIFFERENTIAL MISMATCH ({len(self.mismatches[name])} diffs)"
            lines.append(
                f"  {name:<10} {status}  "
                f"[{res.ops_executed} ops, {res.checks_run} checks, "
                f"{res.sim_time_ns / 1e6:.1f} ms sim]"
            )
        for name, diffs in self.mismatches.items():
            lines.append(f"  {name} vs {self.config.baseline}:")
            lines.extend(f"    {d}" for d in diffs[:8])
        for name in self.failures:
            res = self.results.get(name)
            if res and res.violations:
                lines.append(f"  first violation ({name}): {res.violations[0]}")
        if self.shrunk_plan is not None:
            lines.append(
                f"  minimal reproducer ({len(self.shrunk_plan.ops)} ops, "
                f"{self.shrink_runs} shrink runs): {self.shrunk_plan.describe()}"
            )
        if self.trace_dump:
            lines.append("  trace window around failure:")
            lines.extend(f"    {line}" for line in self.trace_dump.splitlines())
        if self.warm_boots or self.warm_restores:
            lines.append(
                f"warm boots: {self.warm_boots} cold, {self.warm_restores} restored"
            )
        lines.append(
            f"verdict: {'PASS' if self.ok else 'FAIL'} ({self.runs} runs total)"
        )
        return "\n".join(lines)


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """One full differential campaign: baseline + every mechanism, then
    shrink + trace-dump the first failure."""
    plan = generate_plan(
        config.seed, config.n_ops, n_cores=config.n_cores, n_procs=config.n_procs
    )
    runs = 0
    pool = None
    if config.use_snapshots:
        from ..snapshot import BootPool, snapshots_enabled

        if snapshots_enabled():
            pool = BootPool()

    def replay(mech: str, p: FuzzPlan, mutate=None, with_tracer=False) -> RunResult:
        nonlocal runs
        runs += 1
        return run_one(
            mech,
            p,
            mutate=mutate,
            with_tracer=with_tracer,
            frames_per_node=config.frames_per_node,
            monitor_stride=config.monitor_stride,
            pool=pool,
        )

    results: Dict[str, RunResult] = {}
    base = replay(config.baseline, plan)
    results[config.baseline] = base

    failures: List[str] = []
    mismatches: Dict[str, List[str]] = {}
    if not base.clean:
        failures.append(config.baseline)

    for mech in config.mechanisms:
        mutate = config.mutate if mech == "latr" else None
        res = replay(mech, plan, mutate=mutate)
        results[mech] = res
        diffs: List[str] = []
        if base.snapshot is not None and res.snapshot is not None:
            diffs = diff_snapshots(base.snapshot, res.snapshot)
        elif res.snapshot is None and not res.errors:
            diffs = ["no snapshot taken"]
        if diffs:
            mismatches[mech] = diffs
        if not res.clean or diffs:
            failures.append(mech)

    report = FuzzReport(
        config=config,
        plan=plan,
        results=results,
        mismatches=mismatches,
        failures=failures,
        runs=runs,
    )

    def finish() -> FuzzReport:
        if pool is not None:
            report.warm_boots = pool.boots
            report.warm_restores = pool.restores
        return report

    target = next((m for m in failures if m != config.baseline), None)
    if target is None or not config.shrink:
        return finish()

    mutate = config.mutate if target == "latr" else None
    differential_only = results[target].clean and target in mismatches

    def still_fails(p: FuzzPlan) -> bool:
        nonlocal runs
        res = replay(target, p, mutate=mutate)
        if res.violations or res.errors:
            return True
        if not differential_only:
            return False
        b = replay(config.baseline, p)
        if b.snapshot is None or res.snapshot is None:
            return False
        return bool(diff_snapshots(b.snapshot, res.snapshot))

    report.shrunk_plan, report.shrink_runs = shrink_plan(
        plan, still_fails, budget=config.shrink_budget
    )

    # Replay the minimal reproducer with a tracer and dump the window
    # around the first violation (or the tail, for differential failures).
    traced = replay(target, report.shrunk_plan, mutate=mutate, with_tracer=True)
    if traced.tracer is not None:
        tick = 1_000_000
        if traced.violations:
            since = max(0, traced.violations[0].time_ns - config.trace_window_ticks * tick)
        else:
            since = max(0, traced.sim_time_ns - config.trace_window_ticks * tick)
        report.trace_dump = traced.tracer.dump(limit=60, since_ns=since)
    report.runs = runs
    return finish()
