"""Mutation injection: deliberately-broken LATR variants.

The fuzzer's own correctness claim ("zero violations means the mechanism is
safe under this schedule") is only credible if a *broken* mechanism fails
the same harness. These subclasses re-introduce the two bug classes the
paper's design rules exist to prevent:

* ``reclaim_delay_zero`` -- the reclamation daemon trusts the age-based
  delay alone (the paper's two-tick rule) instead of also requiring an
  empty CPU bitmask, and the delay is forced to zero: frames return to the
  allocator while remote TLBs still cache them.
* ``skip_sweep_invalidate`` -- the sweep clears its bitmask bit (so
  reclamation proceeds on schedule) but "forgets" the TLB invalidation,
  modelling a lost INVLPG: every reclaim then races a live stale entry.

Both must be caught by the :class:`~repro.verify.monitor.InvariantMonitor`
-- the mutation tests in ``tests/test_fuzzer.py`` gate on exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..coherence.latr import LatrCoherence
from ..coherence.states import LatrFlag, LatrState

MUTATIONS = ("reclaim_delay_zero", "skip_sweep_invalidate")


class EagerReclaimLatr(LatrCoherence):
    """Mutation: age-only reclamation with zero delay (no bitmask guard)."""

    mutation = "reclaim_delay_zero"

    def __init__(self, **kwargs):
        kwargs["reclaim_delay_ticks"] = 0
        super().__init__(**kwargs)

    def _reclaim_period_ns(self) -> int:
        # Poll far more often than the healthy daemon so the zero-delay free
        # lands inside the stale window instead of after the next sweep.
        return max(1, self.kernel.machine.spec.tick_interval_ns // 10)

    def _reclaim_round(self) -> None:
        tick = self.kernel.machine.spec.tick_interval_ns
        delay = self.reclaim_delay_ticks * tick
        now = self.kernel.sim.now
        still_pending: List[LatrState] = []
        owner_costs: Dict[int, int] = {}
        for state in self._pending_reclaim:
            if now - state.posted_at < delay:  # BUG: no state.active guard
                still_pending.append(state)
                continue
            state.cpu_bitmask.clear()
            if state.active:
                state.active = False
                state.completed_at = now
                state.done.succeed(state)
            self._reclaim_state(state, owner_costs)
        self._pending_reclaim = still_pending
        self._migration_states = [s for s in self._migration_states if s.active]
        for core_id, cost in owner_costs.items():
            self.kernel.machine.core(core_id).steal_time(cost)


class SkipSweepInvalidateLatr(LatrCoherence):
    """Mutation: sweeps acknowledge states without invalidating the TLB."""

    mutation = "skip_sweep_invalidate"

    def sweep(self, core) -> int:
        lat = self._lat
        now = self.kernel.sim.now
        cost = lat.latr_sweep_base_ns
        for queue in self.queues.values():
            for state in queue.active_states():
                cost += lat.latr_sweep_per_entry_ns
                if core.id not in state.cpu_bitmask:
                    continue
                if state.flag is LatrFlag.MIGRATION and not state.pte_applied:
                    state.pte_applied = True
                    state.apply_pte_change()
                # BUG: the bitmask bit clears (so reclamation proceeds) but
                # core.tlb is never invalidated.
                state.clear_cpu(core.id, now)
        self._stats.counter("latr.sweeps").add()
        if self.kernel.invariant_monitor is not None:
            self.kernel.invariant_monitor.notify("latr.sweep", core=core.id)
        return cost


_MUTATED_CLASSES: Dict[str, Type[LatrCoherence]] = {
    EagerReclaimLatr.mutation: EagerReclaimLatr,
    SkipSweepInvalidateLatr.mutation: SkipSweepInvalidateLatr,
}


def mutated_latr_class(mutation: str) -> Type[LatrCoherence]:
    """The broken-LATR class for ``mutation`` (see :data:`MUTATIONS`)."""
    try:
        return _MUTATED_CLASSES[mutation]
    except KeyError:
        raise KeyError(
            f"unknown mutation {mutation!r}; have {sorted(_MUTATED_CLASSES)}"
        ) from None
