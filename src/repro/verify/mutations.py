"""Mutation injection: deliberately-broken system variants.

The verification suite's own correctness claim ("zero findings means the
mechanism is safe under these schedules") is only credible if a *broken*
system fails the same harnesses. Each :class:`Mutation` spec re-introduces
one bug class the design rules exist to prevent, at whichever layer the
bug lives (coherence algorithm, simulator engine, or TLB hardware model):

* ``reclaim_delay_zero`` -- the reclamation daemon trusts the age-based
  delay alone (the paper's two-tick rule) instead of also requiring an
  empty CPU bitmask, and the delay is forced to zero: frames return to the
  allocator while remote TLBs still cache them.
* ``skip_sweep_invalidate`` -- the sweep clears its bitmask bit (so
  reclamation proceeds on schedule) but "forgets" the TLB invalidation,
  modelling a lost INVLPG: every reclaim then races a live stale entry.
* ``wheel_bucket_skip`` -- the timer-wheel engine silently drops every
  Nth activated bucket, modelling a lost timer interrupt batch: sweeps,
  reclaim rounds, or op resumptions vanish and the system stops making
  progress (and diverges from the ``use_timer_wheel=False`` heap replay).
* ``tlb_index_desync`` -- the per-pcid TLB victim index misses every
  second fill, so indexed range invalidations skip a resident entry:
  a stale translation survives the shootdown and races the frame free.
* ``active_cache_stale`` -- the sweep's active-state snapshot cache is
  not invalidated on post, so sweeps miss freshly-posted states while the
  cursor watermark advances past them: their bitmask bits never clear and
  lazy work never drains (a liveness bug the equivalence/differential
  oracles must flag, not the instant-level invariants).
* ``broken_replica`` -- under the numaPTE replicated-page-table facade,
  the write-coordinating fan-out silently drops PTE clears for node 1:
  that node's replica keeps mappings the canonical table tore down, so
  hardware walks from node-1 cores translate through stale entries (the
  exact bug class the replica-coherence policy layer exists to prevent).
* ``broken_ept_shootdown`` -- under two-level translation
  (``use_virtualization``), the host-level (EPT) invalidation is skipped
  on guest-visible frees: gPA->hPA entries outlive their frames, so a
  guest 2D walk composes through a host entry into a frame already freed
  (and possibly handed to another VM) -- the virtualized twin of the
  stale-TLB bug class LATR's design rules exist to prevent.

The first two, ``tlb_index_desync``, ``broken_replica``, and
``broken_ept_shootdown`` must be caught by the
:class:`~repro.verify.monitor.InvariantMonitor`; the engine and cache
mutations are liveness/equivalence bugs caught by the drain guards and
the differential oracles. The mutation tests and the model checker's
mutation-audit experiment gate on exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Type

from ..coherence.latr import LatrCoherence
from ..coherence.numapte import NumaPteCoherence
from ..coherence.states import LatrFlag, LatrState
from ..hw.machine import Machine
from ..sim.engine import Simulator

MUTATIONS = (
    "reclaim_delay_zero",
    "skip_sweep_invalidate",
    "wheel_bucket_skip",
    "tlb_index_desync",
    "active_cache_stale",
    "broken_replica",
    "broken_ept_shootdown",
)


@dataclass(frozen=True)
class Mutation:
    """One injectable bug: which layer it patches and how it must be caught.

    A spec may swap the coherence class, swap the simulator class, and/or
    patch the built machine in place -- whichever layer hosts the bug.
    ``detected_by`` documents the oracle expected to flag it:

    * ``"monitor"`` -- instant-level invariant violations,
    * ``"progress"`` -- stall/drain guards (lazy work never completes),
    * ``"equivalence"`` -- differential replay against the reference
      configuration (escape hatch off / other mechanism) diverges.
    """

    name: str
    description: str
    coherence_cls: Optional[Type] = None
    simulator_cls: Optional[Type[Simulator]] = None
    machine_patch: Optional[Callable[[Machine], None]] = None
    #: Applied to the freshly-built Kernel (before any process exists);
    #: hosts bugs that live below the coherence layer (e.g. the mm facade).
    kernel_patch: Optional[Callable] = None
    detected_by: str = "monitor"


# ---------------------------------------------------------------------------
# Coherence-layer mutations (PR 1)
# ---------------------------------------------------------------------------


class EagerReclaimLatr(LatrCoherence):
    """Mutation: age-only reclamation with zero delay (no bitmask guard)."""

    mutation = "reclaim_delay_zero"

    def __init__(self, **kwargs):
        kwargs["reclaim_delay_ticks"] = 0
        super().__init__(**kwargs)

    def _reclaim_period_ns(self) -> int:
        # Poll far more often than the healthy daemon so the zero-delay free
        # lands inside the stale window instead of after the next sweep.
        return max(1, self.kernel.machine.spec.tick_interval_ns // 10)

    def _reclaim_round(self) -> None:
        tick = self.kernel.machine.spec.tick_interval_ns
        delay = self.reclaim_delay_ticks * tick
        now = self.kernel.sim.now
        still_pending: List[LatrState] = []
        owner_costs: Dict[int, int] = {}
        for state in self._pending_reclaim:
            if now - state.posted_at < delay:  # BUG: no state.active guard
                still_pending.append(state)
                continue
            state.cpu_bitmask.clear()
            if state.active:
                state.active = False
                state.completed_at = now
                state.done.succeed(state)
            self._reclaim_state(state, owner_costs)
        self._pending_reclaim = still_pending
        self._migration_states = [s for s in self._migration_states if s.active]
        for core_id, cost in owner_costs.items():
            self.kernel.machine.core(core_id).steal_time(cost)


class SkipSweepInvalidateLatr(LatrCoherence):
    """Mutation: sweeps acknowledge states without invalidating the TLB."""

    mutation = "skip_sweep_invalidate"

    def sweep(self, core) -> int:
        lat = self._lat
        now = self.kernel.sim.now
        cost = lat.latr_sweep_base_ns
        for queue in self.queues.values():
            for state in queue.active_states():
                cost += lat.latr_sweep_per_entry_ns
                if core.id not in state.cpu_bitmask:
                    continue
                if state.flag is LatrFlag.MIGRATION and not state.pte_applied:
                    state.pte_applied = True
                    state.apply_pte_change()
                # BUG: the bitmask bit clears (so reclamation proceeds) but
                # core.tlb is never invalidated.
                state.clear_cpu(core.id, now)
        self._stats.counter("latr.sweeps").add()
        if self.kernel.invariant_monitor is not None:
            self.kernel.invariant_monitor.notify("latr.sweep", core=core.id)
        return cost


# ---------------------------------------------------------------------------
# PR 4 fast-path mutations (engine / TLB index / sweep cache)
# ---------------------------------------------------------------------------


class BucketSkipSimulator(Simulator):
    """Mutation: the timer wheel drops every Nth activated bucket.

    Models a lost batch of timer interrupts. Inert in heap mode
    (``use_timer_wheel=False`` never advances the wheel), which is exactly
    what makes the wheel-vs-heap differential replay catch it.
    """

    mutation = "wheel_bucket_skip"
    skip_period = 2

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._bucket_activations = 0

    def _advance_wheel(self) -> None:
        super()._advance_wheel()
        self._bucket_activations += 1
        if self._bucket_activations % self.skip_period:
            return
        # BUG: the freshly-activated slot's events are discarded unseen.
        dropped, self._current = self._current, []
        self._wheel_count -= len(dropped)
        for handle in dropped:
            if not handle.cancelled:
                self._pending_live -= 1
            handle._scheduled = False


def desync_tlb_index(machine: Machine) -> None:
    """Mutation: every second TLB fill never lands in the per-pcid victim
    index, so indexed range invalidations miss a resident entry."""
    for core in machine.cores:
        tlb = core.tlb
        if not tlb.use_index:
            continue
        fills = [0]
        original_fill_new = tlb.fill_new

        def fill_new(pcid, vpn, pfn, writable=True, generation=0, mm_id=0,
                     _tlb=tlb, _orig=original_fill_new, _fills=fills):
            _orig(pcid, vpn, pfn, writable, generation, mm_id)
            _fills[0] += 1
            if _fills[0] % 2 == 0:
                # BUG: drop the index entry the fill just added; the
                # translation stays resident but invisible to shootdowns.
                _tlb._index_drop(_tlb._index, _tlb._key(pcid, vpn))

        tlb.fill_new = fill_new
        if not tlb.packed:
            # Legacy representation: ``fill`` installs entries without
            # delegating to ``fill_new``, so it needs its own patch (packed
            # ``fill`` routes through the instance's patched ``fill_new``).
            original_fill = tlb.fill

            def fill(pcid, vpn, entry, _tlb=tlb, _orig=original_fill, _fills=fills):
                _orig(pcid, vpn, entry)
                _fills[0] += 1
                if _fills[0] % 2 == 0:
                    _tlb._index_drop(_tlb._index, _tlb._key(pcid, vpn))

            tlb.fill = fill


class StaleActiveCacheLatr(LatrCoherence):
    """Mutation: posting a state leaves the sweep's snapshot cache stale.

    The indexed sweep then misses freshly-posted states while still
    advancing its cursor watermark past their seqs, so the missed states'
    bitmask bits are never cleared and reclamation never happens: lazy
    work accumulates forever (drain failure / equivalence divergence).
    """

    mutation = "active_cache_stale"

    def note_posted(self, queue, state) -> None:
        cached = self._active_states_sorted
        super().note_posted(queue, state)
        # BUG: resurrect the pre-post snapshot instead of invalidating it.
        self._active_states_sorted = cached


# ---------------------------------------------------------------------------
# numaPTE replica-coherence mutation (PR 8)
# ---------------------------------------------------------------------------


class BrokenReplicaNumaPte(NumaPteCoherence):
    """Mutation carrier: the mechanism itself is healthy numaPTE (which
    turns page-table replication on); the bug lives in the paired
    ``kernel_patch``. The subclass only swallows the LATR schedule knobs
    the harnesses pass uniformly to mutated coherence classes."""

    mutation = "broken_replica"

    def __init__(self, **kwargs):
        super().__init__()


def skip_node1_replica(kernel) -> None:
    """Mutation: every mm created from now on drops PTE *clears* from node
    1's replica fan-out -- the missed-unmap flavour of replica incoherence:
    node-1 hardware walks keep translating through mappings the canonical
    table already tore down. (Installs still fan out, so the bug first
    bites inside the checked op space, not during harness setup.)"""
    from ..mm.pagetable import ReplicatedPageTable

    original = kernel.create_process

    def create_process(*args, **kwargs):
        process = original(*args, **kwargs)
        pt = process.mm.page_table
        if isinstance(pt, ReplicatedPageTable):
            orig_mirror = pt._mirror

            def mirror(method, *args, _pt=pt, _orig=orig_mirror):
                if method in ("clear_pte", "clear_huge_pte"):
                    # BUG: node 1's replica never sees the teardown.
                    _pt._skip_replica_nodes = frozenset({1})
                    try:
                        _orig(method, *args)
                    finally:
                        _pt._skip_replica_nodes = frozenset()
                else:
                    _orig(method, *args)

            pt._mirror = mirror
        return process

    kernel.create_process = create_process


def break_ept_detach(kernel) -> None:
    """Mutation: turn two-level translation on, then make the hypervisor
    "forget" the host-level (EPT) invalidation that must accompany every
    frame free. Guest-side coherence stays healthy (TLBs are shot down /
    lazily reclaimed as usual), but gPA->hPA entries outlive their frames,
    so a guest 2D walk composes through a host entry into a freed -- and
    possibly recycled -- frame. Caught by ``check_ept_coherence`` at the
    ``frame.free`` instant.

    Runs on the freshly-built kernel before any process exists, so every
    mm the harness creates gets a host table (``create_process`` defaults
    ``virtualized`` to ``kernel.use_virtualization``)."""
    kernel.use_virtualization = True
    # BUG: host (EPT) entries are never detached when their frame frees.
    # (The page-cache on_free hook was never installed -- the kernel
    # booted with virtualization off -- which is the same skipped
    # invalidation on the eviction path.)
    kernel._ept_detach = lambda pfn: 0


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


MUTATION_SPECS: Dict[str, Mutation] = {
    spec.name: spec
    for spec in (
        Mutation(
            name="reclaim_delay_zero",
            description="reclaim daemon frees on age alone (no bitmask guard)",
            coherence_cls=EagerReclaimLatr,
            detected_by="monitor",
        ),
        Mutation(
            name="skip_sweep_invalidate",
            description="sweep clears bitmask bits without TLB invalidation",
            coherence_cls=SkipSweepInvalidateLatr,
            detected_by="monitor",
        ),
        Mutation(
            name="wheel_bucket_skip",
            description="timer wheel drops every 2nd activated bucket",
            simulator_cls=BucketSkipSimulator,
            detected_by="progress",
        ),
        Mutation(
            name="tlb_index_desync",
            description="per-pcid TLB victim index misses every 2nd fill",
            machine_patch=desync_tlb_index,
            detected_by="monitor",
        ),
        Mutation(
            name="active_cache_stale",
            description="active-state sweep cache not invalidated on post",
            coherence_cls=StaleActiveCacheLatr,
            detected_by="progress",
        ),
        Mutation(
            name="broken_replica",
            description="numaPTE replica fan-out drops PTE clears for node 1",
            coherence_cls=BrokenReplicaNumaPte,
            kernel_patch=skip_node1_replica,
            detected_by="monitor",
        ),
        Mutation(
            name="broken_ept_shootdown",
            description="host (EPT) invalidation skipped on guest-visible free",
            kernel_patch=break_ept_detach,
            detected_by="monitor",
        ),
    )
}

assert tuple(MUTATION_SPECS) == MUTATIONS


def mutation_spec(mutation: str) -> Mutation:
    """The :class:`Mutation` spec for ``mutation`` (see :data:`MUTATIONS`)."""
    try:
        return MUTATION_SPECS[mutation]
    except KeyError:
        raise KeyError(
            f"unknown mutation {mutation!r}; have {sorted(MUTATION_SPECS)}"
        ) from None


def mutated_latr_class(mutation: str) -> Type[LatrCoherence]:
    """The (possibly unmutated) LATR class for ``mutation``.

    Engine- and machine-level mutations keep the healthy coherence class;
    use :func:`mutation_spec` to apply every layer of a mutation.
    """
    return mutation_spec(mutation).coherence_cls or LatrCoherence
