"""Fuzz plans: seeded, mechanism-independent workload + schedule recipes.

A plan is *symbolic*: operations reference regions by slot index (resolved
modulo the live-region count at execution time) and cores by index, so any
subsequence of a plan is still executable -- the property the shrinker
relies on. The same plan replayed under two mechanisms performs the
identical operation sequence, which is what makes the differential
end-state comparison meaningful.

Schedule perturbations ride along in :class:`SchedulePlan`: per-core tick
phases, synthetic context-switch timing, the reclaim daemon's delay, and
the LATR queue depth. They are all derived from the same seed, so one
``--seed`` reproduces both the workload and the interleaving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

#: Operation kinds the generator draws from (ISSUE: mmap, munmap, madvise,
#: AutoNUMA migration, swap) plus the explicit settle barrier.
OP_KINDS = ("mmap", "munmap", "madvise", "touch", "migrate", "swap", "settle")

#: Draw weights: touches dominate (they are what populates TLBs and makes
#: stale windows observable), frees and migrations follow.
_WEIGHTS = {
    "mmap": 18,
    "touch": 30,
    "munmap": 12,
    "madvise": 10,
    "migrate": 10,
    "swap": 10,
    "settle": 4,
}


@dataclass(frozen=True)
class Op:
    """One symbolic operation."""

    kind: str
    #: Region slot selector (taken modulo the live-region count).
    region: int = 0
    #: Pages: mmap size, or the window width for range operations.
    pages: int = 1
    #: Page offset selector inside the region (modulo its size).
    offset: int = 0
    #: Core/thread selector (modulo core count).
    core: int = 0
    #: Process selector (modulo process count).
    proc: int = 0
    write: bool = False
    #: Content tag stamped by writing touches (differential payload check).
    tag: str = ""

    def __str__(self) -> str:
        bits = [self.kind, f"r{self.region}", f"p{self.pages}", f"c{self.core}"]
        if self.offset:
            bits.append(f"+{self.offset}")
        if self.write:
            bits.append("w")
        return ":".join(bits)


@dataclass(frozen=True)
class SchedulePlan:
    """The randomized interleaving knobs for one run."""

    #: core id -> tick phase offset (ns within the tick interval).
    tick_offsets: Dict[int, int] = field(default_factory=dict)
    #: Per-core synthetic context-switch gap draws (ns); each core's
    #: perturber loops over its list, so the switch times are identical
    #: across mechanisms regardless of workload timing.
    ctx_switch_gaps: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    reclaim_delay_ticks: int = 2
    queue_depth: int = 64


@dataclass(frozen=True)
class FuzzPlan:
    """A complete reproducible recipe: workload ops + schedule."""

    seed: int
    n_cores: int
    n_procs: int
    ops: Tuple[Op, ...]
    schedule: SchedulePlan

    def with_ops(self, ops) -> "FuzzPlan":
        return replace(self, ops=tuple(ops))

    def describe(self) -> str:
        return " ".join(str(op) for op in self.ops)


def generate_plan(
    seed: int,
    n_ops: int,
    n_cores: int = 4,
    n_procs: int = 2,
    tick_interval_ns: int = 1_000_000,
    max_pages: int = 48,
) -> FuzzPlan:
    """Draw a plan from ``seed``. ``max_pages`` > the 32-page full-flush
    threshold so both the per-page and full-flush invalidation paths get
    exercised."""
    rng = random.Random(seed)
    kinds = list(_WEIGHTS)
    weights = [_WEIGHTS[k] for k in kinds]
    ops: List[Op] = []
    # Open with a few mappings so early draws have regions to work on.
    for i in range(min(3, max(1, n_ops // 8))):
        ops.append(
            Op(
                kind="mmap",
                pages=rng.randint(1, max_pages),
                core=rng.randrange(n_cores),
                proc=rng.randrange(n_procs),
                write=True,
                tag=f"init{i}",
            )
        )
    while len(ops) < n_ops:
        kind = rng.choices(kinds, weights=weights)[0]
        pages = rng.randint(1, max_pages if kind == "mmap" else 16)
        ops.append(
            Op(
                kind=kind,
                region=rng.randrange(1 << 16),
                pages=pages,
                offset=rng.randrange(1 << 16),
                core=rng.randrange(n_cores),
                proc=rng.randrange(n_procs),
                write=rng.random() < 0.6,
                tag=f"t{len(ops)}" if kind in ("mmap", "touch") else "",
            )
        )

    tick_offsets = {c: rng.randrange(tick_interval_ns) for c in range(n_cores)}
    ctx_switch_gaps = {
        c: tuple(
            int(tick_interval_ns * rng.uniform(0.13, 1.7)) for _ in range(8)
        )
        for c in range(n_cores)
    }
    schedule = SchedulePlan(
        tick_offsets=tick_offsets,
        ctx_switch_gaps=ctx_switch_gaps,
        reclaim_delay_ticks=rng.choice((1, 2, 3)),
        queue_depth=rng.choice((3, 8, 64)),
    )
    return FuzzPlan(
        seed=seed,
        n_cores=n_cores,
        n_procs=n_procs,
        ops=tuple(ops),
        schedule=schedule,
    )
