"""Generic ddmin-style sequence minimization.

Both failure shrinkers in the verification suite -- the fuzzer's op-plan
shrinker and the model checker's counterexample-trace shrinker -- are the
same algorithm over different item types: remove chunks of the sequence
while the failure still reproduces, doubling granularity when a whole
pass removes nothing. Callers guarantee that any subsequence of a failing
sequence is executable (fuzz plans resolve region slots modulo the live
count; model-checker traces skip actions whose preconditions lapsed).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    still_fails: Callable[[List[T]], bool],
    budget: int = 80,
) -> Tuple[List[T], int]:
    """Minimize ``items`` while ``still_fails(subsequence)`` holds.

    ``still_fails`` is never called with an empty sequence. Returns the
    minimal failing subsequence found and the number of predicate calls
    spent (bounded by ``budget``).
    """
    ops = list(items)
    runs = 0
    granularity = 2
    while runs < budget and len(ops) > 1:
        chunk = max(1, len(ops) // granularity)
        reduced = False
        i = 0
        while i < len(ops) and runs < budget:
            candidate = ops[:i] + ops[i + chunk:]
            runs += 1
            if candidate and still_fails(candidate):
                ops = candidate
                reduced = True
            else:
                i += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(ops), granularity * 2)
    return ops, runs
