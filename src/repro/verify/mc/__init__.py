"""Exhaustive small-scope coherence model checking (``python -m repro mc``).

Enumerates every schedulable interleaving of coherence-relevant actions
(program ops, per-core sweeps, reclaim rounds) at tiny scope, reduced by
sleep-set DPOR and state hashing, with every complete trace checked by
the invariant monitor and a differential oracle over the fast-path
escape hatches and the synchronous mechanisms."""

from .executor import McExecutor, McScope, diff_mech_snapshots, racy_free_pages
from .explorer import (
    CellResult,
    Counterexample,
    McConfig,
    McResult,
    check_trace,
    explore_cell,
    merge_cells,
    root_actions,
    run_mc,
)
from .program import KINDS, McOp, generate_program, per_core_programs

__all__ = [
    "CellResult",
    "Counterexample",
    "KINDS",
    "McConfig",
    "McExecutor",
    "McOp",
    "McResult",
    "McScope",
    "check_trace",
    "diff_mech_snapshots",
    "explore_cell",
    "generate_program",
    "merge_cells",
    "per_core_programs",
    "racy_free_pages",
    "root_actions",
    "run_mc",
]
