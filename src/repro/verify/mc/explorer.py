"""Exhaustive small-scope exploration with dynamic partial-order reduction.

The explorer enumerates every schedulable action sequence of a
:class:`~repro.verify.mc.executor.McExecutor` scope by depth-first search,
backtracking between siblings via in-place world snapshots
(:meth:`McExecutor.fork` / ``restore`` -- O(state) per sibling instead of
an O(depth) cold-boot replay; ``McConfig(use_snapshots=False)`` keeps the
replay path as a bit-identical escape hatch), pruned two ways:

* **Sleep sets** over an independence relation. The relation is
  deliberately conservative -- only pairs proven to commute in *every*
  state are independent: two sweeps on distinct cores (each clears its
  own bitmask bit and invalidates its own core's TLB; the deferred
  migration-PTE apply and the ``done`` resume fire exactly once in either
  order), and a program op that is a guaranteed PC-advance skip against
  any action on another core. Everything touching the shared allocator,
  the state queues, or ``mmap_sem`` is treated as dependent and left to:
* **State hashing**. A canonical functional-state hash identifies
  convergent interleavings; a revisit is pruned only when a previously
  recorded sleep set is a subset of the current one (re-arriving with a
  smaller sleep set means more obligations, so the state is re-explored
  -- the classic sleep-set/state-caching soundness condition).

Every action must strictly change the canonical state (enabledness
guards guarantee it for healthy systems), so a *stutter* -- an enabled
action whose post-state hashes identically -- is reported as a livelock
finding; this is how sweep-cache staleness shows up exhaustively.

Complete (maximal, drained) traces run through the differential oracle:
replayed with each fast-path escape hatch toggled (timer wheel, TLB
index, sweep index -- end state must be hash-identical), with the
engine's same-instant event order reversed through the ready-set hook
(normalized end state must match), and under each synchronous mechanism
(normalized end state must match). Counterexample traces are shrunk with
the suite-wide ddmin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..shrink import ddmin
from .executor import (
    McExecutor,
    McScope,
    TOGGLE_VARIANTS,
    diff_mech_snapshots,
    racy_free_pages,
)

#: Deterministic drain extension bound for truncated (ddmin) traces.
EXTEND_CAP = 128


@dataclass(frozen=True)
class McConfig:
    """Scope plus exploration knobs."""

    scope: McScope = field(default_factory=McScope)
    #: Per-cell node budget (deterministic, unlike wall-clock budgets).
    max_nodes: int = 200_000
    #: Stop a cell at its first counterexample (mutation audits); healthy
    #: sweeps leave it on too -- a clean space never triggers it.
    stop_on_first: bool = True
    #: Run the differential oracle at every complete leaf.
    differential: bool = True
    #: Disable both reductions (brute-force reference for the soundness
    #: regression test; exponential -- tiny scopes only).
    no_reduction: bool = False
    #: Record every distinct state hash reached (soundness tests assert
    #: reduced and brute-force runs cover the same state set).
    collect_hashes: bool = False
    shrink_budget: int = 60
    #: Backtrack via in-place world snapshots (O(1) per sibling) instead of
    #: replaying every prefix from a cold boot (O(depth)). False is the
    #: bit-identical escape hatch, same pattern as the timer wheel and the
    #: sweep index; mutated scopes force the replay path because a mutation
    #: may carry broken state the snapshot layer does not model.
    use_snapshots: bool = True


@dataclass
class Counterexample:
    cell: int
    trace: Tuple[str, ...]
    findings: Tuple[str, ...]
    shrunk: Optional[Tuple[str, ...]] = None
    shrink_runs: int = 0


@dataclass
class CellResult:
    cell: int
    root_action: str
    nodes: int = 0
    leaves: int = 0
    complete_leaves: int = 0
    hash_pruned: int = 0
    sleep_skipped: int = 0
    replays: int = 0
    restores: int = 0
    max_depth: int = 0
    incomplete: bool = False
    counterexample: Optional[Counterexample] = None
    state_hashes: set = field(default_factory=set)


@dataclass
class McResult:
    config: McConfig
    root_actions: Tuple[str, ...]
    cells: List[CellResult]
    verdict: str  # "ok" | "violation" | "incomplete"
    counterexample: Optional[Counterexample]

    @property
    def nodes(self) -> int:
        return sum(c.nodes for c in self.cells)

    @property
    def leaves(self) -> int:
        return sum(c.leaves for c in self.cells)

    @property
    def hash_pruned(self) -> int:
        return sum(c.hash_pruned for c in self.cells)

    @property
    def sleep_skipped(self) -> int:
        return sum(c.sleep_skipped for c in self.cells)

    def render(self) -> str:
        s = self.config.scope
        lines = [
            f"model-exhaust: cores={s.cores} pages={s.pages} ops={s.ops}"
            + (f" mutate={s.mutate}" if s.mutate else ""),
            f"verdict: {self.verdict.upper()}",
            f"states explored: {self.nodes}  complete traces: "
            f"{sum(c.complete_leaves for c in self.cells)}",
            f"pruned: {self.hash_pruned} by state hash, "
            f"{self.sleep_skipped} by sleep sets (DPOR)",
            f"backtracking: {sum(c.restores for c in self.cells)} restores, "
            f"{sum(c.replays for c in self.cells)} replays",
            f"cells: {len(self.cells)} root branches "
            f"({', '.join(c.root_action for c in self.cells)})",
        ]
        if self.counterexample is not None:
            ce = self.counterexample
            lines.append(f"counterexample (cell {ce.cell}, {len(ce.trace)} actions):")
            lines.extend(f"  {k}" for k in ce.trace)
            lines.extend(f"  finding: {f}" for f in ce.findings)
            if ce.shrunk is not None:
                lines.append(
                    f"shrunk to {len(ce.shrunk)} actions "
                    f"({ce.shrink_runs} replays):"
                )
                lines.extend(f"  {k}" for k in ce.shrunk)
        return "\n".join(lines)


class _CellDone(Exception):
    """Unwinds the DFS when a cell stops early (first counterexample or
    node budget)."""


def _independent(a: str, b: str, executor: McExecutor) -> bool:
    """Conservative commutation check (see module docstring)."""
    if a.startswith("sweep:c") and b.startswith("sweep:c"):
        return a != b
    for op_key, other in ((a, b), (b, a)):
        if not op_key.startswith("op:"):
            continue
        op = executor._op_for_key(op_key)
        other_core = None
        if other.startswith("op:"):
            other_core = executor._op_for_key(other).core
        elif other.startswith("sweep:c"):
            other_core = int(other[len("sweep:c"):])
        if other_core == op.core:
            return False
        # A guaranteed PC-advance skip only touches its own thread state.
        slot = executor.slots[op.page]
        if (op.kind == "mmap" and slot is not None) or (
            op.kind != "mmap" and slot is None
        ):
            return True
    return False


class _CellExplorer:
    def __init__(self, config: McConfig, cell: int, root_action: str,
                 root_sleep: Sequence[str]):
        self.config = config
        self.cell = cell
        self.root_action = root_action
        self.root_sleep = tuple(root_sleep)
        self.result = CellResult(cell=cell, root_action=root_action)
        # Mutations may carry deliberately-broken derived state the snapshot
        # layer does not model; they keep the proven replay path.
        self.use_snapshots = config.use_snapshots and config.scope.mutate is None
        #: DFS-path stack of (trace, world snapshot) for O(1) backtracking.
        self._snaps: List[Tuple[Tuple[str, ...], object]] = []
        #: variant -> (executor, boot snapshot): differential replicas are
        #: booted once per cell and rewound per leaf instead of re-booted.
        self._replicas: Dict[str, Tuple[McExecutor, object]] = {}
        #: hash -> list of sleep sets it was explored with.
        self.visited: Dict[str, List[frozenset]] = {}
        #: mechanism -> {op projection -> normalized snapshot}
        self._mech_cache: Dict[str, Dict[Tuple[str, ...], Dict]] = {}

    # ------------------------------------------------------------------ run

    def run(self) -> CellResult:
        executor = self._executor = self._replay(())
        if self.use_snapshots:
            # Base snapshot of the freshly-booted world: the backtracking
            # floor when a node itself is unsnapshottable (ops in flight).
            self._snaps.append(((), executor.fork()))
        root_hash = executor.state_hash()
        sleep = set()
        if not self.config.no_reduction:
            sleep = {
                z for z in self.root_sleep if _independent(z, self.root_action, executor)
            }
        executor.execute(self.root_action)
        try:
            self._dfs((self.root_action,), sleep, executor, root_hash)
        except _CellDone:
            pass
        return self.result

    def _replay(self, trace: Sequence[str]) -> McExecutor:
        if trace:
            self.result.replays += 1
        executor = McExecutor(self.config.scope)
        for key in trace:
            executor.apply(key, tolerant=False)
        return executor

    def _backtrack(self, trace: Tuple[str, ...]) -> McExecutor:
        """Rewind the shared executor to the state reached by ``trace``:
        restore the nearest ancestor snapshot on the DFS path (usually the
        current node's own -- a pure O(state) restore, no prefix replay)
        and re-apply the unsnapshottable suffix, if any."""
        executor = self._executor
        for snap_trace, snap in reversed(self._snaps):
            if len(snap_trace) <= len(trace):
                executor.restore(snap)
                self.result.restores += 1
                for key in trace[len(snap_trace):]:
                    executor.apply(key, tolerant=False)
                return executor
        return self._replay(trace)

    def _fail(self, trace: Tuple[str, ...], findings: List[str]) -> None:
        if self.result.counterexample is None:
            self.result.counterexample = Counterexample(
                cell=self.cell, trace=trace, findings=tuple(findings)
            )
        if self.config.stop_on_first:
            raise _CellDone()

    # ------------------------------------------------------------------ dfs

    def _dfs(self, trace: Tuple[str, ...], sleep: set, executor: McExecutor,
             parent_hash: str) -> None:
        res = self.result
        res.nodes += 1
        res.max_depth = max(res.max_depth, len(trace))
        if res.nodes > self.config.max_nodes:
            res.incomplete = True
            raise _CellDone()

        findings = executor.findings()
        if findings:
            self._fail(trace, findings)
            return
        h = executor.state_hash()
        if self.config.collect_hashes:
            res.state_hashes.add(h)
        if h == parent_hash:
            self._fail(
                trace,
                [f"stutter: enabled action {trace[-1]!r} changed nothing (livelock)"],
            )
            return
        if not self.config.no_reduction:
            recorded = self.visited.get(h)
            if recorded is not None and any(r <= sleep for r in recorded):
                res.hash_pruned += 1
                return
            self.visited.setdefault(h, []).append(frozenset(sleep))

        enabled = executor.enabled_actions()
        if not enabled:
            self._leaf(trace, executor)
            return

        # Actions actually expanded: the skip set is the *initial* sleep set
        # (actions added during the loop are previously-iterated siblings,
        # which cannot reappear in ``enabled``).
        expand = [action for action in enabled if action not in sleep]
        res.sleep_skipped += len(enabled) - len(expand)
        snap = None
        if len(expand) > 1 and self.use_snapshots and not executor.in_flight:
            # Only branching nodes snapshot: a chain node's world is never
            # backtracked to (its sole child consumes the live executor).
            snap = executor.fork()
            self._snaps.append((trace, snap))
        try:
            live: Optional[McExecutor] = executor
            cur_sleep = set(sleep)
            for action in expand:
                if live is not None:
                    child, live = live, None
                elif self.use_snapshots:
                    child = self._backtrack(trace)
                else:
                    child = self._replay(trace)
                child_sleep = set()
                if not self.config.no_reduction:
                    child_sleep = {z for z in cur_sleep if _independent(z, action, child)}
                child.execute(action)
                self._dfs(trace + (action,), child_sleep, child, h)
                if not self.config.no_reduction:
                    cur_sleep.add(action)
        finally:
            if snap is not None:
                self._snaps.pop()

    # ----------------------------------------------------------------- leaf

    def _leaf(self, trace: Tuple[str, ...], executor: McExecutor) -> None:
        self.result.leaves += 1
        if executor.in_flight:
            stuck = ", ".join(
                op.key for (op, _p) in executor.in_flight.values()
            )
            self._fail(trace, [f"stuck: in-flight ops never completed ({stuck})"])
            return
        if executor.pending_lazy():
            self._fail(
                trace,
                [f"undrained: {executor.pending_lazy()} lazy operations remain "
                 "with no schedulable action"],
            )
            return
        quiescent = executor.quiescent_findings()
        if quiescent:
            self._fail(trace, quiescent)
            return
        self.result.complete_leaves += 1
        if self.config.differential:
            findings = self._differential(trace, executor)
            if findings:
                self._fail(trace, findings)

    def _variant_replica(self, variant: str, trace: Tuple[str, ...]) -> McExecutor:
        """A replica executor for ``variant`` advanced through ``trace``:
        booted once per cell and rewound to its boot snapshot per leaf when
        snapshots are on, else booted cold every time."""
        if not self.use_snapshots:
            replica = McExecutor(self.config.scope, variant=variant)
            self.result.replays += 1
        else:
            pair = self._replicas.get(variant)
            if pair is None:
                replica = McExecutor(self.config.scope, variant=variant)
                self._replicas[variant] = (replica, replica.fork())
                self.result.replays += 1
            else:
                replica, boot_snap = pair
                replica.restore(boot_snap)
                self.result.restores += 1
        for key in trace:
            replica.apply(key)
        return replica

    def _differential(self, trace: Tuple[str, ...],
                      executor: McExecutor) -> List[str]:
        findings: List[str] = []
        base_hash = executor.state_hash(include_derived=False)
        base_snap = executor.mech_snapshot()
        # Fast-path escape hatches: end state must be hash-identical.
        for variant in TOGGLE_VARIANTS:
            replica = self._variant_replica(variant, trace)
            vfind = replica.findings()
            if vfind:
                findings.append(f"toggle {variant}: findings {vfind}")
            elif replica.state_hash(include_derived=False) != base_hash:
                findings.append(
                    f"toggle {variant}: end state diverged from primary schedule"
                )
        # Reversed same-instant event order through the engine's ready-set
        # hook: semantic end state must match.
        replica = self._variant_replica("revheap", trace)
        diffs = diff_mech_snapshots(base_snap, replica.mech_snapshot())
        diffs += [f"revheap findings: {f}" for f in replica.findings()]
        findings.extend(f"revheap: {d}" for d in diffs)
        # Synchronous mechanisms over the program-op projection. Slots a
        # cross-core touch may have hit inside a free operation's staleness
        # window end differently under lazy vs eager invalidation by design;
        # both sides mask them identically (see racy_free_pages).
        projection = tuple(k for k in trace if k.startswith("op:"))
        racy = racy_free_pages(projection)
        mech_base = executor.mech_snapshot(racy) if racy else base_snap
        for mech in self.config.scope.check_mechanisms:
            snap = self._mech_end_state(mech, projection, findings)
            if snap is None:
                continue
            for d in diff_mech_snapshots(mech_base, snap):
                findings.append(f"mechanism {mech}: {d}")
        return findings

    def _mech_end_state(self, mech: str, projection: Tuple[str, ...],
                        findings: List[str]) -> Optional[Dict]:
        cache = self._mech_cache.setdefault(mech, {})
        if projection in cache:
            return cache[projection]
        replica = self._variant_replica(f"mech:{mech}", projection)
        if replica.in_flight or replica.findings():
            findings.append(
                f"mechanism {mech}: replay unhealthy "
                f"(in_flight={sorted(replica.in_flight)}, "
                f"findings={replica.findings()})"
            )
            cache[projection] = None
            return None
        snap = replica.mech_snapshot(racy_free_pages(projection))
        cache[projection] = snap
        return snap


# ---------------------------------------------------------------------------
# Cells, sharding, and the top-level run
# ---------------------------------------------------------------------------


def root_actions(config: McConfig) -> Tuple[str, ...]:
    """The first-level branches; one cell per branch. A pure function of
    the scope, so every worker derives the identical decomposition."""
    return tuple(McExecutor(config.scope).enabled_actions())


def explore_cell(config: McConfig, cell: int) -> CellResult:
    """Explore root branch ``cell`` with the sleep set induced by its
    left siblings -- the standard persistent left-to-right split, which
    makes the concatenation of all cells equal to the serial DFS."""
    roots = root_actions(config)
    result = _CellExplorer(config, cell, roots[cell], roots[:cell]).run()
    if result.counterexample is not None and config.shrink_budget > 0:
        result.counterexample = _shrink(config, result.counterexample)
    return result


def check_trace(config: McConfig, trace: Sequence[str]) -> List[str]:
    """Replay a (possibly truncated) trace and report its findings.

    Truncated traces are drained deterministically first -- remaining
    daemon actions fire in sorted order -- so progress findings (stuck,
    undrained, stutter) are judged against a maximal schedule, not an
    artifact of the cut.
    """
    executor = McExecutor(config.scope)
    prev = executor.state_hash()
    findings: List[str] = []
    for key in trace:
        if not executor.apply(key):
            continue
        cur = executor.state_hash()
        if executor.findings():
            return executor.findings()
        if cur == prev:
            findings.append(f"stutter: enabled action {key!r} changed nothing")
            return findings
        prev = cur
    extension: List[str] = []
    for _ in range(EXTEND_CAP):
        daemon = [a for a in executor.enabled_actions() if not a.startswith("op:")]
        if not daemon:
            break
        before = executor.state_hash()
        executor.execute(daemon[0])
        extension.append(daemon[0])
        if executor.findings():
            return executor.findings()
        if executor.state_hash() == before:
            return [f"stutter: enabled action {daemon[0]!r} changed nothing"]
    if executor.in_flight:
        return ["stuck: in-flight ops never completed"]
    if executor.pending_lazy():
        return [f"undrained: {executor.pending_lazy()} lazy operations remain"]
    findings = executor.quiescent_findings()
    if findings:
        return findings
    if config.differential and executor.program_complete():
        cell = _CellExplorer(config, 0, "", ())
        # The replicas must replay the drain extension too: the primary
        # executor above was drained to a maximal schedule, and comparing
        # it against an undrained replay would report pending lazy work as
        # a divergence.
        return cell._differential(tuple(trace) + tuple(extension), executor)
    return []


def _shrink(config: McConfig, ce: Counterexample) -> Counterexample:
    shrunk, runs = ddmin(
        list(ce.trace),
        lambda candidate: bool(check_trace(config, candidate)),
        budget=config.shrink_budget,
    )
    ce.shrunk = tuple(shrunk)
    ce.shrink_runs = runs
    return ce


def merge_cells(config: McConfig, roots: Tuple[str, ...],
                cells: List[CellResult]) -> McResult:
    """Deterministic merge: the verdict and canonical counterexample come
    from the lowest failing cell, and when a run stops early the counts
    of later cells are discarded -- so ``--jobs 1`` and any sharding
    report byte-identical results."""
    cells = sorted(cells, key=lambda c: c.cell)
    failing = next((c for c in cells if c.counterexample is not None), None)
    if failing is not None and config.stop_on_first:
        cells = [c for c in cells if c.cell <= failing.cell]
    incomplete = any(c.incomplete for c in cells)
    if failing is not None:
        verdict = "violation"
    elif incomplete:
        verdict = "incomplete"
    else:
        verdict = "ok"
    return McResult(
        config=config,
        root_actions=roots,
        cells=cells,
        verdict=verdict,
        counterexample=failing.counterexample if failing is not None else None,
    )


def run_mc(config: McConfig, jobs: int = 1) -> McResult:
    """Explore the full scope: decompose into root-branch cells, explore
    each (optionally across processes), merge deterministically."""
    roots = root_actions(config)
    if not roots:
        return McResult(config, roots, [], "ok", None)
    if jobs <= 1 or len(roots) == 1:
        cells = []
        for i in range(len(roots)):
            cell = explore_cell(config, i)
            cells.append(cell)
            if cell.counterexample is not None and config.stop_on_first:
                break
        return merge_cells(config, roots, cells)
    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        cells = list(pool.map(_explore_cell_job, [(config, i) for i in range(len(roots))]))
    return merge_cells(config, roots, cells)


def _explore_cell_job(args: Tuple[McConfig, int]) -> CellResult:
    return explore_cell(*args)
