"""Controlled-schedule executor for the coherence model checker.

One :class:`McExecutor` is one booted system driven action-by-action. The
checker -- not the simulated clock -- decides which coherence-relevant
event fires next:

* ``op:...``   start the next program operation of one core's thread,
* ``sweep:cN`` fire core N's LATR sweep (the timer-tick / context-switch
  hook, detached from the tick so the checker can schedule it anywhere),
* ``reclaim``  fire one reclamation-daemon round.

After each action the simulator drains to quiescence through the engine's
ready-set choice hook (``Simulator(choice_hook=...)``), so within-action
event order is itself controllable: the primary schedule dispatches
same-instant events front-first, and the ``revheap`` replay variant
reverses that order to prove intra-drain order insensitivity.

An operation may *block* mid-flight -- a touch parked on the migration
gate holds ``mmap_sem``, which can transitively park other cores' ops.
Blocked ops stay "in flight": their core offers no new program action
until a daemon action unblocks them, and a maximal trace that still has
in-flight ops is reported as a stuck schedule.

Determinism contract: every action's effect is a pure function of the
executed action sequence, so a state is identified by a canonical hash of
the functional machine state (TLBs, page table, VMAs, allocator free
lists, LATR queues with seq numbers normalized to posting order, thread
PCs, in-flight set). Derived acceleration state (sweep cursors, the TLB's
pcid index, the active-state cache) is excluded so the hash is invariant
across the fast-path escape hatches -- except in mutated runs, where the
broken derived state is the bug and is folded back in.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ...coherence import make_mechanism
from ...coherence.latr import LatrCoherence
from ...hw.machine import Machine
from ...hw.spec import preset
from ...kernel.autonuma import AutoNuma
from ...kernel.kernel import Kernel
from ...mm.addr import PAGE_SIZE, VirtRange
from ...sim.engine import Simulator
from ...snapshot import SnapshotError, restore_kernel, snapshot_kernel
from ..monitor import InvariantMonitor
from ..mutations import mutation_spec
from .program import McOp, generate_program, per_core_programs

#: Replay variants. ``primary`` is the exploration schedule; the others
#: re-run a trace with one fast-path escape hatch or engine order flipped
#: (identical end state required), or under a synchronous mechanism
#: (normalized end state required).
TOGGLE_VARIANTS = ("wheel", "tlbidx", "sweepidx", "soa", "packedtlb", "slabs")
ORDER_VARIANTS = ("revheap",)

#: LatrFlag member -> .name memo: enum attribute access goes through a
#: slow DynamicClassAttribute descriptor, and the canonical-state builder
#: reads it for every live queue slot on every hashed node.
_FLAG_NAMES: Dict[Any, str] = {}

#: Hard cap on events executed per drain; hitting it is itself a finding
#: (a runaway schedule), never a silent truncation.
DRAIN_CAP = 50_000


@dataclass(frozen=True)
class McScope:
    """Scope + knobs for one model-checking run (picklable, hashable)."""

    cores: int = 2
    pages: int = 1
    ops: int = 3
    mutate: Optional[str] = None
    queue_depth: int = 8
    frames_per_node: int = 64
    check_mechanisms: Tuple[str, ...] = ("linux", "abis", "barrelfish")


def _build_spec(cores: int):
    spec = preset("commodity-2s16c")
    if cores >= 2 and cores % 2 == 0:
        # Two NUMA nodes whenever possible so migration stays cross-socket.
        from dataclasses import replace

        return replace(
            spec, name=f"mc-2s{cores}c", sockets=2, cores_per_socket=cores // 2
        )
    return spec.with_cores(cores)


class McExecutor:
    """One booted system under checker control (see module docstring)."""

    def __init__(self, scope: McScope, variant: str = "primary"):
        self.scope = scope
        self.variant = variant
        self.errors: List[str] = []
        self._is_mech = variant.startswith("mech:")
        self.mutation = (
            mutation_spec(scope.mutate)
            if scope.mutate is not None and not self._is_mech
            else None
        )
        self._boot()
        self.program = generate_program(scope.cores, scope.pages, scope.ops)
        self.core_ops = per_core_programs(self.program, scope.cores)
        self.pc = [0] * scope.cores
        #: core -> (McOp, Process); insertion order == op start order.
        self.in_flight: Dict[int, Tuple[McOp, object]] = {}
        #: page slot -> live VirtRange (None while unmapped).
        self.slots: List[Optional[VirtRange]] = [None] * scope.pages
        #: (core id, include_derived) -> (tlb entries_version, pickled
        #: canonical fragment); see _canonical_state.
        self._tlb_canon: Dict[Tuple[int, bool], Tuple[int, bytes]] = {}
        #: (allocator version, pickled canonical fragment) or None.
        self._frames_canon: Optional[Tuple[int, bytes]] = None
        #: ((page table version, host table version), pickled canonical
        #: fragment) or None; the host version is -1 for native mms.
        self._pt_canon: Optional[Tuple[Tuple[int, int], bytes]] = None
        #: LATR queues sorted by core id (the set is fixed at boot), or
        #: None for non-LATR mechanisms / before first use.
        self._latr_queues: Optional[List[Tuple[int, Any]]] = None
        self._init_slots()

    # ------------------------------------------------------------------ boot

    def _boot(self) -> None:
        scope, variant = self.scope, self.variant
        simulator_cls = Simulator
        if self.mutation is not None and self.mutation.simulator_cls is not None:
            simulator_cls = self.mutation.simulator_cls
        if variant == "wheel":
            sim = simulator_cls(use_timer_wheel=True)
        elif variant == "revheap":
            sim = simulator_cls(choice_hook=lambda ready: len(ready) - 1)
        else:
            # Front-first through the ready-set hook: deterministic heap
            # order, but dispatched through the controllable scheduler path.
            sim = simulator_cls(choice_hook=lambda ready: 0)

        if self._is_mech:
            coherence = make_mechanism(variant.split(":", 1)[1])
        else:
            coherence_cls = LatrCoherence
            if self.mutation is not None and self.mutation.coherence_cls is not None:
                coherence_cls = self.mutation.coherence_cls
            coherence = coherence_cls(
                queue_depth=scope.queue_depth,
                reclaim_delay_ticks=0,
                sweep_on_context_switch=False,
                sweep_on_tick=False,
                use_sweep_index=(variant != "sweepidx"),
                use_soa_states=(variant != "soa"),
            )
        machine = Machine(
            sim,
            _build_spec(scope.cores),
            use_tlb_index=(False if variant == "tlbidx" else None),
            use_packed_tlb=(False if variant == "packedtlb" else None),
        )
        if self.mutation is not None and self.mutation.machine_patch is not None:
            self.mutation.machine_patch(machine)
        kernel = Kernel(
            machine, coherence, frames_per_node=scope.frames_per_node, seed=1,
            use_frame_slabs=(False if variant == "slabs" else None),
        )
        if self.mutation is not None and self.mutation.kernel_patch is not None:
            self.mutation.kernel_patch(kernel)
        AutoNuma.install(kernel)  # fault side; the checker posts its own hints
        monitor = InvariantMonitor.install(kernel)
        # NOTE: kernel.start() is deliberately NOT called -- no periodic
        # ticks, no background reclaim daemon. Sweeps and reclaim rounds
        # fire only when the checker schedules them, so the interleaving
        # space is exactly the action sequences the explorer enumerates.
        self.sim = sim
        self.machine = machine
        self.kernel = kernel
        self.coherence = coherence
        self.monitor = monitor
        self.proc = kernel.create_process("mc")
        self.tasks = [
            kernel.spawn_thread(self.proc, f"mc.t{c}", c) for c in range(scope.cores)
        ]
        self.is_latr = isinstance(coherence, LatrCoherence)
        self._eager_reclaim = (
            self.mutation is not None and self.mutation.name == "reclaim_delay_zero"
        )

    def _init_slots(self) -> None:
        """Map every page slot from core 0 and read it from every other
        core, so all cores hold translations (full-bitmask FREE states and
        cross-core sweep races from the very first op)."""
        sys_, sched = self.kernel.syscalls, self.kernel.scheduler
        for page in range(self.scope.pages):
            def body(page=page) -> Generator:
                core0, task0 = self.machine.core(0), self.tasks[0]
                vr = yield from sys_.mmap(task0, core0, PAGE_SIZE)
                self.slots[page] = vr
                yield from sys_.write_with_content(
                    task0, core0, vr.start, f"init{page}"
                )
                for c in range(1, self.scope.cores):
                    yield from sched.run_on(
                        self.machine.core(c),
                        self.tasks[c],
                        sys_.touch_pages(
                            self.tasks[c], self.machine.core(c), vr, write=False
                        ),
                    )

            proc = self.sim.spawn(
                sched.run_on(self.machine.core(0), self.tasks[0], body()),
                name=f"init.p{page}",
            )
            self._drain()
            if proc.alive:
                raise RuntimeError(f"init of page slot {page} did not complete")
        if self.monitor.violations:
            raise RuntimeError(f"init violated invariants: {self.monitor.violations}")

    # --------------------------------------------------------------- actions

    def enabled_actions(self) -> List[str]:
        """All schedulable actions at the current state, in canonical
        (sorted-key) order. Daemon actions are enabled only when they can
        make progress, so every enabled action strictly changes state."""
        actions: List[str] = []
        for c in range(self.scope.cores):
            if c in self.in_flight:
                continue
            if self.pc[c] < len(self.core_ops[c]):
                actions.append(self.core_ops[c][self.pc[c]].key)
        if self.is_latr:
            cores_with_bits: set = set()
            for queue in self.coherence.queues.values():
                for state in queue._slots:
                    if state is not None and state.active:
                        # update() accepts any iterable of core ids (the SoA
                        # model's mask view included); |= needs a real set.
                        cores_with_bits.update(state.cpu_bitmask)
            actions.extend(f"sweep:c{c}" for c in sorted(cores_with_bits))
            pending = self.coherence._pending_reclaim
            if self._eager_reclaim:
                reclaimable = bool(pending)
            else:
                reclaimable = any(not s.active for s in pending)
            if reclaimable:
                actions.append("reclaim")
        return sorted(actions)

    def _op_for_key(self, key: str) -> McOp:
        idx = int(key.split(":")[2][1:])
        return self.program[idx]

    def execute(self, key: str) -> None:
        """Fire one action and drain the simulator to quiescence."""
        if key.startswith("op:"):
            op = self._op_for_key(key)
            core_pos = self.pc[op.core]
            if op.core in self.in_flight or (
                core_pos >= len(self.core_ops[op.core])
                or self.core_ops[op.core][core_pos].idx != op.idx
            ):
                raise RuntimeError(f"action {key} is not schedulable here")
            self.pc[op.core] += 1
            proc = self.sim.spawn(self._run_op(op), name=key)
            self.in_flight[op.core] = (op, proc)
        elif key.startswith("sweep:c"):
            self.coherence.sweep(self.machine.core(int(key[len("sweep:c"):])))
        elif key == "reclaim":
            self.coherence._reclaim_round()
        else:
            raise RuntimeError(f"unknown action key {key!r}")
        self._drain()

    def apply(self, key: str, tolerant: bool = True) -> bool:
        """Replay-side ``execute``: fire the action if it is applicable in
        the current state, else skip it (shrunken counterexample traces and
        cross-mechanism projections contain actions whose preconditions
        lapsed). Returns whether the action ran."""
        if key.startswith("op:"):
            op = self._op_for_key(key)
            pos = self.pc[op.core]
            applicable = (
                op.core not in self.in_flight
                and pos < len(self.core_ops[op.core])
                and self.core_ops[op.core][pos].idx == op.idx
            )
            if not applicable:
                if not tolerant:
                    raise RuntimeError(f"replay action {key} not applicable")
                return False
            self.execute(key)
            return True
        if not self.is_latr:
            return False  # daemon actions do not exist under sync mechanisms
        if key not in self.enabled_actions():
            # A sweep with no matching states or a reclaim with nothing
            # reclaimable would be a silent no-op; shrunken traces skip it.
            if not tolerant:
                raise RuntimeError(f"replay action {key} not applicable")
            return False
        self.execute(key)
        return True

    def _run_op(self, op: McOp) -> Generator:
        core, task = self.machine.core(op.core), self.tasks[op.core]
        yield from self.kernel.scheduler.run_on(core, task, self._op_body(op))

    def _op_body(self, op: McOp) -> Generator:
        sys_ = self.kernel.syscalls
        core, task = self.machine.core(op.core), self.tasks[op.core]
        vr = self.slots[op.page]
        if op.kind == "mmap":
            if vr is not None:
                return  # slot occupied: PC-advance skip
            new = yield from sys_.mmap(task, core, PAGE_SIZE)
            self.slots[op.page] = new
            yield from sys_.write_with_content(task, core, new.start, f"op{op.idx}")
            return
        if vr is None:
            return  # slot torn down before this op ran: skip
        if op.kind == "touch_w":
            yield from sys_.write_with_content(task, core, vr.start, f"op{op.idx}")
        elif op.kind == "touch_r":
            yield from sys_.touch_pages(task, core, vr, write=False)
        elif op.kind == "munmap":
            self.slots[op.page] = None
            yield from sys_.munmap(task, core, vr)
        elif op.kind == "madvise":
            yield from sys_.madvise_dontneed(task, core, vr)
        elif op.kind == "migrate":
            yield from self._post_hints(op, core, task, vr)
        else:  # pragma: no cover - generate_program only emits known kinds
            raise RuntimeError(f"unknown op kind {op.kind}")

    def _post_hints(self, op: McOp, core, task, vr: VirtRange) -> Generator:
        """The task_numa_work scanner side for one slot (posts MIGRATION
        states under LATR, applies hints synchronously elsewhere)."""
        kernel = self.kernel
        mm = task.mm
        yield mm.mmap_sem.acquire()
        try:
            vpns = [v for v in vr.vpns() if kernel.autonuma._samplable(mm, v)]
            if not vpns:
                return

            def apply_change(mm=mm, vpns=tuple(vpns)) -> None:
                for vpn in vpns:
                    pte = mm.page_table.walk(vpn)
                    if pte is not None and pte.present:
                        mm.page_table.update_pte(vpn, pte.make_numa_hint())

            yield from kernel.coherence.migration_unmap(core, mm, vr, apply_change)
        finally:
            mm.mmap_sem.release()

    def _drain(self) -> None:
        executed = self.sim.run(max_events=DRAIN_CAP)
        if executed >= DRAIN_CAP:
            self.errors.append(
                f"drain executed {executed} events without quiescing (runaway)"
            )
        for core in list(self.in_flight):
            _op, proc = self.in_flight[core]
            if not proc.alive:
                del self.in_flight[core]

    # -------------------------------------------------------------- findings

    def findings(self) -> List[str]:
        """Safety findings accumulated so far (monitor + harness errors)."""
        return [str(v) for v in self.monitor.violations] + list(self.errors)

    def pending_lazy(self) -> int:
        if not self.is_latr:
            return 0
        return self.coherence.pending_lazy_operations()

    def program_complete(self) -> bool:
        return not self.in_flight and all(
            self.pc[c] >= len(self.core_ops[c]) for c in range(self.scope.cores)
        )

    def quiescent_findings(self) -> List[str]:
        before = len(self.monitor.violations)
        self.monitor.check_quiescent()
        return [str(v) for v in self.monitor.violations[before:]]

    # ------------------------------------------------------------ state hash

    def state_hash(self, include_derived: Optional[bool] = None) -> str:
        """Canonical hash of the functional machine state (see module
        docstring for what is included/excluded and why)."""
        if include_derived is None:
            include_derived = self.mutation is not None
        h = hashlib.blake2b(digest_size=16)
        for piece in self._canonical_state(include_derived):
            h.update(piece)
        return h.hexdigest()

    def _canonical_state(self, include_derived: bool) -> List[bytes]:
        # A fixed-length list of pickled fragments. Each piece is one
        # complete pickle stream (self-delimiting, so the concatenation the
        # hash sees is injective), built from sorted lists so the encoding
        # is deterministic; hashes are never persisted, so it only needs to
        # be stable within one process. Fragments guarded by a version
        # counter are cached as *bytes*: while the subsystem is untouched
        # (or a backtracking restore rewound it, versions travel with
        # content), both the canonical rebuild and the re-pickling are
        # skipped -- the model checker hashes every node, so this is its
        # hottest path.
        dumps = pickle.dumps
        mm = self.proc.mm
        pieces: List[bytes] = []
        canon_cache = self._tlb_canon
        for core in self.machine.cores:
            tlb = core.tlb
            # The fragment depends only on the resident entry set (sorted,
            # so LRU order is irrelevant), hence the entries_version key.
            version = tlb._entries_version
            cache_key = (core.id, include_derived)
            hit = canon_cache.get(cache_key)
            if hit is None or hit[0] != version:
                # canonical_rows() yields identical tuples from the packed
                # and legacy representations, so toggle-variant hashes agree.
                row = (core.id, tlb.canonical_rows(), tlb.canonical_huge_rows())
                if include_derived and tlb.use_index:
                    row += (
                        sorted((k, sorted(v)) for k, v in tlb._index.items()),
                    )
                hit = canon_cache[cache_key] = (version, dumps(row, 4))
            pieces.append(hit[1])

        page_table = mm.page_table
        host = mm.host_table
        pt_version = (
            page_table._version,
            -1 if host is None else host._version,
        )
        cached_pt = self._pt_canon
        if cached_pt is None or cached_pt[0] != pt_version:
            rows = sorted(
                (vpn, pte.pfn, int(pte.flags), pte.swap_slot)
                for vpn, pte in page_table.all_entries()
            )
            replicas = getattr(page_table, "_replicas", None)
            if replicas:
                # numaPTE: replicas are functional state (walks descend
                # them), so fold each one in -- a stale replica (the
                # broken_replica mutation) desyncs the hash. The facade
                # version covers replica contents and pending counts, so
                # the version-keyed cache stays sound.
                frag: object = (
                    rows,
                    sorted(
                        (node, vpn, pte.pfn, int(pte.flags), pte.swap_slot)
                        for node, replica in replicas.items()
                        for vpn, pte in replica.all_entries()
                    ),
                    sorted(page_table._pending_updates.items()),
                )
            else:
                frag = rows
            if host is not None:
                # Two-level translation: host (EPT) rows are functional
                # state (guest 2D walks compose through them), so fold
                # them in -- a stale host entry (the broken_ept_shootdown
                # mutation) desyncs the hash. The host table mints its own
                # version (it reuses PageTable storage), and every aux-dict
                # mutation co-occurs with a set_pte/clear_pte bump, so the
                # two-version cache key stays sound.
                frag = (
                    frag,
                    sorted(
                        (gfn, pte.pfn, int(pte.flags))
                        for gfn, pte in host.all_entries()
                    ),
                    sorted(host.generation_of_gfn.items()),
                    host.next_gfn,
                )
            cached_pt = self._pt_canon = (pt_version, dumps(frag, 4))
        pieces.append(cached_pt[1])
        vmas = sorted(
            (v.range.start, v.range.end, int(v.prot), v.kind.name, v.huge)
            for v in mm.vmas
        )
        mm_piece = (
            vmas,
            sorted(mm.cpumask),
            [(r.start, r.end) for r in mm.lazy_vranges],
            list(mm.lazy_frames),
            mm.map_generation,
            mm._bump,
            [(r.start, r.end) for r in mm._free_ranges],
        )

        frames = self.kernel.frames
        # Allocator fragment cached on the allocator's version (same
        # contract as the TLB fragments); page_contents is kernel-owned
        # state with no version, so it stays outside the cached part.
        frames_version = frames._version
        cached_alloc = self._frames_canon
        if cached_alloc is None or cached_alloc[0] != frames_version:
            cached_alloc = self._frames_canon = (
                frames_version,
                dumps((
                    # Each free list's exact state (watermark segments +
                    # tail) without materializing the lazy ranges per hash.
                    [q.state() for q in frames._free],
                    sorted(frames._refcount.items()),
                    sorted(frames._generation.items()),
                ), 4),
            )
        pieces.append(cached_alloc[1])

        # The remaining fragments are never cache-hits (something among
        # them changes on essentially every action), so they share one
        # pickle stream instead of paying per-fragment pickler setup; the
        # enclosing tuple keeps the encoding injective, and the constant
        # ``()`` placeholder for non-LATR mechanisms keeps the hash domain
        # identical across variants.
        pieces.append(dumps((
            mm_piece,
            sorted(self.kernel.page_contents.items()),
            self._canonical_latr(include_derived) if self.is_latr else (),
            list(self.pc),
            [op.key for (op, _proc) in self.in_flight.values()],
            [s if s is None else (s.start, s.end) for s in self.slots],
        ), 4))
        return pieces

    def _canonical_latr(self, include_derived: bool):
        co = self.coherence
        sorted_queues = self._latr_queues
        if sorted_queues is None:
            # The queue set is fixed at boot; sort it once per executor.
            sorted_queues = self._latr_queues = [
                (core_id, co.queues[core_id]) for core_id in sorted(co.queues)
            ]
        # Normalize the process-global LatrState.seq to per-system posting
        # rank: raw seqs differ between otherwise-identical replays.
        live = [
            s
            for _cid, q in sorted_queues
            for s in q._slots
            if s is not None
        ]
        if (
            not live
            and not co._pending_reclaim
            # A stale non-empty derived cache (the active_cache_stale
            # mutation) must still reach the slow path so the desync shows
            # up in the hash.
            and (not include_derived or not co._active_states_sorted)
        ):
            # All slots empty (the common state between munmap bursts): the
            # per-slot walk collapses to cursors and depths. The encoding
            # (an int instead of a slot tuple) cannot collide with the
            # populated form, and both legs share this code.
            queues = [
                (core_id, q._cursor, len(q._slots)) for core_id, q in sorted_queues
            ]
            out = (tuple(queues), ())
            if include_derived:
                out += (
                    tuple((c, 0) for c, _cur in sorted(co._sweep_cursor.items())),
                    None if co._active_states_sorted is None else (),
                )
            return out
        rank = {s.seq: i for i, s in enumerate(sorted(live, key=lambda s: s.seq))}
        flag_names = _FLAG_NAMES
        queues = []
        for core_id, queue in sorted_queues:
            rows = []
            for s in queue._slots:
                if s is None:
                    rows.append(None)
                    continue
                vrange = s.vrange
                to_free = s.vrange_to_free
                flag = s.flag
                name = flag_names.get(flag)
                if name is None:
                    # Enum .name is a slow descriptor; memoize per member.
                    name = flag_names[flag] = flag.name
                rows.append((
                    s.slot_idx,
                    rank[s.seq],
                    name,
                    s.active,
                    tuple(sorted(s.cpu_bitmask)),
                    (vrange.start, vrange.end),
                    tuple(s.pfns),
                    None if to_free is None else (to_free.start, to_free.end),
                    s.pte_applied,
                    s.reclaimed,
                ))
            queues.append((core_id, queue._cursor, tuple(rows)))
        pending = tuple(
            (s.queue.core_id if s.queue is not None else -1, s.slot_idx)
            for s in co._pending_reclaim
        )
        out = (tuple(queues), pending)
        if include_derived:
            cursors = tuple(
                (c, sum(1 for s in live if s.seq <= cur))
                for c, cur in sorted(co._sweep_cursor.items())
            )
            cache = co._active_states_sorted
            cache_key = (
                None
                if cache is None
                else tuple(
                    (s.queue.core_id if s.queue is not None else -1, s.slot_idx)
                    for s in cache
                )
            )
            out += (cursors, cache_key)
        return out

    # ------------------------------------------------------------- snapshots

    def fork(self):
        """Capture a restorable snapshot of this executor's whole world
        (engine + kernel + checker bookkeeping). Only legal with no op in
        flight: a blocked op is a suspended generator, which cannot be
        captured (see :mod:`repro.snapshot`)."""
        if self.in_flight:
            raise SnapshotError("cannot fork with ops in flight")
        return (
            snapshot_kernel(self.kernel),
            list(self.pc),
            list(self.slots),
            list(self.errors),
        )

    def restore(self, snap) -> None:
        """Rewind to a :meth:`fork` snapshot, in place (O(state), not
        O(trace): no replay is involved)."""
        # Close abandoned in-flight ops *before* rewinding, while the world
        # they hold locks in is still consistent: their ``finally`` clauses
        # (cpu-lock / mmap_sem release) must run against the state they
        # actually mutated, not the restored one. Everything they touch on
        # the way out is overwritten by the restore below.
        if self.in_flight:
            for _op, proc in list(self.in_flight.values()):
                proc.interrupt()
            self.in_flight.clear()
        kernel_snap, pc, slots, errors = snap
        restore_kernel(self.kernel, kernel_snap)
        self.pc[:] = pc
        self.slots[:] = slots
        self.errors[:] = errors

    def mech_snapshot(self, racy_pages: frozenset = frozenset()) -> Dict[str, object]:
        """Mechanism-comparable end state, normalized further than the
        fuzzer's snapshot: NUMA node and the hint/present distinction are
        dropped, because at small scope both legitimately depend on when a
        deferred hint PTE lands relative to the next touch -- which is the
        schedule freedom under test, not a bug. What must agree: which
        pages are mapped, their content tags, their writability, and the
        global allocation/lazy accounting.

        ``racy_pages`` (see :func:`racy_free_pages`) names slots whose end
        state is legitimately mechanism-dependent: a cross-core touch in a
        free operation's staleness window lands on the doomed frame under
        lazy coherence but refaults under an eager one. Those slots' rows
        are masked and the frames backing them discounted, identically on
        every leg, so equal states stay equal and only the genuinely racy
        check is dropped."""
        mm = self.proc.mm
        rows = []
        discount = 0
        for page, slot in enumerate(self.slots):
            if page in racy_pages:
                rows.append("racy")
                if slot is not None:
                    discount += sum(
                        1
                        for vpn in slot.vpns()
                        for pte in [mm.page_table.walk(vpn)]
                        if pte is not None and pte.present
                    )
                continue
            if slot is None:
                rows.append("unmapped")
                continue
            pages = []
            for vpn in slot.vpns():
                pte = mm.page_table.walk(vpn)
                if pte is None:
                    pages.append("absent")
                elif pte.swapped:
                    pages.append("swapped")
                else:
                    tag = self.kernel.page_contents.get(pte.pfn, "")
                    rw = "w" if pte.writable else "r"
                    pages.append(f"mapped:{rw}:{tag}")
            rows.append(tuple(pages))
        return {
            "slots": tuple(rows),
            "frames_allocated": self.kernel.frames.allocated_count() - discount,
            "lazy_frames": len(mm.lazy_frames),
            "lazy_vranges": len(mm.lazy_vranges),
            "vmas": len(mm.vmas),
        }


def diff_mech_snapshots(base: Dict[str, object], other: Dict[str, object]) -> List[str]:
    """Human-readable differences between normalized snapshots."""
    return [
        f"{key}: baseline={base[key]} other={other.get(key)}"
        for key in base
        if base[key] != other.get(key)
    ]


def racy_free_pages(op_keys) -> frozenset:
    """Page slots whose end state legitimately differs between lazy and
    synchronous coherence on this op sequence.

    After ``madvise`` returns on the initiating core, every *other* core
    may still hold a TLB entry for the slot until its next sweep -- the
    paper's bounded staleness window. A touch from such a core legally
    lands on the doomed frame: the write is lost at reclamation and the
    slot ends unmapped. An eager mechanism invalidated remote TLBs inside
    the madvise, so the identical touch refaults and the slot ends mapped
    with the written content. Both outcomes are correct; comparing them
    is the one check the differential oracle must drop (the initiator's
    own later touches always refault -- its local entry died inside the
    free op -- so same-core sequences stay fully checked). ``mmap`` ends
    a slot's window: the fresh range has never been in any TLB.
    ``munmap`` needs no entry here: it tears the slot down, and later
    touches skip. The set is a pure function of the program-op projection,
    so the primary and every replayed mechanism leg mask identically --
    over-approximating (a sweep may have closed the window before the
    touch) only drops a comparison, never invents a divergence."""
    initiator: Dict[int, str] = {}
    racy = set()
    for key in op_keys:
        _op, core, _idx, kind, page = key.split(":")
        slot = int(page[1:])
        if kind == "madvise":
            initiator[slot] = core
        elif kind == "mmap":
            initiator.pop(slot, None)
        elif kind in ("touch_w", "touch_r") and initiator.get(slot, core) != core:
            racy.add(slot)
    return frozenset(racy)
