"""Deterministic small-scope programs for the coherence model checker.

A program is a fixed, tiny list of memory-management operations spread
round-robin over cores and page slots. The checker does not randomize:
exhaustiveness comes from enumerating *interleavings* of a fixed program,
so the program itself must be a pure function of the scope parameters
(cores, pages, ops) -- the same scope always yields the same program, the
same action keys, and therefore the same canonical counterexamples.

The kind cycle is chosen so that every coherence-relevant transition
appears within a handful of ops: writes (TLB fills + demand allocation),
munmap (FREE states with full bitmasks), remote reads (cross-core TLB
state), madvise (FREE states that keep the VMA), migration hints
(MIGRATION states, deferred PTE application, the migration gate), and
re-mmap of a torn-down slot (virtual-range reuse racing lazy reclaim).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Operation kinds, in cycle order. ``mmap`` appears last so that short
#: programs (the common small scopes) exercise teardown races first; it
#: only enters at ``ops >= 6`` where a previously-unmapped slot can be
#: remapped while its FREE state is still cooling.
KINDS: Tuple[str, ...] = ("touch_w", "munmap", "touch_r", "madvise", "migrate", "mmap")


@dataclass(frozen=True)
class McOp:
    """One program operation, bound to a core (thread order is program
    order per core) and a page slot."""

    idx: int
    core: int
    page: int
    kind: str

    @property
    def key(self) -> str:
        """Stable action key (doubles as the scheduler's sort key)."""
        return f"op:c{self.core}:i{self.idx:02d}:{self.kind}:p{self.page}"


def generate_program(cores: int, pages: int, ops: int) -> List[McOp]:
    """The canonical program for a scope: op ``i`` runs kind
    ``KINDS[i % len(KINDS)]`` on page ``i % pages`` from core
    ``i % cores``."""
    if cores < 1 or pages < 1 or ops < 0:
        raise ValueError("scope must have >=1 core, >=1 page, >=0 ops")
    return [
        McOp(idx=i, core=i % cores, page=i % pages, kind=KINDS[i % len(KINDS)])
        for i in range(ops)
    ]


def per_core_programs(program: List[McOp], cores: int) -> List[List[McOp]]:
    """Partition by core, preserving program (=thread) order."""
    split: List[List[McOp]] = [[] for _ in range(cores)]
    for op in program:
        split[op.core].append(op)
    return split
