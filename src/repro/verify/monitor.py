"""Continuous invariant monitoring.

The quiescent-point checkers in :mod:`repro.kernel.invariants` are exactly
the wrong tool for catching a stale-TLB window: by the time the system is
quiescent, every sweep has run and the evidence is gone. The
:class:`InvariantMonitor` attaches to a kernel like the tracer does and
re-runs the safety checkers at every *dangerous instant* instead:

* after every LATR sweep and reclamation,
* after every synchronous IPI round,
* after every PTE mutation (via a :class:`~repro.mm.pagetable.PageTable`
  observer installed on each watched mm),
* after every frame free (the instant a still-cached translation becomes a
  use-after-free window).

Only *transient-safe* invariants run continuously by default: TLB/frame
safety and lazy-vrange isolation hold at every instant by construction.
Refcount accounting has legal mid-operation slack (e.g. between a child
PTE install and the ``frames.get`` during fork), so it stays a
quiescent-point check -- the fuzzer runs it once after the final drain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..kernel import invariants

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from ..mm.mmstruct import MmStruct


#: Checkers safe to run at any instant (no legal transient slack).
CONTINUOUS_CHECKS: Dict[str, Callable] = {
    "tlb_frame_safety": invariants.check_tlb_frame_safety,
    "lazy_vrange_isolation": invariants.check_lazy_vrange_isolation,
    # Replica fan-out is applied synchronously with the canonical mutation
    # (only its cost is deferred), so divergence is a bug at any instant.
    "replica_coherence": invariants.check_replica_coherence,
    # Host (EPT) entries are detached the instant their frame frees, so a
    # stale one is a bug at any instant (the virtualized twin of
    # tlb_frame_safety).
    "ept_coherence": invariants.check_ept_coherence,
}

#: Checkers valid only at quiescent points (run via :meth:`check_quiescent`).
QUIESCENT_CHECKS: Dict[str, Callable] = {
    "frame_refcounts": invariants.check_frame_refcounts,
}


class InvariantViolationError(AssertionError):
    """Raised (when ``raise_on_violation``) at the violating instant, so the
    failing stack shows exactly which operation broke the invariant."""


@dataclass(frozen=True)
class Violation:
    """One invariant breach, timestamped at the instant it was observed."""

    time_ns: int
    point: str      # hook that caught it: "latr.reclaim", "pte.clear", ...
    check: str      # which invariant: "tlb_frame_safety", ...
    message: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.time_ns} ns @ {self.point}] {self.check}: {self.message}"


class InvariantMonitor:
    """Attachable continuous checker (``InvariantMonitor.install(kernel)``).

    Attributes:
        violations: every breach observed, in time order.
        checks_run: number of notification points at which checks ran.
    """

    def __init__(
        self,
        kernel: "Kernel",
        checks: Sequence[str] = (
            "tlb_frame_safety", "lazy_vrange_isolation", "replica_coherence",
            "ept_coherence",
        ),
        max_violations: int = 50,
        raise_on_violation: bool = False,
        stride: int = 1,
    ):
        for name in checks:
            if name not in CONTINUOUS_CHECKS:
                raise ValueError(
                    f"unknown continuous check {name!r}; have {sorted(CONTINUOUS_CHECKS)}"
                )
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.kernel = kernel
        self.checks = tuple(checks)
        self.max_violations = max_violations
        self.raise_on_violation = raise_on_violation
        #: Run the checkers only every Nth notification (cost knob for long
        #: runs; 1 == every dangerous instant).
        self.stride = stride
        self.violations: List[Violation] = []
        self.checks_run = 0
        self.notifications = 0
        self._saturated = False

    # ---- wiring ---------------------------------------------------------------

    @classmethod
    def install(cls, kernel: "Kernel", **kwargs) -> "InvariantMonitor":
        """Attach to ``kernel`` (and every existing mm) like a tracer."""
        monitor = cls(kernel, **kwargs)
        kernel.invariant_monitor = monitor
        for mm in kernel.mm_registry.values():
            monitor.watch_mm(mm)
        return monitor

    def detach(self) -> None:
        if self.kernel.invariant_monitor is self:
            self.kernel.invariant_monitor = None
        for mm in self.kernel.mm_registry.values():
            if mm.page_table.observer == self._on_pte_event:
                mm.page_table.observer = None

    def watch_mm(self, mm: "MmStruct") -> None:
        """Observe every PTE mutation of ``mm`` (Kernel.create_process calls
        this automatically for mms created after install)."""
        mm.page_table.observer = self._on_pte_event

    def _on_pte_event(self, event: str, vpn: int) -> None:
        self.notify(f"pte.{event}", detail=f"vpn={vpn:#x}")

    # ---- the check point ------------------------------------------------------

    def notify(self, point: str, core: Optional[int] = None, detail: str = "") -> None:
        """A dangerous instant happened; run the continuous checkers now."""
        self.notifications += 1
        if self._saturated or (self.notifications - 1) % self.stride:
            return
        self.checks_run += 1
        for name in self.checks:
            for message in CONTINUOUS_CHECKS[name](self.kernel):
                self._record(point, name, message, detail)

    def check_quiescent(self) -> List[Violation]:
        """Run the full invariant set (quiescent-only checkers included);
        records and returns any violations found."""
        found: List[Violation] = []
        all_checks = dict(CONTINUOUS_CHECKS)
        all_checks.update(QUIESCENT_CHECKS)
        for name, check in all_checks.items():
            for message in check(self.kernel):
                found.append(self._record("quiescent", name, message, ""))
        return found

    def _record(self, point: str, check: str, message: str, detail: str) -> Violation:
        violation = Violation(
            time_ns=self.kernel.sim.now,
            point=point if not detail else f"{point} {detail}",
            check=check,
            message=message,
        )
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        else:
            self._saturated = True
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.emit("invariant", "violation", detail=f"{check}: {message}")
        if self.raise_on_violation:
            raise InvariantViolationError(str(violation))
        return violation

    @property
    def healthy(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if not self.violations:
            return f"healthy ({self.checks_run} check points, 0 violations)"
        lines = [
            f"{len(self.violations)} violation(s) over {self.checks_run} check points:"
        ]
        lines += [f"  {v}" for v in self.violations[:10]]
        if len(self.violations) > 10:
            lines.append(f"  ... (+{len(self.violations) - 10} more)")
        return "\n".join(lines)
