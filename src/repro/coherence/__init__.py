"""TLB-coherence mechanisms: Linux baseline, LATR, ABIS, Barrelfish."""

from .abis import AbisShootdown
from .barrelfish import BarrelfishShootdown
from .base import (
    LAZY_POSSIBLE,
    MECHANISM_PROPERTIES,
    OPERATION_CLASSES,
    MechanismProperties,
    OpClass,
    ShootdownReason,
    TLBCoherence,
)
from .hatric import HatricCoherence
from .hw_assisted import DidiShootdown, UnitdCoherence
from .latr import LatrCoherence
from .linux import LinuxShootdown
from .numapte import NumaPteCoherence
from .states import DEFAULT_QUEUE_DEPTH, STATE_BYTES, LatrFlag, LatrState, LatrStateQueue

MECHANISMS = {
    "linux": LinuxShootdown,
    "latr": LatrCoherence,
    "abis": AbisShootdown,
    "barrelfish": BarrelfishShootdown,
    "didi": DidiShootdown,
    "unitd": UnitdCoherence,
    "numapte": NumaPteCoherence,
    "hatric": HatricCoherence,
}


def make_mechanism(name: str, **kwargs) -> TLBCoherence:
    """Instantiate a mechanism by its experiment-table name."""
    try:
        cls = MECHANISMS[name]
    except KeyError:
        raise KeyError(f"unknown mechanism {name!r}; have {sorted(MECHANISMS)}") from None
    return cls(**kwargs)


__all__ = [
    "AbisShootdown",
    "DidiShootdown",
    "UnitdCoherence",
    "BarrelfishShootdown",
    "DEFAULT_QUEUE_DEPTH",
    "HatricCoherence",
    "LatrCoherence",
    "LatrFlag",
    "LatrState",
    "LatrStateQueue",
    "LAZY_POSSIBLE",
    "LinuxShootdown",
    "MECHANISMS",
    "MECHANISM_PROPERTIES",
    "MechanismProperties",
    "NumaPteCoherence",
    "OpClass",
    "OPERATION_CLASSES",
    "STATE_BYTES",
    "ShootdownReason",
    "TLBCoherence",
    "make_mechanism",
]
