"""Barrelfish-style message-passing shootdown (paper section 2.3, Table 2).

The multikernel replaces IPIs with per-core message channels: the initiator
posts an invalidation message into each remote core's channel (a cacheline
write), remote kernels notice it in their polling loop -- no interrupt, so
no handler entry/exit cost and no instruction-stream disruption -- and ACK
back. The initiator still *waits for every ACK*, which is exactly the
synchronous behaviour LATR removes: Table 2 scores Barrelfish as non-IPI
but not asynchronous, with remote-core involvement.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..mm.addr import VirtRange
from ..mm.frames import FrameBatch
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal
from .base import MECHANISM_PROPERTIES, ShootdownReason, TLBCoherence


class BarrelfishShootdown(TLBCoherence):
    """Synchronous message-passing shootdown."""

    name = "barrelfish"
    properties = MECHANISM_PROPERTIES["Barrelfish"]

    #: Mean delay until a remote core's polling loop notices the message.
    poll_delay_ns = 900
    #: Remote-side processing without interrupt entry: read message + INVLPG.
    remote_base_ns = 180

    def _message_round(
        self, core, mm: MmStruct, vrange: VirtRange, targets: List
    ) -> Generator:
        if not targets:
            yield from core.execute(0)
            return
        lat = self._lat
        machine = self.kernel.machine
        spec = machine.spec
        sim = self.kernel.sim
        all_acked = Signal(sim)
        remaining = [len(targets)]

        send_occupancy = 0
        for target in targets:
            hops = machine.topology.core_hops(core.id, target.id)
            send_occupancy += lat.cacheline(hops)
            notice_at = sim.now + send_occupancy + lat.cacheline(hops) + self.poll_delay_ns
            if vrange.n_pages > spec.full_flush_threshold:
                remote_cost = self.remote_base_ns + lat.tlb_full_flush_ns
            else:
                remote_cost = self.remote_base_ns + vrange.n_pages * lat.tlb_invlpg_ns
            sim.at(
                notice_at,
                self._remote_handle,
                core,
                target,
                mm,
                vrange,
                remote_cost,
                hops,
                remaining,
                all_acked,
            )
            self._stats.counter("barrelfish.messages").add()
        yield from core.execute(send_occupancy)
        yield all_acked

    def _remote_handle(
        self, initiator, target, mm, vrange, remote_cost, hops, remaining, all_acked
    ) -> None:
        spec = self.kernel.machine.spec
        if vrange.n_pages > spec.full_flush_threshold:
            target.tlb.flush(mm.pcid)
        else:
            target.tlb.invalidate_range(mm.pcid, vrange.vpn_start, vrange.vpn_end)
        # Polling work still displaces the remote task, but without the
        # interrupt entry/exit or its cache pollution.
        target.steal_time(remote_cost)
        ack_at = self.kernel.sim.now + remote_cost + self._lat.cacheline(hops)
        self.kernel.sim.at(ack_at, self._ack, remaining, all_acked)

    @staticmethod
    def _ack(remaining, all_acked) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            all_acked.succeed(None)

    # ---- mechanism API ---------------------------------------------------------------

    def shootdown_free(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        start = self.kernel.sim.now
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._message_round(core, mm, vrange, targets)
        self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
        yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
        self.kernel.release_frames(pfns)
        if vrange_to_free is not None:
            mm.release_vrange(vrange_to_free)

    def shootdown_sync(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        reason: ShootdownReason,
    ) -> Generator:
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        self._stats.counter(f"shootdown.sync.{reason.value}").add()
        yield from self._message_round(core, mm, vrange, targets)

    def migration_unmap(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        apply_pte_change()
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._message_round(core, mm, vrange, targets)
        return Signal(self.kernel.sim).succeed(None)
