"""TLB-coherence mechanism interface and shared IPI machinery.

Every mechanism the paper discusses (Linux 4.10 baseline, LATR, ABIS,
Barrelfish-style message passing) plugs in behind :class:`TLBCoherence`.
The kernel's VM paths call:

* :meth:`shootdown_free` from munmap()/madvise() after PTEs are cleared,
* :meth:`shootdown_sync` from mprotect()/mremap()/CoW, which Table 1 says
  must stay synchronous under every mechanism,
* :meth:`migration_unmap` from AutoNUMA sampling (and swap/KSM/compaction),
* the scheduler hooks ``on_tick`` / ``on_context_switch`` / idle hooks.

This module also encodes the paper's Tables 1 and 2 as data so the
``tab1``/``tab2`` experiments can print them and tests can cross-check the
implementations against their claimed properties.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, List, Optional

from ..mm.addr import VirtRange
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal

if TYPE_CHECKING:  # pragma: no cover
    from ..hw.core import Core
    from ..kernel.kernel import Kernel


class OpClass(enum.Enum):
    """Paper Table 1: virtual-address operation classes."""

    FREE = "free"
    MIGRATION = "migration"
    PERMISSION = "permission"
    OWNERSHIP = "ownership"
    REMAP = "remap"


#: Table 1: which operation classes admit a lazy shootdown.
LAZY_POSSIBLE = {
    OpClass.FREE: True,
    OpClass.MIGRATION: True,
    OpClass.PERMISSION: False,
    OpClass.OWNERSHIP: False,
    OpClass.REMAP: False,
}

#: Table 1 rows: (operation, class, lazy possible).
OPERATION_CLASSES = [
    ("munmap(): unmap address range", OpClass.FREE, True),
    ("madvise(): free memory range", OpClass.FREE, True),
    ("AutoNUMA: NUMA page migration", OpClass.MIGRATION, True),
    ("Page swap: swap page to disk", OpClass.MIGRATION, True),
    ("Deduplication: share similar pages", OpClass.MIGRATION, True),
    ("Compaction: physical pages defrag.", OpClass.MIGRATION, True),
    ("mprotect(): change page permission", OpClass.PERMISSION, False),
    ("CoW: Copy on Write", OpClass.OWNERSHIP, False),
    ("mremap(): change physical address", OpClass.REMAP, False),
]


@dataclass(frozen=True)
class MechanismProperties:
    """Paper Table 2 columns."""

    asynchronous: bool
    non_ipi: bool
    no_remote_core_involvement: bool
    no_hardware_changes: bool


#: Table 2 rows (hardware-only proposals included for the table printout;
#: the software rows are cross-checked against our implementations).
MECHANISM_PROPERTIES = {
    "DiDi": MechanismProperties(False, True, True, False),
    "Oskin et al.": MechanismProperties(False, False, True, False),
    "ARM TLBI": MechanismProperties(False, True, True, False),
    "UNITD": MechanismProperties(False, True, True, False),
    "HATRIC": MechanismProperties(False, True, True, False),
    "ABIS": MechanismProperties(False, False, False, True),
    "Barrelfish": MechanismProperties(False, True, False, True),
    "Linux": MechanismProperties(False, False, False, True),
    "LATR": MechanismProperties(True, True, True, True),
}


class ShootdownReason(enum.Enum):
    """Why a synchronous shootdown was requested (stats breakdown)."""

    MPROTECT = "mprotect"
    MREMAP = "mremap"
    COW = "cow"
    FALLBACK = "latr-fallback"
    FREE = "free"
    MIGRATION = "migration"


class TLBCoherence:
    """Base class: owns target selection and the shared IPI round."""

    #: Mechanism name as used in experiment tables.
    name = "base"
    properties = MechanismProperties(False, False, False, True)
    #: Whether this policy replicates page tables per NUMA node (numaPTE).
    #: The kernel consults this when ``use_pt_replication`` is unset; only
    #: the replica-coherence policy in ``coherence/numapte.py`` opts in.
    wants_pt_replicas = False
    #: How host-level (EPT) invalidations are performed when this mechanism
    #: runs under ``use_virtualization``: ``"sync"`` kicks every vCPU with
    #: INVEPT (virtualized Linux's cost explosion), ``"snoop"`` rides the
    #: cache-coherence fabric (HATRIC), ``"lazy"`` defers like LATR's guest
    #: path. Consulted only by ``Kernel.host_invalidation_work``; with
    #: virtualization off it is never read.
    host_invalidation = "sync"

    def __init__(self):
        self.kernel: Optional["Kernel"] = None

    # ---- wiring -------------------------------------------------------------

    def attach(self, kernel: "Kernel") -> None:
        """Bind to a kernel; called once during Kernel construction."""
        self.kernel = kernel

    def start(self) -> None:
        """Spawn any background machinery (kernel.start() calls this)."""

    # ---- helpers shared by all mechanisms ------------------------------------

    @property
    def _lat(self):
        return self.kernel.machine.latency

    @property
    def _stats(self):
        return self.kernel.stats

    def select_targets(self, initiator: "Core", mm: MmStruct) -> List["Core"]:
        """Remote cores that may cache this mm's translations.

        Implements Linux's lazy-TLB idle optimization (paper section 2.3):
        idle cores are skipped and instead flagged to full-flush on wake, so
        no mechanism ever interrupts an idle core.
        """
        machine = self.kernel.machine
        targets = []
        for core_id in mm.shootdown_targets(initiator.id):
            core = machine.core(core_id)
            if core.lazy_tlb_mode:
                core.needs_flush_on_wake = True
                self._stats.counter("shootdown.idle_skipped").add()
                continue
            targets.append(core)
        return targets

    def local_invalidate(self, core: "Core", mm: MmStruct, vrange: VirtRange) -> int:
        """Invalidate the initiator's own TLB; returns the cost in ns."""
        threshold = self.kernel.machine.spec.full_flush_threshold
        if vrange.n_pages > threshold:
            core.tlb.flush(mm.pcid)
        else:
            core.tlb.invalidate_range(mm.pcid, vrange.vpn_start, vrange.vpn_end)
        return self._lat.local_invalidation(vrange.n_pages, threshold)

    def ipi_round(
        self,
        core: "Core",
        mm: MmStruct,
        vrange: VirtRange,
        targets: List["Core"],
        reason: ShootdownReason,
    ) -> Generator:
        """The classic synchronous shootdown: send IPIs, remote handlers
        invalidate, initiator spins until the last ACK (paper Figure 2a).

        Used directly by the Linux baseline, by LATR's queue-full fallback,
        and by every mechanism for the always-synchronous classes.
        """
        lat = self._lat
        spec = self.kernel.machine.spec
        stats = self._stats
        start = self.kernel.sim.now

        stats.counter(f"shootdown.sync.{reason.value}").add()
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.emit(
                "ipi", "round.start", core=core.id,
                detail=f"reason={reason.value} targets={len(targets)} pages={vrange.n_pages}",
            )
        if not targets:
            yield from core.execute(0)
            return

        handler_cost = lat.ipi_handler(vrange.n_pages, spec.full_flush_threshold)
        # Remote TLB invalidation happens in the handler; do the functional
        # part eagerly at delivery time via a per-target callback baked into
        # deliver: the interconnect only models timing, so invalidate here
        # and let timing catch up. Invalidation-before-ACK ordering is
        # preserved because nothing observes the TLB between those instants
        # except the owning core, which is busy in the handler.
        threshold = spec.full_flush_threshold
        # Handler pollution grows with the invalidation batch it processes.
        pollution = lat.interrupt_pollution_lines + 2 * min(vrange.n_pages, threshold)
        for target in targets:
            if vrange.n_pages > threshold:
                target.tlb.flush(mm.pcid)
            else:
                target.tlb.invalidate_range(mm.pcid, vrange.vpn_start, vrange.vpn_end)
            self.kernel.machine.llc.record_interrupt_pollution(pollution)

        send_occupancy, all_acked = self.kernel.machine.interconnect.multicast_ipi(
            core, targets, handler_cost
        )
        yield from core.execute(send_occupancy)
        yield all_acked  # ACK wait: the initiator spins (paper 2.1)
        stats.latency("shootdown.sync_wait").record(self.kernel.sim.now - start)
        if tracer is not None:
            tracer.emit("ipi", "round.end", core=core.id)
        if self.kernel.invariant_monitor is not None:
            self.kernel.invariant_monitor.notify("ipi.round", core=core.id)

    # ---- mechanism API (overridden) ------------------------------------------

    def shootdown_free(
        self,
        core: "Core",
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        """Free-class shootdown (munmap/madvise). PTEs are already cleared
        and the local TLB is about to be handled by the mechanism. The
        mechanism decides when ``pfns`` and ``vrange_to_free`` become
        reusable."""
        raise NotImplementedError

    def shootdown_sync(
        self,
        core: "Core",
        mm: MmStruct,
        vrange: VirtRange,
        reason: ShootdownReason,
    ) -> Generator:
        """Permission/ownership/remap-class shootdown: must be complete on
        return (Table 1 'lazy not possible' rows)."""
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        yield from self.ipi_round(core, mm, vrange, targets, reason)

    def migration_unmap(
        self,
        core: "Core",
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        """Migration-class unmap (AutoNUMA sampling, swap-out, KSM,
        compaction). ``apply_pte_change`` performs the PTE modification;
        synchronous mechanisms run it immediately, LATR defers it to the
        first sweeping core (paper section 4.3)."""
        raise NotImplementedError

    def migration_gate(self, mm: MmStruct, vpn: int) -> Optional[Signal]:
        """If a lazy migration unmap covering ``vpn`` is still in flight,
        return a signal that fires when every core has invalidated (the
        mmap_sem gating of paper section 4.4); else None."""
        return None

    # ---- scheduler hooks ------------------------------------------------------

    def on_tick(self, core: "Core") -> None:
        """Scheduler tick on ``core``."""

    def on_context_switch(self, core: "Core", old_mm: Optional[MmStruct], new_mm: Optional[MmStruct]) -> None:
        """Context switch on ``core`` between address spaces."""

    def on_tlb_fill(self, core: "Core", mm: MmStruct, vpn: int) -> int:
        """A translation was cached on ``core``; returns extra cost in ns
        (ABIS charges its access-bit tracking here)."""
        return 0

    def pending_lazy_operations(self) -> int:
        """Outstanding lazy work (0 for synchronous mechanisms); experiments
        drain this before ending a measurement window."""
        return 0
