"""Hardware-assisted comparators from the paper's Table 2 / section 2.2.

The paper argues LATR gets the benefits of hardware TLB coherence without
the hardware. To make Table 2 executable we model the two most-cited
hardware proposals:

* **DiDi** (Villavieja et al., PACT'11): a shared second-level TLB
  *directory* tracks which cores cache which PTE. A shootdown consults the
  directory and invalidates remote TLB entries through a dedicated per-core
  port, *without interrupting* the remote instruction stream. The
  initiating core still waits for the invalidations to complete -- DiDi is
  precise and cheap, but synchronous (Table 2: non-IPI, no remote
  involvement, but not asynchronous, hardware changes required).

* **UNITD** (Romanescu et al., HPCA'10): TLBs participate in the cache
  coherence protocol; a PTE store automatically invalidates remote TLB
  entries, so there is no software shootdown at all -- but each PTE write
  becomes a coherence broadcast and every TLB needs a reverse-translation
  CAM (the power/verification costs the paper cites).

Both let experiments ask "how close does LATR get to hardware?" -- the
ablation `mech-compare` runs all six mechanisms on the same microbenchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from ..mm.addr import VirtRange
from ..mm.frames import FrameBatch
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal
from .base import MechanismProperties, ShootdownReason, TLBCoherence


class DidiShootdown(TLBCoherence):
    """Shared second-level TLB directory with remote-invalidation ports."""

    name = "didi"
    properties = MechanismProperties(
        asynchronous=False,
        non_ipi=True,
        no_remote_core_involvement=True,
        no_hardware_changes=False,
    )

    #: Directory lookup (per page): an LLC-adjacent SRAM access.
    directory_lookup_ns = 45
    #: Remote invalidation through the dedicated port, per core, by hops
    #: (a directed coherence message, no interrupt entry).
    invalidate_port_ns = (110, 260, 420)

    def __init__(self):
        super().__init__()
        #: The directory: (mm_id, vpn) -> cores caching the translation.
        self._directory: Dict[Tuple[int, int], Set[int]] = {}

    def on_tlb_fill(self, core, mm: MmStruct, vpn: int) -> int:
        self._directory.setdefault((mm.mm_id, vpn), set()).add(core.id)
        # Directory update rides the existing fill; negligible extra cost.
        return 0

    def _invalidate_via_directory(
        self, core, mm: MmStruct, vrange: VirtRange
    ) -> Generator:
        """Look up sharers, push invalidations, wait for completion."""
        topo = self.kernel.machine.topology
        lookup_cost = vrange.n_pages * self.directory_lookup_ns
        worst = 0
        invalidated = 0
        for vpn in vrange.vpns():
            sharers = self._directory.pop((mm.mm_id, vpn), set())
            for core_id in sharers:
                if core_id == core.id:
                    continue
                target = self.kernel.machine.core(core_id)
                target.tlb.invalidate_page(mm.pcid, vpn)
                hops = topo.core_hops(core.id, core_id)
                worst = max(worst, self.invalidate_port_ns[min(hops, 2)])
                invalidated += 1
        self._stats.counter("didi.remote_invalidations").add(invalidated)
        # The initiator waits for the slowest port round-trip (synchronous),
        # but no remote core executes anything.
        yield from core.execute(lookup_cost + worst)

    def shootdown_free(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        start = self.kernel.sim.now
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._invalidate_via_directory(core, mm, vrange)
        self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
        yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
        self.kernel.release_frames(pfns)
        if vrange_to_free is not None:
            mm.release_vrange(vrange_to_free)

    def shootdown_sync(
        self, core, mm: MmStruct, vrange: VirtRange, reason: ShootdownReason
    ) -> Generator:
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter(f"shootdown.sync.{reason.value}").add()
        yield from self._invalidate_via_directory(core, mm, vrange)

    def migration_unmap(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        apply_pte_change()
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._invalidate_via_directory(core, mm, vrange)
        return Signal(self.kernel.sim).succeed(None)


class UnitdCoherence(TLBCoherence):
    """Hardware TLB coherence: PTE stores invalidate remote TLBs directly."""

    name = "unitd"
    properties = MechanismProperties(
        asynchronous=False,  # coherence is instantaneous, not deferred
        non_ipi=True,
        no_remote_core_involvement=True,
        no_hardware_changes=False,
    )

    #: Each PTE store becomes a coherence broadcast probing every TLB's
    #: reverse-translation CAM (the cost the paper criticizes).
    broadcast_per_page_ns = 85
    #: CAM probe energy/latency tax on every TLB fill.
    cam_fill_tax_ns = 12

    def on_tlb_fill(self, core, mm: MmStruct, vpn: int) -> int:
        return self.cam_fill_tax_ns

    def _coherent_invalidate(self, core, mm: MmStruct, vrange: VirtRange) -> Generator:
        """The PTE writes already broadcast; invalidate remote TLBs now."""
        for other in self.kernel.machine.cores:
            if other.id == core.id:
                continue
            other.tlb.invalidate_range(mm.pcid, vrange.vpn_start, vrange.vpn_end)
        self._stats.counter("unitd.broadcasts").add(vrange.n_pages)
        yield from core.execute(vrange.n_pages * self.broadcast_per_page_ns)

    def shootdown_free(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        start = self.kernel.sim.now
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._coherent_invalidate(core, mm, vrange)
        self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
        yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
        self.kernel.release_frames(pfns)
        if vrange_to_free is not None:
            mm.release_vrange(vrange_to_free)

    def shootdown_sync(
        self, core, mm: MmStruct, vrange: VirtRange, reason: ShootdownReason
    ) -> Generator:
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter(f"shootdown.sync.{reason.value}").add()
        yield from self._coherent_invalidate(core, mm, vrange)

    def migration_unmap(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        apply_pte_change()
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._coherent_invalidate(core, mm, vrange)
        return Signal(self.kernel.sim).succeed(None)
