"""LATR: lazy translation coherence (the paper's contribution).

Free operations (section 4.2): the initiating core clears PTEs (done by the
caller), invalidates its local TLB, writes a LATR state (132 ns, Table 5)
instead of sending IPIs, and parks the freed frames/virtual range on the
mm's lazy lists. Every core sweeps all cores' state queues at each scheduler
tick or context switch (158 ns + per-entry work) and invalidates the ranges
addressed to it. A background reclamation daemon frees the parked memory two
tick intervals after posting, once the bitmask is empty.

Migration operations (section 4.3): the PTE change itself is deferred; the
*first* core that sweeps the state applies it (then invalidates), the rest
only invalidate. The migration (page fault side) is gated until the bitmask
empties (section 4.4).

Queue-full falls back to the synchronous IPI round (section 8).

The sweep hot path
------------------

The *modelled* sweep visits every core's 64-slot queue (that is what the
hardware-free design costs, and the ns cost model charges exactly that), but
simulating it naively makes the simulator's inner loop O(cores^2 x
queue_depth) per simulated millisecond -- on the 8-socket/120-core box the
empty sweep dominates wall-clock. Like numaPTE's observation that tracking
*where* translations live turns broadcast work into targeted work, the
simulator keeps an **active-state index**:

* a global count of active states -- the empty sweep (the common case)
  returns the base cost in O(1);
* per-queue active counts (maintained by ``LatrStateQueue.post`` and the
  notifying ``LatrState.active`` property) -- sweeps skip empty queues;
* a per-core "last swept seq" cursor -- a repeat sweep never re-examines a
  state it already cleared itself from, because a state posted before this
  core's previous sweep can no longer carry this core's bitmask bit (the
  bitmask only shrinks and ``active`` is monotone).

The index changes *no modelled result*: every ns cost, counter, latency and
experiment row is bit-for-bit identical to the full scan (gated by the
differential fuzzer and ``tests/test_sweep_index.py``). Construct with
``use_sweep_index=False`` to force the original full scan -- the benchmark
harness uses that as its pre-index wall-clock baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from ..mm.addr import PAGE_SHIFT, VirtRange
from ..mm.frames import FrameBatch
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal, Timeout
from .base import MECHANISM_PROPERTIES, ShootdownReason, TLBCoherence
from .states import (
    DEFAULT_QUEUE_DEPTH,
    SOA_ACTIVE,
    SOA_MIGRATION,
    SOA_PTE_APPLIED,
    LatrFlag,
    LatrState,
    LatrStateQueue,
    SoaLatrQueue,
    SoaLatrState,
)

#: Cacheline cost of one state record (68 B spans two 64 B lines).
STATE_LINES = 2


class LatrCoherence(TLBCoherence):
    """The lazy mechanism."""

    name = "latr"
    properties = MECHANISM_PROPERTIES["LATR"]
    #: Under virtualization the host (EPT) invalidation rides the lazy
    #: reclaim like the guest one: a state write on the critical path,
    #: the per-entry upkeep stolen off it (see Kernel.host_invalidation_work).
    host_invalidation = "lazy"

    def __init__(
        self,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        reclaim_delay_ticks: int = 2,
        sweep_on_context_switch: bool = True,
        sweep_on_tick: bool = True,
        use_sweep_index: bool = True,
        use_soa_states: bool = True,
    ):
        super().__init__()
        self.queue_depth = queue_depth
        self.reclaim_delay_ticks = reclaim_delay_ticks
        self.sweep_on_context_switch = sweep_on_context_switch
        self.sweep_on_tick = sweep_on_tick
        #: False forces the original O(cores x queue_depth) full scan; the
        #: bench harness and the equivalence tests compare both paths.
        self.use_sweep_index = use_sweep_index
        #: Escape hatch for the struct-of-arrays queue representation:
        #: False rebuilds the original one-dataclass-per-state model. The
        #: two representations are bit-identical in every modelled result
        #: (stats, canonical hashes); only the simulator's wall-clock differs.
        self.use_soa_states = use_soa_states
        self._state_cls = SoaLatrState if use_soa_states else LatrState
        self.queues: Dict[int, LatrStateQueue] = {}
        #: Extra per-sweep cost for cache-thrashing applications whose state
        #: queue lines never stay resident (workload profiles set this; the
        #: paper's canneal overhead comes from exactly this effect).
        self.cold_sweep_extra_ns = 0
        #: FREE states awaiting reclamation, in posting order.
        self._pending_reclaim: List[LatrState] = []
        #: Active MIGRATION states indexed for the fault-path gate.
        self._migration_states: List[LatrState] = []
        self._reclaimd_started = False
        # --- the active-state index ---
        #: Posted states whose bitmask is non-empty, across all queues.
        self._active_state_count = 0
        #: Highest seq ever posted (cursor watermark for sweeps).
        self._last_posted_seq = 0
        #: core id -> last posted seq observed at that core's previous sweep.
        self._sweep_cursor: Dict[int, int] = {}
        #: Core ids whose queues currently hold active states; sweeps visit
        #: only these (in core-id order, matching the full scan's order).
        self._active_queue_ids: set = set()
        #: Snapshot of every posted active state in full-scan visit order
        #: -- (core id, slot index) -- or None when stale. Membership only
        #: changes on a post or a final deactivation, which happen orders
        #: of magnitude less often than the per-tick sweeps that read it.
        self._active_states_sorted: Optional[List[LatrState]] = None
        #: SoA sweep row cache: (seq, owner socket, queue, slot, state)
        #: tuples for ``_active_states_sorted``, keyed on that list's
        #: *identity* (every invalidation path -- post, deactivate,
        #: snapshot restore -- installs a fresh list object).
        self._soa_sweep_rows: Optional[list] = None
        self._soa_rows_src: Optional[list] = None

    # ---- wiring ---------------------------------------------------------------

    def attach(self, kernel) -> None:
        super().attach(kernel)
        queue_cls = SoaLatrQueue if self.use_soa_states else LatrStateQueue
        self.queues = {
            core.id: queue_cls(core.id, self.queue_depth)
            for core in kernel.machine.cores
        }
        for queue in self.queues.values():
            queue.index = self
        self._active_state_count = 0
        self._last_posted_seq = 0
        self._sweep_cursor = {}
        self._active_queue_ids = set()
        self._active_states_sorted = None
        # The sweep fires on every tick and context switch: resolve its
        # stats objects and timing constants once instead of going through
        # the registry / the machine attribute chain each time.
        stats = self._stats
        self._sweeps_counter = stats.counter("latr.sweeps")
        self._examined_counter = stats.counter("latr.entries_examined")
        self._invalidated_counter = stats.counter("latr.entries_invalidated")
        self._sweep_latency = stats.latency("latr.sweep")
        machine = kernel.machine
        self._sim = kernel.sim
        self._topo = machine.topology
        self._llc = machine.llc
        self._full_flush_threshold = machine.spec.full_flush_threshold
        lat = machine.latency
        self._sweep_base_ns = lat.latr_sweep_base_ns
        self._sweep_per_entry_ns = lat.latr_sweep_per_entry_ns
        self._invlpg_ns = lat.tlb_invlpg_ns
        self._full_flush_ns = lat.tlb_full_flush_ns
        self._state_pull = lat.latr_state_pull
        self._core_hops = machine.topology.core_hops
        self._record_state_traffic = machine.llc.record_state_traffic
        # SoA sweep fast-path tables: the topology's socket map / hop rows
        # and the pull cost per (clamped) hop count, so the per-state loop
        # does plain list indexing instead of bound-method calls.
        topo = machine.topology
        self._socket_of = topo._socket_of
        self._hop_rows = topo._hops
        self._pull_ns_by_hops = tuple(lat.latr_state_pull(h) for h in range(3))
        self._soa_sweep_rows = None
        self._soa_rows_src = None

    def start(self) -> None:
        """Spawn the background reclamation daemon (kernel.start calls this)."""
        if not self._reclaimd_started:
            self._reclaimd_started = True
            # One reusable periodic handle instead of a Timeout per tick.
            self.kernel.sim.every(self._reclaim_period_ns(), self._reclaim_round)

    # ---- the active-state index (queue callbacks) -------------------------------

    def note_posted(self, queue: LatrStateQueue, state: LatrState) -> None:
        """A queue accepted an active state (called by ``LatrStateQueue.post``)."""
        self._active_state_count += 1
        self._active_queue_ids.add(queue.core_id)
        self._active_states_sorted = None
        if state.seq > self._last_posted_seq:
            self._last_posted_seq = state.seq

    def note_deactivated(self, queue: LatrStateQueue, state: LatrState) -> None:
        """A posted state went inactive (via the ``LatrState.active`` setter)."""
        if self._active_state_count > 0:
            self._active_state_count -= 1
        if queue.active_count == 0:
            self._active_queue_ids.discard(queue.core_id)
        self._active_states_sorted = None

    def active_state_count(self) -> int:
        """Posted, still-active states across all queues (index invariant:
        equals what a full scan of every queue would count)."""
        return self._active_state_count

    # ---- free operations (4.2) --------------------------------------------------

    def shootdown_free(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        start = self.kernel.sim.now
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        if not targets:
            # No remote core can cache these translations; the local TLB is
            # already clean, so immediate reuse is safe (same as Linux's
            # no-IPI path). Still one initiated free-class shootdown, so the
            # counters stay comparable across mechanisms.
            self._stats.counter("shootdown.initiated").add()
            self._stats.rate("shootdowns").hit()
            yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
            self.kernel.release_frames(pfns)
            if vrange_to_free is not None:
                mm.release_vrange(vrange_to_free)
            self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
            return

        if self.use_soa_states:
            bitmask = 0
            for t in targets:
                bitmask |= 1 << t.id
        else:
            bitmask = {t.id for t in targets}
        state = self._state_cls(
            vrange=vrange,
            mm=mm,
            cpu_bitmask=bitmask,
            flag=LatrFlag.FREE,
            owner_core=core.id,
            posted_at=self.kernel.sim.now,
            done=Signal(self.kernel.sim),
            pfns=pfns,
            vrange_to_free=vrange_to_free,
        )
        if not self.queues[core.id].post(state):
            # Queue full: fall back to the synchronous IPI mechanism
            # (paper section 8) and complete like Linux would.
            self._stats.counter("latr.fallback_ipi").add()
            self._stats.counter("shootdown.initiated").add()
            self._stats.rate("shootdowns").hit()
            yield from self.ipi_round(core, mm, vrange, targets, ShootdownReason.FALLBACK)
            yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
            self.kernel.release_frames(pfns)
            if vrange_to_free is not None:
                mm.release_vrange(vrange_to_free)
            self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
            return

        # The lazy path: one state write, then return to the application.
        yield from core.execute(self._lat.latr_state_write_ns)
        if self.kernel.tracer is not None:
            self.kernel.tracer.emit(
                "latr", "state.post", core=core.id,
                detail=f"pages={vrange.n_pages} targets={len(targets)}",
            )
        mm.defer_frames(state.pfns)
        if vrange_to_free is not None:
            mm.defer_vrange(vrange_to_free)
        self._pending_reclaim.append(state)
        self.kernel.machine.llc.record_state_traffic(STATE_LINES)
        self._stats.counter("latr.states_posted").add()
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
        self._stats.latency("latr.state_write").record(self._lat.latr_state_write_ns)

    # ---- migration operations (4.3) ----------------------------------------------

    def migration_unmap(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        targets = self.select_targets(core, mm)
        if self.use_soa_states:
            bitmask = 0
            for t in targets:
                bitmask |= 1 << t.id
            # The initiator participates too: its own TLB is invalidated at
            # its next tick, after the first sweeper applied the PTE change
            # (paper Figure 3b includes both cores in the bitmask).
            if not core.lazy_tlb_mode:
                bitmask |= 1 << core.id
        else:
            bitmask = {t.id for t in targets}
            if not core.lazy_tlb_mode:
                bitmask.add(core.id)
        state = self._state_cls(
            vrange=vrange,
            mm=mm,
            cpu_bitmask=bitmask,
            flag=LatrFlag.MIGRATION,
            owner_core=core.id,
            posted_at=self.kernel.sim.now,
            done=Signal(self.kernel.sim),
            apply_pte_change=apply_pte_change,
            # Migration states pin no memory: their queue slot is reusable
            # as soon as every core has invalidated (no reclaim step).
            reclaimed=True,
        )
        if not bitmask:
            # Nothing can cache the translation: apply immediately. Still an
            # initiated migration-class shootdown (counter comparability).
            self._stats.counter("shootdown.initiated").add()
            self._stats.rate("shootdowns").hit()
            apply_pte_change()
            state.pte_applied = True
            state.active = False
            state.done.succeed(state)
            yield from core.execute(0)
            return state.done
        if not self.queues[core.id].post(state):
            # Queue full: synchronous fallback (paper section 8). This is
            # still a shootdown -- record the same counters/rates as every
            # other path so fallback rounds show up in experiments, and
            # complete the state's own ``done`` signal so gating callers
            # (swap finisher, migration gate) observe the completion.
            self._stats.counter("latr.fallback_ipi").add()
            self._stats.counter("shootdown.initiated").add()
            self._stats.rate("shootdowns").hit()
            apply_pte_change()
            state.pte_applied = True
            yield from core.execute(self.local_invalidate(core, mm, vrange))
            yield from self.ipi_round(core, mm, vrange, targets, ShootdownReason.FALLBACK)
            state.cpu_bitmask.clear()
            state.completed_at = self.kernel.sim.now
            state.active = False
            state.done.succeed(state)
            self._stats.latency("shootdown.migration").record(
                self.kernel.sim.now - state.posted_at
            )
            return state.done
        yield from core.execute(self._lat.latr_state_write_ns)
        self._migration_states.append(state)
        # Lazily-completed migrations record their latency when the last
        # sweeper empties the bitmask (clear_cpu fires ``done``) -- the lazy
        # path, not just the queue-full fallback above.
        state.done.add_callback(self._record_lazy_migration_latency)
        self.kernel.machine.llc.record_state_traffic(STATE_LINES)
        self._stats.counter("latr.states_posted").add()
        self._stats.counter("latr.migration_states").add()
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        return state.done

    def _record_lazy_migration_latency(self, sig: Signal) -> None:
        state = sig.value
        completed_at = state.completed_at
        if completed_at is None:  # defensive: interrupted signal
            completed_at = self.kernel.sim.now
        self._stats.latency("shootdown.migration").record(
            completed_at - state.posted_at
        )

    def migration_gate(self, mm: MmStruct, vpn: int) -> Optional[Signal]:
        for state in self._migration_states:
            if state.active and state.mm is mm and state.vrange.vpn_start <= vpn < state.vrange.vpn_end:
                return state.done
        return None

    # ---- the sweep (4.1) -----------------------------------------------------------

    def sweep(self, core) -> int:
        """Sweep all cores' queues from ``core``; returns the cost in ns.

        Cost model is Table 5's 158 ns base (the states are contiguous and
        prefetched) plus per-active-entry examination, a cacheline pull the
        first time this core reads a state written on another socket, and
        the local invalidation work for matching entries. The indexed and
        full implementations charge identical costs; only the simulator's
        own wall-clock differs.
        """
        if self.use_sweep_index:
            if self.use_soa_states:
                return self._sweep_indexed_soa(core)
            return self._sweep_indexed(core)
        return self._sweep_full(core)

    def _sweep_indexed(self, core) -> int:
        cost = self._sweep_base_ns + self.cold_sweep_extra_ns
        examined = self._active_state_count
        if examined == 0:
            # Empty-sweep fast path: the modelled sweep walked every slot
            # and found nothing, which costs exactly the base; the simulator
            # gets there in O(1). (_finish_sweep specialised for the
            # nothing-matched case -- the majority of all sweeps.)
            self._sweeps_counter.value += 1
            self._sweep_latency.record(cost)
            kernel = self.kernel
            if kernel.invariant_monitor is not None:
                kernel.invariant_monitor.notify("latr.sweep", core=core.id)
            return cost

        cost += examined * self._sweep_per_entry_ns
        topo = self._topo
        cursor = self._sweep_cursor.get(core.id, 0)
        matching: List[LatrState] = []
        total_pages = 0
        # Only states posted after this core's previous sweep, visited in
        # full-scan order (core id, then slot): older still-active states
        # were already examined then -- their cross-socket pull is paid
        # (pulled_by) and their bitmask can no longer contain this core.
        # _pull_cost is inlined (bound methods cached at attach): this loop
        # runs on every tick of every core.
        core_id = core.id
        core_hops = self._core_hops
        states = self._active_states_sorted
        if states is None:
            queues = self.queues
            states = [
                state
                for queue_id in sorted(self._active_queue_ids)
                for state in queues[queue_id].active_states_after(-1)
            ]
            self._active_states_sorted = states
        for state in states:
            if state.seq <= cursor:
                continue
            hops = core_hops(core_id, state.owner_core)
            if hops > 0 and core_id not in state.pulled_by:
                state.pulled_by.add(core_id)
                self._record_state_traffic(STATE_LINES)
                cost += self._state_pull(hops)
            if core_id not in state.cpu_bitmask:
                continue
            cost += self._apply_deferred_migration(state)
            matching.append(state)
            vrange = state.vrange
            # vrange.n_pages, without the property call (hot loop).
            total_pages += (vrange.end - vrange.start) >> PAGE_SHIFT
        self._sweep_cursor[core.id] = self._last_posted_seq
        return self._finish_sweep(core, matching, total_pages, cost, examined)

    def _sweep_indexed_soa(self, core) -> int:
        """The indexed sweep over the struct-of-arrays queues: identical
        visit order, costs and counters to :meth:`_sweep_indexed`, but the
        per-state checks are int-bitmask tests against the queue's parallel
        arrays, hop pull costs come from precomputed tables, and LLC state
        traffic is recorded once per sweep (the counters are pure sums, so
        one batched add of ``STATE_LINES * pulls`` equals the object
        model's per-pull adds)."""
        cost = self._sweep_base_ns + self.cold_sweep_extra_ns
        examined = self._active_state_count
        if examined == 0:
            self._sweeps_counter.value += 1
            self._sweep_latency.record(cost)
            kernel = self.kernel
            if kernel.invariant_monitor is not None:
                kernel.invariant_monitor.notify("latr.sweep", core=core.id)
            return cost

        cost += examined * self._sweep_per_entry_ns
        core_id = core.id
        cursor = self._sweep_cursor.get(core_id, 0)
        socket_of = self._socket_of
        states = self._active_states_sorted
        if states is None:
            queues = self.queues
            states = [
                state
                for queue_id in sorted(self._active_queue_ids)
                for state in queues[queue_id].active_states_after(-1)
            ]
            self._active_states_sorted = states
        # The per-state immutable fields (seq, owner socket, queue, slot)
        # flattened into tuples: rebuilt only when the active set changes,
        # then shared by every sweeping core in between.
        rows = self._soa_sweep_rows
        if self._soa_rows_src is not states:
            rows = [
                (s.seq, socket_of[s.owner_core], s.queue, s.slot_idx, s)
                for s in states
            ]
            self._soa_sweep_rows = rows
            self._soa_rows_src = states
        matching: list = []
        total_pages = 0
        core_bit = 1 << core_id
        hop_row = self._hop_rows[socket_of[core_id]]
        pull_ns = self._pull_ns_by_hops
        pte_set_ns = self._lat.pte_set_ns
        pulls = 0
        for row in rows:
            # Cursor skip on row[0] (seq) alone: states already examined at
            # this core's previous sweep are the common case.
            if row[0] <= cursor:
                continue
            queue = row[2]
            idx = row[3]
            hops = hop_row[row[1]]
            if hops:
                pulled_a = queue._pulled_a
                if not pulled_a[idx] & core_bit:
                    pulled_a[idx] |= core_bit
                    pulls += 1
                    cost += pull_ns[hops]
            if not queue._mask_a[idx] & core_bit:
                continue
            flags_a = queue._flags_a
            flags = flags_a[idx]
            if flags & SOA_MIGRATION and not flags & SOA_PTE_APPLIED:
                flags_a[idx] = flags | SOA_PTE_APPLIED
                row[4].apply_pte_change()
                cost += queue._npages_a[idx] * pte_set_ns
            matching.append(row)
            total_pages += queue._npages_a[idx]
        if pulls:
            self._record_state_traffic(STATE_LINES * pulls)
        self._sweep_cursor[core_id] = self._last_posted_seq
        return self._finish_sweep_soa(core, matching, total_pages, cost, examined)

    def _sweep_full(self, core) -> int:
        """The original scan: every queue, every slot (pre-index baseline)."""
        lat = self._lat
        topo = self.kernel.machine.topology
        cost = lat.latr_sweep_base_ns + self.cold_sweep_extra_ns
        examined = 0
        matching: List[LatrState] = []
        total_pages = 0
        for queue in self.queues.values():
            for state in queue.active_states():
                examined += 1
                cost += lat.latr_sweep_per_entry_ns
                cost += self._pull_cost(core, state, topo)
                if core.id not in state.cpu_bitmask:
                    continue
                cost += self._apply_deferred_migration(state)
                matching.append(state)
                total_pages += state.vrange.n_pages
        return self._finish_sweep(core, matching, total_pages, cost, examined)

    def _pull_cost(self, core, state: LatrState, topo) -> int:
        """Cacheline pull the first time ``core`` reads a remote-socket state."""
        hops = topo.core_hops(core.id, state.owner_core)
        if hops > 0 and core.id not in state.pulled_by:
            state.pulled_by.add(core.id)
            self._llc.record_state_traffic(STATE_LINES)
            return self._lat.latr_state_pull(hops)
        return 0

    def _apply_deferred_migration(self, state: LatrState) -> int:
        """First sweeper applies the deferred PTE change ("Clear PTE" in
        Figure 3b); returns the PTE-write cost."""
        if state.flag is LatrFlag.MIGRATION and not state.pte_applied:
            state.pte_applied = True
            state.apply_pte_change()
            return state.vrange.n_pages * self._lat.pte_set_ns
        return 0

    def _finish_sweep(
        self,
        core,
        matching: List[LatrState],
        total_pages: int,
        cost: int,
        examined: int,
    ) -> int:
        """Pass 2: invalidate. Like Linux's 32-page batching rule, a sweep
        with more work than the threshold does one full flush instead of
        per-page INVLPGs (paper 4.1: "LATR flushes the entire TLB during
        state sweep")."""
        invalidated_states = len(matching)
        if invalidated_states:
            now = self._sim.now
            if total_pages > self._full_flush_threshold:
                core.tlb.flush()
                cost += self._full_flush_ns + invalidated_states * 30
                for state in matching:
                    state.clear_cpu(core.id, now)
            else:
                tlb = core.tlb
                invlpg_ns = self._invlpg_ns
                for state in matching:
                    vrange = state.vrange
                    start, end = vrange.start, vrange.end
                    tlb.invalidate_range(
                        state.mm.pcid, start >> PAGE_SHIFT, end >> PAGE_SHIFT
                    )
                    cost += ((end - start) >> PAGE_SHIFT) * invlpg_ns + 30
                    state.clear_cpu(core.id, now)

        self._sweeps_counter.value += 1
        kernel = self.kernel
        if invalidated_states:
            if kernel.tracer is not None:
                kernel.tracer.emit(
                    "latr", "sweep", core=core.id,
                    detail=f"states={invalidated_states} pages={total_pages}",
                )
            self._invalidated_counter.value += invalidated_states
        if examined:
            self._examined_counter.value += examined
        self._sweep_latency.record(cost)
        if kernel.invariant_monitor is not None:
            kernel.invariant_monitor.notify("latr.sweep", core=core.id)
        return cost

    def _finish_sweep_soa(
        self,
        core,
        matching: list,
        total_pages: int,
        cost: int,
        examined: int,
    ) -> int:
        """:meth:`_finish_sweep` over SoA sweep rows: the invalidate/clear
        pass works the queue arrays directly instead of going through the
        handle's ``clear_cpu`` property machinery. Costs, counters, and the
        deactivation protocol (completed_at before ``active``, then the
        done signal) are identical."""
        invalidated_states = len(matching)
        if invalidated_states:
            now = self._sim.now
            keep_mask = ~(1 << core.id)
            if total_pages > self._full_flush_threshold:
                core.tlb.flush()
                cost += self._full_flush_ns + invalidated_states * 30
                for _seq, _socket, queue, idx, state in matching:
                    mask = queue._mask_a[idx] & keep_mask
                    queue._mask_a[idx] = mask
                    if mask == 0 and queue._flags_a[idx] & SOA_ACTIVE:
                        state.completed_at = now
                        state.active = False
                        state.done.succeed(state)
            else:
                tlb = core.tlb
                invlpg_ns = self._invlpg_ns
                for _seq, _socket, queue, idx, state in matching:
                    vpn = queue._vpn_a[idx]
                    npages = queue._npages_a[idx]
                    tlb.invalidate_range(state.mm.pcid, vpn, vpn + npages)
                    cost += npages * invlpg_ns + 30
                    mask = queue._mask_a[idx] & keep_mask
                    queue._mask_a[idx] = mask
                    if mask == 0 and queue._flags_a[idx] & SOA_ACTIVE:
                        state.completed_at = now
                        state.active = False
                        state.done.succeed(state)
        self._sweeps_counter.value += 1
        kernel = self.kernel
        if invalidated_states:
            if kernel.tracer is not None:
                kernel.tracer.emit(
                    "latr", "sweep", core=core.id,
                    detail=f"states={invalidated_states} pages={total_pages}",
                )
            self._invalidated_counter.value += invalidated_states
        if examined:
            self._examined_counter.value += examined
        self._sweep_latency.record(cost)
        if kernel.invariant_monitor is not None:
            kernel.invariant_monitor.notify("latr.sweep", core=core.id)
        return cost

    # ---- scheduler hooks ---------------------------------------------------------

    def on_tick(self, core) -> None:
        if self.sweep_on_tick:
            # Inlined sweep() dispatch and steal_time (a bare increment):
            # this is the per-tick hot path.
            if self.use_sweep_index:
                if self.use_soa_states:
                    core._pending_interrupt_ns += self._sweep_indexed_soa(core)
                else:
                    core._pending_interrupt_ns += self._sweep_indexed(core)
            else:
                core._pending_interrupt_ns += self._sweep_full(core)

    def on_context_switch(self, core, old_mm, new_mm) -> None:
        if self.sweep_on_context_switch:
            core.steal_time(self.sweep(core))

    def pending_lazy_operations(self) -> int:
        return len(self._pending_reclaim) + sum(
            1 for s in self._migration_states if s.active
        )

    # ---- reclamation daemon (4.2) ---------------------------------------------------

    def lazy_bytes_outstanding(self) -> int:
        """Physical memory currently parked on lazy lists (section 6.4)."""
        from ..mm.addr import PAGE_SIZE

        return sum(len(s.pfns) for s in self._pending_reclaim) * PAGE_SIZE

    def _reclaim_period_ns(self) -> int:
        """Reclaim-daemon polling period (mutations override this)."""
        return self.kernel.machine.spec.tick_interval_ns

    def _reclaim_round(self) -> None:
        """Periodic reclaim pass: frees lazy memory after two tick intervals.

        Ticks are unsynchronized across cores, so one interval only
        guarantees *some* cores swept; two intervals guarantee every running
        core saw a tick after the post (paper section 3). We additionally
        require the bitmask to be empty, which the tickless/idle rule makes
        equivalent (idle cores were never in the mask).
        """
        tick = self.kernel.machine.spec.tick_interval_ns
        delay = self.reclaim_delay_ticks * tick
        now = self.kernel.sim.now
        still_pending: List[LatrState] = []
        owner_costs: Dict[int, int] = {}
        for state in self._pending_reclaim:
            if state.active or now - state.posted_at < delay:
                still_pending.append(state)
                continue
            self._reclaim_state(state, owner_costs)
        self._pending_reclaim = still_pending
        self._migration_states = [s for s in self._migration_states if s.active]
        for core_id, cost in owner_costs.items():
            self.kernel.machine.core(core_id).steal_time(cost)

    def _reclaim_state(self, state: LatrState, owner_costs: Dict[int, int]) -> None:
        lat = self._lat
        mm = state.mm
        mm.take_lazy_frames(state.pfns)
        self.kernel.release_frames(state.pfns)
        if state.vrange_to_free is not None:
            mm.reclaim_vrange(state.vrange_to_free)
        state.reclaimed = True
        self._stats.counter("latr.states_reclaimed").add()
        if self.kernel.tracer is not None:
            self.kernel.tracer.emit(
                "latr", "reclaim", core=state.owner_core,
                detail=f"frames={len(state.pfns)} age_ns={self.kernel.sim.now - state.posted_at}",
            )
        self._stats.counter("latr.frames_reclaimed").add(len(state.pfns))
        cost = FrameBatch.units_of(state.pfns) * lat.page_free_ns + lat.vma_op_ns
        owner_costs[state.owner_core] = owner_costs.get(state.owner_core, 0) + cost
        if self.kernel.invariant_monitor is not None:
            self.kernel.invariant_monitor.notify("latr.reclaim", core=state.owner_core)
