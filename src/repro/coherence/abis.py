"""ABIS (Amit, USENIX ATC'17): access-bit-based sharer tracking.

ABIS reduces the *number* of IPIs by tracking, via page-table access bits,
the set of cores that actually cached each page's translation; shootdowns
target only those cores instead of the whole mm cpumask. It remains fully
synchronous (Table 2). Its cost is the tracking itself: extra work on every
TLB fill (access-bit management, page-table scans) and per-page sharer
lookups during the unmap -- the paper's Figure 9 shows this overhead making
ABIS *slower* than Linux below eight cores, then faster beyond as the saved
IPIs dominate.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from ..mm.addr import VirtRange
from ..mm.frames import FrameBatch
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal
from .base import MECHANISM_PROPERTIES, ShootdownReason, TLBCoherence


class AbisShootdown(TLBCoherence):
    """Synchronous shootdown with access-bit sharer tracking."""

    name = "abis"
    properties = MECHANISM_PROPERTIES["ABIS"]

    #: Extra cost on each TLB fill: atomic access-bit bookkeeping plus the
    #: amortized share of ABIS's periodic access-bit scans.
    track_fill_ns = 800
    #: Per-page sharer-set lookup (access-bit walk) during an unmap; runs
    #: under mmap_sem, so it eats into address-space operation throughput.
    lookup_per_page_ns = 1400

    def __init__(self):
        super().__init__()
        #: (mm_id, vpn) -> cores that cached the translation since the last
        #: shootdown of that page.
        self._sharers: Dict[Tuple[int, int], Set[int]] = {}

    # ---- tracking -----------------------------------------------------------------

    def on_tlb_fill(self, core, mm: MmStruct, vpn: int) -> int:
        self._sharers.setdefault((mm.mm_id, vpn), set()).add(core.id)
        self._stats.counter("abis.fills_tracked").add()
        return self.track_fill_ns

    def _targets_for_range(self, core, mm: MmStruct, vrange: VirtRange) -> List:
        """Actual sharers of the range, intersected with the usual rules
        (idle cores skipped and flagged, initiator excluded)."""
        sharing_ids: Set[int] = set()
        for vpn in vrange.vpns():
            owners = self._sharers.pop((mm.mm_id, vpn), None)
            if owners:
                sharing_ids |= owners
        sharing_ids.discard(core.id)
        machine = self.kernel.machine
        targets = []
        for core_id in sorted(sharing_ids & mm.cpumask):
            target = machine.core(core_id)
            if target.lazy_tlb_mode:
                target.needs_flush_on_wake = True
                continue
            targets.append(target)
        return targets

    # ---- mechanism API ---------------------------------------------------------------

    def shootdown_free(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        start = self.kernel.sim.now
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        yield from core.execute(vrange.n_pages * self.lookup_per_page_ns)
        targets = self._targets_for_range(core, mm, vrange)
        self._stats.counter("abis.ipis_saved").add(
            max(0, len(mm.shootdown_targets(core.id)) - len(targets))
        )
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self.ipi_round(core, mm, vrange, targets, ShootdownReason.FREE)
        self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
        yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
        self.kernel.release_frames(pfns)
        if vrange_to_free is not None:
            mm.release_vrange(vrange_to_free)

    def migration_unmap(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        apply_pte_change()
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        yield from core.execute(vrange.n_pages * self.lookup_per_page_ns)
        targets = self._targets_for_range(core, mm, vrange)
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self.ipi_round(core, mm, vrange, targets, ShootdownReason.MIGRATION)
        return Signal(self.kernel.sim).succeed(None)
