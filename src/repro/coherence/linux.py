"""Linux 4.10 baseline: synchronous, IPI-based TLB shootdown.

Implements the behaviour of ``native_flush_tlb_others`` plus the two
optimizations the paper credits Linux with (section 2.3):

* batched invalidation -- one IPI round covers the whole unmapped range,
  with the remote handler full-flushing beyond 32 pages, and
* the lazy idle-core optimization -- handled in target selection
  (``TLBCoherence.select_targets``): idle cores are not interrupted and
  full-flush on wake.

Frames and the virtual range are released immediately after the ACKs
arrive, i.e. reuse is safe because the shootdown completed synchronously
(paper Figure 2a).
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..mm.addr import VirtRange
from ..mm.frames import FrameBatch
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal
from .base import MECHANISM_PROPERTIES, ShootdownReason, TLBCoherence


class LinuxShootdown(TLBCoherence):
    """The paper's baseline mechanism."""

    name = "linux"
    properties = MECHANISM_PROPERTIES["Linux"]

    def shootdown_free(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        start = self.kernel.sim.now
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        # Counted even when target selection leaves nobody to IPI (all-idle
        # remote cores): the *operation* initiated a shootdown, and every
        # mechanism counts the same way so mech_compare rows line up.
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self.ipi_round(core, mm, vrange, targets, ShootdownReason.FREE)
        self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
        # Synchronous completion: immediate reuse is safe. Freeing happens on
        # the munmap critical path (LATR moves exactly this work off it).
        yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
        self.kernel.release_frames(pfns)
        if vrange_to_free is not None:
            mm.release_vrange(vrange_to_free)

    def migration_unmap(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        """AutoNUMA sampling in Linux: change the PTEs *now*, then a full
        synchronous shootdown (paper Figure 3a)."""
        apply_pte_change()
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        targets = self.select_targets(core, mm)
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self.ipi_round(core, mm, vrange, targets, ShootdownReason.MIGRATION)
        # Synchronous: coherence is complete at return.
        return Signal(self.kernel.sim).succeed(None)
