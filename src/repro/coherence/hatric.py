"""HATRIC: hardware translation coherence for virtualized systems.

Yan et al. (*Hardware Translation Coherence for Virtualized Systems*,
PAPERS.md) observe that under virtualization every translation structure
-- guest TLB entries, host (EPT/NPT) entries, paging-structure caches --
must be kept coherent, and that doing it in software multiplies the
shootdown explosion: the hypervisor INVEPT-kicks every vCPU on top of the
guest's own IPI round. HATRIC instead *tags* cached translations with the
physical address of the page-table line they came from and lets the
existing cache-coherence fabric snoop them out when that line is written.

We model both halves:

* guest-level coherence becomes a directory-style precise invalidation
  (no IPIs, no interrupt entry -- like DiDi, but tag-snooped), and
* host-level invalidation rides the fabric too: the mechanism declares
  ``host_invalidation = "snoop"``, so ``Kernel.host_invalidation_work``
  charges a per-entry snoop instead of the INVEPT-per-vCPU round.

This is mechanism #8; like the other Table 2 hardware comparators it
exists so the `virt` experiment can ask how close LATR's software-only
laziness gets to dedicated coherence hardware.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from ..mm.addr import VirtRange
from ..mm.frames import FrameBatch
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal
from .base import MECHANISM_PROPERTIES, ShootdownReason, TLBCoherence


class HatricCoherence(TLBCoherence):
    """Tag-snooped translation coherence (guest and host level)."""

    name = "hatric"
    properties = MECHANISM_PROPERTIES["HATRIC"]
    #: Host (EPT) invalidations are snooped through the coherence fabric;
    #: no vCPU kicks, no VM exits (the paper's headline saving).
    host_invalidation = "snoop"

    #: Tag-directory lookup (per page): an LLC-adjacent SRAM access.
    tag_lookup_ns = 40
    #: Snooping one remote core's tagged entry out, by hops (a directed
    #: coherence message; the remote pipeline never stops).
    snoop_port_ns = (95, 230, 380)

    def __init__(self):
        super().__init__()
        #: (mm_id, vpn) -> cores holding a tagged copy of the translation.
        self._directory: Dict[Tuple[int, int], Set[int]] = {}

    def on_tlb_fill(self, core, mm: MmStruct, vpn: int) -> int:
        self._directory.setdefault((mm.mm_id, vpn), set()).add(core.id)
        # The tag rides the fill's existing cacheline; no extra cost.
        return 0

    def _snoop_invalidate(self, core, mm: MmStruct, vrange: VirtRange) -> Generator:
        """Write the translation's tag line; the fabric snoops every
        tagged copy out. The initiator waits only for the slowest snoop
        round-trip -- precise, synchronous, interrupt-free."""
        topo = self.kernel.machine.topology
        lookup_cost = vrange.n_pages * self.tag_lookup_ns
        worst = 0
        snooped = 0
        for vpn in vrange.vpns():
            sharers = self._directory.pop((mm.mm_id, vpn), set())
            for core_id in sharers:
                if core_id == core.id:
                    continue
                target = self.kernel.machine.core(core_id)
                target.tlb.invalidate_page(mm.pcid, vpn)
                hops = topo.core_hops(core.id, core_id)
                worst = max(worst, self.snoop_port_ns[min(hops, 2)])
                snooped += 1
        self._stats.counter("hatric.snooped_entries").add(snooped)
        yield from core.execute(lookup_cost + worst)

    def shootdown_free(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        pfns: List[int],
        vrange_to_free: Optional[VirtRange],
    ) -> Generator:
        start = self.kernel.sim.now
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._snoop_invalidate(core, mm, vrange)
        self._stats.latency("shootdown.free").record(self.kernel.sim.now - start)
        yield from core.execute(FrameBatch.units_of(pfns) * self._lat.page_free_ns)
        self.kernel.release_frames(pfns)
        if vrange_to_free is not None:
            mm.release_vrange(vrange_to_free)

    def shootdown_sync(
        self, core, mm: MmStruct, vrange: VirtRange, reason: ShootdownReason
    ) -> Generator:
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter(f"shootdown.sync.{reason.value}").add()
        yield from self._snoop_invalidate(core, mm, vrange)

    def migration_unmap(
        self,
        core,
        mm: MmStruct,
        vrange: VirtRange,
        apply_pte_change: Callable[[], None],
    ) -> Generator:
        apply_pte_change()
        yield from core.execute(self.local_invalidate(core, mm, vrange))
        self._stats.counter("shootdown.initiated").add()
        self._stats.rate("shootdowns").hit()
        yield from self._snoop_invalidate(core, mm, vrange)
        return Signal(self.kernel.sim).succeed(None)
