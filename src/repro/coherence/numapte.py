"""numaPTE: replicated per-NUMA-node page tables (Gao et al., PAPERS.md).

A *replica-coherence* policy rather than a new shootdown protocol: TLB
invalidation behaves exactly like the Linux baseline (synchronous IPI
rounds), but the kernel keeps one page-table replica per NUMA node behind
the :class:`~repro.mm.pagetable.ReplicatedPageTable` facade, so every
hardware walk descends a *local* table. The trade the ``numapte``
experiment measures is remote-walk elimination vs. the fan-out cost of
keeping the replicas coherent:

* every PTE mutation is mirrored to each live replica (the mm layer fans
  out; the kernel charges hop-aware per-entry update cost at its existing
  PTE-work sites), and
* replicas materialize lazily, on the first hardware walk a node issues
  against the mm, so single-node processes never pay for replication.

Setting :attr:`wants_pt_replicas` is the whole policy surface: the kernel
reads it to decide table placement (``Kernel.use_pt_replication``) and the
mm layer builds the facade. AutoNUMA migrations therefore update every
replica through the same write-coordinating API instead of relying on the
shootdown alone -- the invariant monitor's ``replica_coherence`` check and
the model checker's canonical hash both observe each replica.
"""

from __future__ import annotations

from .base import MECHANISM_PROPERTIES
from .linux import LinuxShootdown


class NumaPteCoherence(LinuxShootdown):
    """Linux-style TLB shootdowns over per-node page-table replicas."""

    name = "numapte"
    # Table 2 columns match the baseline: numaPTE changes *table
    # placement*, not the shootdown protocol.
    properties = MECHANISM_PROPERTIES["Linux"]
    wants_pt_replicas = True
