"""LATR states: the per-core cyclic lock-free queues of shootdown records.

Paper section 4.1: each core owns 64 states of 68 bytes. A state holds the
virtual range, an mm identifier, the CPU bitmask of cores that still need to
invalidate, flags distinguishing free from migration operations, and an
active flag. Cores sweep *all* cores' queues at every scheduler tick or
context switch, invalidate what concerns them, clear their bitmask bit with
an atomic, and the last core deactivates the entry.

To keep the simulator's sweep sub-linear (the paper's observation that the
common sweep is the *empty* sweep), every queue maintains an
:attr:`~LatrStateQueue.active_count` and reports post/deactivation events to
an optional :attr:`~LatrStateQueue.index` (the owning
:class:`~repro.coherence.latr.LatrCoherence`). Deactivation is caught at the
``active`` attribute itself -- it is a notifying property -- so every path
that retires a state (``clear_cpu``, queue-full fallbacks, the deliberately
broken fuzzer mutations) keeps the counts exact.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Set

from ..mm.addr import VirtRange
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal

#: Paper defaults.
DEFAULT_QUEUE_DEPTH = 64
STATE_BYTES = 68

_state_seq = itertools.count(1)


class LatrFlag(enum.Enum):
    """The 'flags' field: why the shootdown happened (paper Figure 4)."""

    FREE = "free"
    MIGRATION = "migration"


@dataclass
class LatrState:
    """One 68-byte LATR state record."""

    vrange: VirtRange
    mm: MmStruct
    cpu_bitmask: Set[int]
    flag: LatrFlag
    owner_core: int
    posted_at: int
    #: Fires when the bitmask empties (all cores invalidated); used to gate
    #: migrations (paper 4.4) and by the reclamation daemon.
    done: Signal
    #: Frames pinned until reclamation (FREE states).
    pfns: List[int] = field(default_factory=list)
    #: Virtual range to return to the allocator at reclamation (munmap only;
    #: madvise keeps the VMA so nothing to return).
    vrange_to_free: Optional[VirtRange] = None
    #: Deferred PTE change (MIGRATION states): run by the first sweeper.
    apply_pte_change: Optional[Callable[[], None]] = None
    pte_applied: bool = False
    #: Cores that already pulled this state's cachelines cross-socket
    #: (timing bookkeeping for the sweep cost model).
    pulled_by: Set[int] = field(default_factory=set)
    active: bool = True
    completed_at: Optional[int] = None
    reclaimed: bool = False
    seq: int = field(default_factory=lambda: next(_state_seq))
    #: Ring slot this state occupies in its queue (set by ``post``); lets
    #: the sweep index reproduce slot order without scanning every slot.
    slot_idx: int = -1
    #: The queue this state was posted to (None until posted). Deactivation
    #: notifies it so active counts and the sweep index never drift.
    queue: Optional["LatrStateQueue"] = None

    def clear_cpu(self, core_id: int, now: int) -> bool:
        """Remove ``core_id`` from the bitmask; returns True when this was
        the last core (the state deactivates, paper Figure 5 step 3)."""
        self.cpu_bitmask.discard(core_id)
        if not self.cpu_bitmask and self.active:
            # Set the completion time before flipping ``active``: the
            # deactivation notification (and the done callbacks) may read it.
            self.completed_at = now
            self.active = False
            self.done.succeed(self)
            return True
        return False


def _active_get(self: LatrState) -> bool:
    return self.__dict__.get("_active_value", True)


def _active_set(self: LatrState, value: bool) -> None:
    prev = self.__dict__.get("_active_value")
    self.__dict__["_active_value"] = bool(value)
    if prev and not value:
        queue = getattr(self, "queue", None)
        if queue is not None:
            queue.note_deactivated(self)


# ``active`` is a notifying property so that *every* deactivation path --
# clear_cpu, the queue-full fallbacks that assign ``state.active = False``
# directly, and the fuzzer's broken-LATR mutations -- decrements the queue
# and index counts exactly once. States never reactivate (the flag is
# monotone), which is what makes the sweep cursor in LatrCoherence sound.
LatrState.active = property(_active_get, _active_set)  # type: ignore[assignment]


def _slot_key(state: LatrState) -> int:
    return state.slot_idx


class LatrStateQueue:
    """A per-core cyclic queue of LATR states.

    'Lock-free' in the paper means entries are claimed and cleared with
    atomics; in the simulator the discrete-event loop serializes accesses,
    so the queue is a plain ring with an explicit full condition: the slot
    at the write cursor still being active means the queue is full and the
    poster must fall back to IPIs (paper sections 4.2, 8).
    """

    def __init__(self, core_id: int, depth: int = DEFAULT_QUEUE_DEPTH):
        if depth < 1:
            raise ValueError("queue depth must be positive")
        self.core_id = core_id
        self.depth = depth
        self._slots: List[Optional[LatrState]] = [None] * depth
        self._cursor = 0
        self.posts = 0
        self.full_rejections = 0
        #: Number of currently-active states in this queue; sweeps skip the
        #: queue entirely when it is zero.
        self.active_count = 0
        #: The active posted states keyed by seq (kept exact by the same
        #: post/deactivation notifications as ``active_count``); at most one
        #: active state per slot, so slot order is recoverable by sorting.
        self._active_map: dict = {}
        #: Optional owner implementing ``note_posted(queue, state)`` /
        #: ``note_deactivated(queue, state)`` (the LatrCoherence sweep index).
        self.index = None

    def post(self, state: LatrState) -> bool:
        """Install a state; False when the queue is full (caller falls back).

        A slot is reusable once its state is inactive *and* reclaimed (for
        FREE states the record must survive until the reclamation daemon has
        freed the pages it references).
        """
        slot = self._slots[self._cursor]
        if slot is not None and (slot.active or not slot.reclaimed):
            self.full_rejections += 1
            return False
        self._slots[self._cursor] = state
        state.slot_idx = self._cursor
        self._cursor = (self._cursor + 1) % self.depth
        self.posts += 1
        state.queue = self
        if state.active:
            self.active_count += 1
            self._active_map[state.seq] = state
            if self.index is not None:
                self.index.note_posted(self, state)
        return True

    def note_deactivated(self, state: LatrState) -> None:
        """A posted state flipped active -> inactive (called by the
        ``LatrState.active`` setter exactly once per state)."""
        if self.active_count > 0:
            self.active_count -= 1
        self._active_map.pop(state.seq, None)
        if self.index is not None:
            self.index.note_deactivated(self, state)

    def active_states(self) -> Iterator[LatrState]:
        # Reads the backing __dict__ slot directly: the ``active`` property
        # costs a descriptor call per state, and sweeps run every tick.
        for state in self._slots:
            if state is not None and state.__dict__.get("_active_value", True):
                yield state

    def active_states_after(self, seq: int) -> List[LatrState]:
        """Active states with a posting sequence newer than ``seq``, in slot
        order (the same order the full scan visits them). O(active), not
        O(depth): the candidates come from the active map and are put back
        into slot order by their recorded slot index (at most one active
        state per slot, so the ordering is total)."""
        states = [s for s in self._active_map.values() if s.seq > seq]
        if len(states) > 1:
            states.sort(key=_slot_key)
        return states

    def all_states(self) -> Iterator[LatrState]:
        for state in self._slots:
            if state is not None:
                yield state

    def occupancy(self) -> int:
        return sum(
            1
            for s in self._slots
            if s is not None and (s.active or not s.reclaimed)
        )

    def footprint_bytes(self) -> int:
        return self.depth * STATE_BYTES
