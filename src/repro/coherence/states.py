"""LATR states: the per-core cyclic lock-free queues of shootdown records.

Paper section 4.1: each core owns 64 states of 68 bytes. A state holds the
virtual range, an mm identifier, the CPU bitmask of cores that still need to
invalidate, flags distinguishing free from migration operations, and an
active flag. Cores sweep *all* cores' queues at every scheduler tick or
context switch, invalidate what concerns them, clear their bitmask bit with
an atomic, and the last core deactivates the entry.

To keep the simulator's sweep sub-linear (the paper's observation that the
common sweep is the *empty* sweep), every queue maintains an
:attr:`~LatrStateQueue.active_count` and reports post/deactivation events to
an optional :attr:`~LatrStateQueue.index` (the owning
:class:`~repro.coherence.latr.LatrCoherence`). Deactivation is caught at the
``active`` attribute itself -- it is a notifying property -- so every path
that retires a state (``clear_cpu``, queue-full fallbacks, the deliberately
broken fuzzer mutations) keeps the counts exact.

Two queue representations share that contract:

* :class:`LatrStateQueue` + :class:`LatrState` -- the original object model,
  one dataclass per state with ``Set[int]`` bitmasks;
* :class:`SoaLatrQueue` + :class:`SoaLatrState` -- a struct-of-arrays layout
  (the paper's own: section 4.1 describes 64 packed 68-byte records per
  core, i.e. flat parallel arrays, not objects). Hot per-slot fields live in
  parallel int lists / a flags bytearray on the queue -- seq, cpu mask and
  pulled mask as int *bitmasks*, active/pte_applied/reclaimed/migration as
  flag bits, base vpn / page count / post timestamp -- and the state object
  shrinks to a ``__slots__`` handle that routes reads and writes to its slot
  while posted. The handle exposes the complete ``LatrState`` API
  (``cpu_bitmask`` and ``pulled_by`` are live set-like views over the int
  masks), so sweeps, mutations, snapshots, and the model checker's canonical
  hash see identical observable state either way; ``use_soa_states=False``
  on :class:`~repro.coherence.latr.LatrCoherence` is the escape hatch back
  to the object model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Set

from ..mm.addr import VirtRange
from ..mm.mmstruct import MmStruct
from ..sim.engine import Signal

#: Paper defaults.
DEFAULT_QUEUE_DEPTH = 64
STATE_BYTES = 68

_state_seq = itertools.count(1)


class LatrFlag(enum.Enum):
    """The 'flags' field: why the shootdown happened (paper Figure 4)."""

    FREE = "free"
    MIGRATION = "migration"


@dataclass
class LatrState:
    """One 68-byte LATR state record."""

    vrange: VirtRange
    mm: MmStruct
    cpu_bitmask: Set[int]
    flag: LatrFlag
    owner_core: int
    posted_at: int
    #: Fires when the bitmask empties (all cores invalidated); used to gate
    #: migrations (paper 4.4) and by the reclamation daemon.
    done: Signal
    #: Frames pinned until reclamation (FREE states).
    pfns: List[int] = field(default_factory=list)
    #: Virtual range to return to the allocator at reclamation (munmap only;
    #: madvise keeps the VMA so nothing to return).
    vrange_to_free: Optional[VirtRange] = None
    #: Deferred PTE change (MIGRATION states): run by the first sweeper.
    apply_pte_change: Optional[Callable[[], None]] = None
    pte_applied: bool = False
    #: Cores that already pulled this state's cachelines cross-socket
    #: (timing bookkeeping for the sweep cost model).
    pulled_by: Set[int] = field(default_factory=set)
    active: bool = True
    completed_at: Optional[int] = None
    reclaimed: bool = False
    seq: int = field(default_factory=lambda: next(_state_seq))
    #: Ring slot this state occupies in its queue (set by ``post``); lets
    #: the sweep index reproduce slot order without scanning every slot.
    slot_idx: int = -1
    #: The queue this state was posted to (None until posted). Deactivation
    #: notifies it so active counts and the sweep index never drift.
    queue: Optional["LatrStateQueue"] = None

    def clear_cpu(self, core_id: int, now: int) -> bool:
        """Remove ``core_id`` from the bitmask; returns True when this was
        the last core (the state deactivates, paper Figure 5 step 3)."""
        self.cpu_bitmask.discard(core_id)
        if not self.cpu_bitmask and self.active:
            # Set the completion time before flipping ``active``: the
            # deactivation notification (and the done callbacks) may read it.
            self.completed_at = now
            self.active = False
            self.done.succeed(self)
            return True
        return False


def _active_get(self: LatrState) -> bool:
    return self.__dict__.get("_active_value", True)


def _active_set(self: LatrState, value: bool) -> None:
    prev = self.__dict__.get("_active_value")
    self.__dict__["_active_value"] = bool(value)
    if prev and not value:
        queue = getattr(self, "queue", None)
        if queue is not None:
            queue.note_deactivated(self)


# ``active`` is a notifying property so that *every* deactivation path --
# clear_cpu, the queue-full fallbacks that assign ``state.active = False``
# directly, and the fuzzer's broken-LATR mutations -- decrements the queue
# and index counts exactly once. States never reactivate (the flag is
# monotone), which is what makes the sweep cursor in LatrCoherence sound.
LatrState.active = property(_active_get, _active_set)  # type: ignore[assignment]


def _slot_key(state: LatrState) -> int:
    return state.slot_idx


class LatrStateQueue:
    """A per-core cyclic queue of LATR states.

    'Lock-free' in the paper means entries are claimed and cleared with
    atomics; in the simulator the discrete-event loop serializes accesses,
    so the queue is a plain ring with an explicit full condition: the slot
    at the write cursor still being active means the queue is full and the
    poster must fall back to IPIs (paper sections 4.2, 8).
    """

    def __init__(self, core_id: int, depth: int = DEFAULT_QUEUE_DEPTH):
        if depth < 1:
            raise ValueError("queue depth must be positive")
        self.core_id = core_id
        self.depth = depth
        self._slots: List[Optional[LatrState]] = [None] * depth
        self._cursor = 0
        self.posts = 0
        self.full_rejections = 0
        #: Number of currently-active states in this queue; sweeps skip the
        #: queue entirely when it is zero.
        self.active_count = 0
        #: The active posted states keyed by seq (kept exact by the same
        #: post/deactivation notifications as ``active_count``); at most one
        #: active state per slot, so slot order is recoverable by sorting.
        self._active_map: dict = {}
        #: Optional owner implementing ``note_posted(queue, state)`` /
        #: ``note_deactivated(queue, state)`` (the LatrCoherence sweep index).
        self.index = None

    def post(self, state: LatrState) -> bool:
        """Install a state; False when the queue is full (caller falls back).

        A slot is reusable once its state is inactive *and* reclaimed (for
        FREE states the record must survive until the reclamation daemon has
        freed the pages it references).
        """
        slot = self._slots[self._cursor]
        if slot is not None and (slot.active or not slot.reclaimed):
            self.full_rejections += 1
            return False
        self._slots[self._cursor] = state
        state.slot_idx = self._cursor
        self._cursor = (self._cursor + 1) % self.depth
        self.posts += 1
        state.queue = self
        if state.active:
            self.active_count += 1
            self._active_map[state.seq] = state
            if self.index is not None:
                self.index.note_posted(self, state)
        return True

    def note_deactivated(self, state: LatrState) -> None:
        """A posted state flipped active -> inactive (called by the
        ``LatrState.active`` setter exactly once per state)."""
        if self.active_count > 0:
            self.active_count -= 1
        self._active_map.pop(state.seq, None)
        if self.index is not None:
            self.index.note_deactivated(self, state)

    def active_states(self) -> Iterator[LatrState]:
        # Reads the backing __dict__ slot directly: the ``active`` property
        # costs a descriptor call per state, and sweeps run every tick.
        for state in self._slots:
            if state is not None and state.__dict__.get("_active_value", True):
                yield state

    def active_states_after(self, seq: int) -> List[LatrState]:
        """Active states with a posting sequence newer than ``seq``, in slot
        order (the same order the full scan visits them). O(active), not
        O(depth): the candidates come from the active map and are put back
        into slot order by their recorded slot index (at most one active
        state per slot, so the ordering is total)."""
        states = [s for s in self._active_map.values() if s.seq > seq]
        if len(states) > 1:
            states.sort(key=_slot_key)
        return states

    def all_states(self) -> Iterator[LatrState]:
        for state in self._slots:
            if state is not None:
                yield state

    def occupancy(self) -> int:
        return sum(
            1
            for s in self._slots
            if s is not None and (s.active or not s.reclaimed)
        )

    def footprint_bytes(self) -> int:
        return self.depth * STATE_BYTES


# ---------------------------------------------------------------------------
# Struct-of-arrays representation
# ---------------------------------------------------------------------------

#: Flag bits of the packed per-slot flags byte (``SoaLatrQueue._flags_a``).
SOA_ACTIVE = 0x01
SOA_PTE_APPLIED = 0x02
SOA_RECLAIMED = 0x04
SOA_MIGRATION = 0x08


class _MaskView:
    """Live set-of-core-ids view over an int bitmask field of a
    :class:`SoaLatrState` (``kind`` 0 = cpu_bitmask, 1 = pulled_by).

    Reads and writes go through the state so they hit the queue's parallel
    arrays while the state occupies a slot. Iteration yields ascending core
    ids -- the order ``sorted(set)`` would give -- so canonicalization and
    snapshots see exactly what the object model produces.
    """

    __slots__ = ("_state", "_kind")

    def __init__(self, state: "SoaLatrState", kind: int):
        self._state = state
        self._kind = kind

    def _get(self) -> int:
        return self._state._mask_get(self._kind)

    def _put(self, mask: int) -> None:
        self._state._mask_put(self._kind, mask)

    def __contains__(self, core_id: int) -> bool:
        return (self._get() >> core_id) & 1 == 1

    def __iter__(self) -> Iterator[int]:
        mask = self._get()
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def __len__(self) -> int:
        return self._get().bit_count()

    def __bool__(self) -> bool:
        return self._get() != 0

    def __eq__(self, other) -> bool:
        if isinstance(other, _MaskView):
            return self._get() == other._get()
        if isinstance(other, (set, frozenset)):
            return set(self) == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover
        return f"{{{', '.join(map(str, self))}}}"

    def add(self, core_id: int) -> None:
        self._put(self._get() | (1 << core_id))

    def discard(self, core_id: int) -> None:
        self._put(self._get() & ~(1 << core_id))

    def clear(self) -> None:
        self._put(0)

    def update(self, other) -> None:
        mask = self._get()
        for core_id in other:
            mask |= 1 << core_id
        self._put(mask)


def _as_mask(value) -> int:
    """Coerce a core-id collection (or an int bitmask) to an int bitmask."""
    if isinstance(value, int):
        return value
    mask = 0
    for core_id in value:
        mask |= 1 << core_id
    return mask


class SoaLatrState:
    """Thin handle over one slot of a :class:`SoaLatrQueue`.

    Identity and cold fields (vrange, mm, done signal, pfns, the deferred
    PTE callback) live on the handle; the hot mutable fields (cpu/pulled
    masks, the active/pte_applied/reclaimed/migration flag bits) live in the
    queue's parallel arrays while the state occupies its ring slot and are
    frozen back onto the handle when the slot is recycled. API-compatible
    with :class:`LatrState`, including the notifying monotone ``active``.
    """

    __slots__ = (
        "vrange",
        "mm",
        "flag",
        "owner_core",
        "posted_at",
        "done",
        "pfns",
        "vrange_to_free",
        "apply_pte_change",
        "completed_at",
        "seq",
        "slot_idx",
        "queue",
        "_cpu_mask",
        "_pulled_mask",
        "_flags",
        "_attached",
    )

    def __init__(
        self,
        vrange: VirtRange,
        mm: MmStruct,
        cpu_bitmask,
        flag: LatrFlag,
        owner_core: int,
        posted_at: int,
        done: Signal,
        pfns: Optional[List[int]] = None,
        vrange_to_free: Optional[VirtRange] = None,
        apply_pte_change: Optional[Callable[[], None]] = None,
        pte_applied: bool = False,
        pulled_by=0,
        active: bool = True,
        completed_at: Optional[int] = None,
        reclaimed: bool = False,
    ):
        self.vrange = vrange
        self.mm = mm
        self.flag = flag
        self.owner_core = owner_core
        self.posted_at = posted_at
        self.done = done
        self.pfns = [] if pfns is None else pfns
        self.vrange_to_free = vrange_to_free
        self.apply_pte_change = apply_pte_change
        self.completed_at = completed_at
        self.seq = next(_state_seq)
        self.slot_idx = -1
        self.queue = None
        self._cpu_mask = _as_mask(cpu_bitmask)
        self._pulled_mask = _as_mask(pulled_by)
        flags = 0
        if active:
            flags |= SOA_ACTIVE
        if pte_applied:
            flags |= SOA_PTE_APPLIED
        if reclaimed:
            flags |= SOA_RECLAIMED
        if flag is LatrFlag.MIGRATION:
            flags |= SOA_MIGRATION
        self._flags = flags
        self._attached = False

    # ---- slot plumbing -------------------------------------------------------

    def _mask_get(self, kind: int) -> int:
        if self._attached:
            queue = self.queue
            if kind == 0:
                return queue._mask_a[self.slot_idx]
            return queue._pulled_a[self.slot_idx]
        return self._cpu_mask if kind == 0 else self._pulled_mask

    def _mask_put(self, kind: int, mask: int) -> None:
        if self._attached:
            queue = self.queue
            if kind == 0:
                queue._mask_a[self.slot_idx] = mask
            else:
                queue._pulled_a[self.slot_idx] = mask
        elif kind == 0:
            self._cpu_mask = mask
        else:
            self._pulled_mask = mask

    def _flags_get(self) -> int:
        if self._attached:
            return self.queue._flags_a[self.slot_idx]
        return self._flags

    def _flags_put(self, flags: int) -> None:
        if self._attached:
            self.queue._flags_a[self.slot_idx] = flags
        else:
            self._flags = flags

    def _detach(self) -> None:
        """Slot recycled: freeze the array-resident fields onto the handle
        (late readers -- pending lists, snapshots -- keep exact values)."""
        queue = self.queue
        idx = self.slot_idx
        self._cpu_mask = queue._mask_a[idx]
        self._pulled_mask = queue._pulled_a[idx]
        self._flags = queue._flags_a[idx]
        self._attached = False

    # ---- LatrState-compatible surface ----------------------------------------

    @property
    def cpu_bitmask(self) -> _MaskView:
        return _MaskView(self, 0)

    @cpu_bitmask.setter
    def cpu_bitmask(self, value) -> None:
        self._mask_put(0, _as_mask(value))

    @property
    def pulled_by(self) -> _MaskView:
        return _MaskView(self, 1)

    @pulled_by.setter
    def pulled_by(self, value) -> None:
        self._mask_put(1, _as_mask(value))

    @property
    def active(self) -> bool:
        return self._flags_get() & SOA_ACTIVE != 0

    @active.setter
    def active(self, value: bool) -> None:
        flags = self._flags_get()
        prev = flags & SOA_ACTIVE != 0
        if value:
            self._flags_put(flags | SOA_ACTIVE)
        else:
            self._flags_put(flags & ~SOA_ACTIVE)
        if prev and not value and self.queue is not None:
            self.queue.note_deactivated(self)

    @property
    def pte_applied(self) -> bool:
        return self._flags_get() & SOA_PTE_APPLIED != 0

    @pte_applied.setter
    def pte_applied(self, value: bool) -> None:
        flags = self._flags_get()
        if value:
            self._flags_put(flags | SOA_PTE_APPLIED)
        else:
            self._flags_put(flags & ~SOA_PTE_APPLIED)

    @property
    def reclaimed(self) -> bool:
        return self._flags_get() & SOA_RECLAIMED != 0

    @reclaimed.setter
    def reclaimed(self, value: bool) -> None:
        flags = self._flags_get()
        if value:
            self._flags_put(flags | SOA_RECLAIMED)
        else:
            self._flags_put(flags & ~SOA_RECLAIMED)

    def clear_cpu(self, core_id: int, now: int) -> bool:
        """Semantics of :meth:`LatrState.clear_cpu` on the packed masks."""
        if self._attached:
            queue = self.queue
            idx = self.slot_idx
            mask = queue._mask_a[idx] & ~(1 << core_id)
            queue._mask_a[idx] = mask
            if mask == 0 and queue._flags_a[idx] & SOA_ACTIVE:
                self.completed_at = now
                self.active = False
                self.done.succeed(self)
                return True
            return False
        mask = self._cpu_mask & ~(1 << core_id)
        self._cpu_mask = mask
        if mask == 0 and self._flags & SOA_ACTIVE:
            self.completed_at = now
            self.active = False
            self.done.succeed(self)
            return True
        return False


class SoaLatrQueue:
    """Struct-of-arrays per-core cyclic LATR queue.

    Same ring/full/notification contract as :class:`LatrStateQueue`, but the
    per-slot hot fields are parallel arrays indexed by slot: ``_seq_a``
    (posting sequence, 0 = never used), ``_mask_a``/``_pulled_a`` (int core
    bitmasks), ``_flags_a`` (a bytearray of SOA_* bits), ``_vpn_a``/
    ``_npages_a`` (the virtual range) and ``_posted_a`` (post timestamps).
    ``_slots`` keeps the state handles so existing observers (snapshots, the
    model checker, mutations) walk the queue exactly as before.
    """

    def __init__(self, core_id: int, depth: int = DEFAULT_QUEUE_DEPTH):
        if depth < 1:
            raise ValueError("queue depth must be positive")
        self.core_id = core_id
        self.depth = depth
        self._slots: List[Optional[SoaLatrState]] = [None] * depth
        self._seq_a: List[int] = [0] * depth
        self._mask_a: List[int] = [0] * depth
        self._pulled_a: List[int] = [0] * depth
        self._flags_a = bytearray(depth)
        self._vpn_a: List[int] = [0] * depth
        self._npages_a: List[int] = [0] * depth
        self._posted_a: List[int] = [0] * depth
        self._cursor = 0
        self.posts = 0
        self.full_rejections = 0
        self.active_count = 0
        self._active_map: dict = {}
        self.index = None

    def post(self, state: SoaLatrState) -> bool:
        """Install a state; False when the queue is full (same reusability
        rule as the object model: inactive *and* reclaimed)."""
        idx = self._cursor
        flags_a = self._flags_a
        old = self._slots[idx]
        if old is not None:
            old_flags = flags_a[idx]
            if old_flags & SOA_ACTIVE or not old_flags & SOA_RECLAIMED:
                self.full_rejections += 1
                return False
            old._detach()
        self._slots[idx] = state
        self._seq_a[idx] = state.seq
        self._mask_a[idx] = state._cpu_mask
        self._pulled_a[idx] = state._pulled_mask
        flags_a[idx] = state._flags
        vrange = state.vrange
        self._vpn_a[idx] = vrange.vpn_start
        self._npages_a[idx] = vrange.n_pages
        self._posted_a[idx] = state.posted_at
        state.slot_idx = idx
        state.queue = self
        state._attached = True
        self._cursor = (idx + 1) % self.depth
        self.posts += 1
        if flags_a[idx] & SOA_ACTIVE:
            self.active_count += 1
            self._active_map[state.seq] = state
            if self.index is not None:
                self.index.note_posted(self, state)
        return True

    def note_deactivated(self, state: SoaLatrState) -> None:
        if self.active_count > 0:
            self.active_count -= 1
        self._active_map.pop(state.seq, None)
        if self.index is not None:
            self.index.note_deactivated(self, state)

    def active_states(self) -> Iterator[SoaLatrState]:
        flags_a = self._flags_a
        for idx, state in enumerate(self._slots):
            if state is not None and flags_a[idx] & SOA_ACTIVE:
                yield state

    def active_states_after(self, seq: int) -> List[SoaLatrState]:
        states = [s for s in self._active_map.values() if s.seq > seq]
        if len(states) > 1:
            states.sort(key=_slot_key)
        return states

    def all_states(self) -> Iterator[SoaLatrState]:
        for state in self._slots:
            if state is not None:
                yield state

    def occupancy(self) -> int:
        flags_a = self._flags_a
        return sum(
            1
            for idx, s in enumerate(self._slots)
            if s is not None
            and (flags_a[idx] & SOA_ACTIVE or not flags_a[idx] & SOA_RECLAIMED)
        )

    def footprint_bytes(self) -> int:
        return self.depth * STATE_BYTES
