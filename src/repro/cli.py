"""Command-line entry point: regenerate any paper table or figure.

Examples::

    python -m repro list
    python -m repro fig6
    python -m repro fig9 --fast
    python -m repro all --fast -o results.txt
    python -m repro all --fast --jobs 4
    python -m repro fuzz --seed 7 --ops 500
    python -m repro ci
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .experiments import available_experiments, run_experiment, run_many

# Tier-1 line-coverage floor enforced by `repro ci` when pytest-cov is
# installed (the `.[dev]` extra). Set to two points below the measured
# suite coverage (see tools/measure_coverage.py); raise it as the suite
# grows, never lower it to paper over a regression.
COVERAGE_FLOOR = 92


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="latr-repro",
        description="Reproduce the tables and figures of 'LATR: Lazy Translation "
        "Coherence' (ASPLOS 2018) on the simulated machine.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig6, tab5), 'all', 'list', 'fuzz', 'mc', "
        "'bench', or 'ci'; 'run <id>' is accepted as an alias for '<id>'",
    )
    parser.add_argument(
        "run_target",
        nargs="?",
        default=None,
        help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced sweeps/durations (for smoke runs and CI)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="run cells on N worker processes (0 = one per CPU); tables are "
        "byte-identical to --jobs 1 (default: 1, fully in-process)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="fuzz: RNG seed for the workload+schedule plan",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=None,
        help="fuzz: operations per plan (default 200); "
        "mc: program length (default 5)",
    )
    parser.add_argument(
        "--mutate",
        default=None,
        help="fuzz/mc: inject a known-bad variant (see `python -m repro "
        "fuzz --mutate help`)",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=3,
        help="mc: cores in the model-checked scope (1-4)",
    )
    parser.add_argument(
        "--pages",
        type=int,
        default=2,
        help="mc: page slots in the model-checked scope (1-3)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=200_000,
        help="mc: per-cell explored-state budget (deterministic; the run "
        "reports 'incomplete' when hit)",
    )
    parser.add_argument(
        "--no-diff",
        action="store_true",
        help="mc: skip the differential oracle at complete traces",
    )
    parser.add_argument(
        "--legacy-latency-stats",
        action="store_true",
        help="record latency samples from t=0 instead of gating them on "
        "the measurement window (reproduces the old warmup-polluted "
        "percentiles, for A/B comparison)",
    )
    parser.add_argument(
        "--no-snapshots",
        action="store_true",
        help="disable all snapshot/fork machinery: warm-boot pools boot "
        "cold and the model checker backtracks by prefix replay; results "
        "are byte-identical to snapshot runs (the escape hatch exists to "
        "rule snapshots out when debugging)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="bench: reduced suite (fig6 + a short sweep-stress) for CI smoke",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="bench: exit non-zero if wall-clock regresses beyond --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="bench: regression threshold in percent (default 25)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="bench: directory for BENCH_*.json files (default benchmarks/results)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also append rendered tables to this file",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each experiment's rows as <csv-dir>/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.experiment == "run":
        if args.run_target is None:
            parser.error("'run' needs an experiment id (e.g. 'run slo')")
        args.experiment = args.run_target
    elif args.run_target is not None:
        parser.error(f"unexpected extra argument {args.run_target!r}")

    if args.no_snapshots:
        from .snapshot import set_snapshots_enabled

        set_snapshots_enabled(False)

    if args.legacy_latency_stats:
        from .sim.stats import set_latency_gating

        set_latency_gating(False)

    if args.experiment == "list":
        for exp_id in available_experiments():
            print(exp_id)
        return 0

    if args.experiment == "fuzz":
        return _run_fuzz_command(args)

    if args.experiment == "mc":
        return _run_mc_command(args)

    if args.experiment == "bench":
        return _run_bench_command(args)

    if args.experiment == "ci":
        return _run_ci_command(args)

    exp_ids = available_experiments() if args.experiment == "all" else [args.experiment]
    sink = open(args.output, "a") if args.output else None
    try:
        if args.jobs != 1:
            # Sharded backend: the union of every experiment's cells goes
            # into one worker pool; tables come back in experiment order,
            # byte-identical to the serial path.
            started = time.time()
            runs = run_many(exp_ids, fast=args.fast, jobs=args.jobs)
            elapsed = time.time() - started
            for run in runs:
                _emit(run.exp_id, run.result, sink, args.csv_dir)
                print(
                    f"[{run.exp_id} done: {len(run.outcomes)} cell(s), "
                    f"{run.cell_seconds:.1f}s cell time]\n"
                )
            total_cells = sum(len(run.outcomes) for run in runs)
            print(
                f"[{total_cells} cells on {args.jobs or 'auto'} jobs "
                f"in {elapsed:.1f}s wall]"
            )
        else:
            for exp_id in exp_ids:
                started = time.time()
                result = run_experiment(exp_id, fast=args.fast)
                elapsed = time.time() - started
                _emit(exp_id, result, sink, args.csv_dir)
                print(f"[{exp_id} done in {elapsed:.1f}s]\n")
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        if sink:
            sink.close()
    return 0


def _emit(exp_id: str, result, sink, csv_dir: Optional[str]) -> None:
    """Print one rendered table and mirror it to the optional sinks."""
    text = result.render()
    print(text)
    if sink:
        sink.write(text + "\n\n")
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        with open(os.path.join(csv_dir, f"{exp_id}.csv"), "w") as csv_file:
            csv_file.write(result.to_csv())


def _run_bench_command(args) -> int:
    """``python -m repro bench [--quick] [--check-regression]``: time the
    fixed wall-clock suite, write BENCH_<timestamp>.json, compare to the
    previous one."""
    from .bench import DEFAULT_BENCH_DIR, DEFAULT_THRESHOLD_PCT, run_bench

    started = time.time()
    print(f"wall-clock bench ({'quick' if args.quick else 'full'} suite):")
    _report, code = run_bench(
        bench_dir=args.bench_dir or DEFAULT_BENCH_DIR,
        quick=args.quick,
        check_regression=args.check_regression,
        threshold_pct=args.threshold if args.threshold is not None else DEFAULT_THRESHOLD_PCT,
    )
    print(f"[bench done in {time.time() - started:.1f}s]")
    return code


def _run_fuzz_command(args) -> int:
    """``python -m repro fuzz --seed N --ops M [--fast] [--mutate X]``:
    one differential campaign; exit 0 iff every mechanism is clean."""
    from .verify import MUTATIONS, FuzzConfig, run_fuzz

    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(
            f"unknown mutation {args.mutate!r}; have {', '.join(MUTATIONS)}",
            file=sys.stderr,
        )
        return 2
    ops = 200 if args.ops is None else args.ops
    n_ops = min(ops, 120) if args.fast else ops
    config = FuzzConfig(
        seed=args.seed,
        n_ops=n_ops,
        mutate=args.mutate,
        shrink_budget=30 if args.fast else 60,
        use_snapshots=not args.no_snapshots,
    )
    started = time.time()
    report = run_fuzz(config)
    text = report.render()
    print(text)
    print(f"[fuzz done in {time.time() - started:.1f}s]")
    if args.output:
        with open(args.output, "a") as sink:
            sink.write(text + "\n\n")
    return 0 if report.ok else 1


def _run_mc_command(args) -> int:
    """``python -m repro mc --cores N --pages P --ops K [--mutate X]``:
    exhaustively explore every reduced interleaving at a small scope; exit
    0 iff the space is fully explored with zero findings."""
    from .experiments.runner import resolve_jobs
    from .verify import MUTATIONS
    from .verify.mc import McConfig, McScope, run_mc

    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(
            f"unknown mutation {args.mutate!r}; have {', '.join(MUTATIONS)}",
            file=sys.stderr,
        )
        return 2
    ops = 5 if args.ops is None else args.ops
    if not (1 <= args.cores <= 4 and 1 <= args.pages <= 3 and 0 <= ops <= 10):
        print(
            "mc is a small-scope exhaustive checker: --cores 1-4, --pages 1-3, "
            f"--ops 0-10 (got cores={args.cores} pages={args.pages} ops={ops})",
            file=sys.stderr,
        )
        return 2
    config = McConfig(
        scope=McScope(
            cores=args.cores, pages=args.pages, ops=ops, mutate=args.mutate
        ),
        max_nodes=args.budget,
        differential=not args.no_diff,
        use_snapshots=not args.no_snapshots,
    )
    started = time.time()
    result = run_mc(config, jobs=resolve_jobs(args.jobs) if args.jobs != 1 else 1)
    text = result.render()
    print(text)
    print(f"[mc done in {time.time() - started:.1f}s]")
    if args.output:
        with open(args.output, "a") as sink:
            sink.write(text + "\n\n")
    return 0 if result.verdict == "ok" else 1


def _snapshot_differential() -> int:
    """Explore one small scope twice -- snapshot backtracking vs honest
    prefix replay -- and require identical verdict, node count and
    canonical state set. This is the CI teeth behind the ``--no-snapshots``
    escape hatch: the two paths must stay byte-identical."""
    from .verify.mc import McConfig, McScope, run_mc

    def explore(use_snapshots: bool):
        report = run_mc(
            McConfig(
                scope=McScope(cores=3, pages=2, ops=5),
                differential=False,
                collect_hashes=True,
                stop_on_first=False,
                use_snapshots=use_snapshots,
            )
        )
        hashes = set()
        nodes = 0
        for cell in report.cells:
            hashes |= set(cell.state_hashes)
            nodes += cell.nodes
        return report.verdict, nodes, hashes

    snap = explore(True)
    replay = explore(False)
    if snap != replay:
        print(
            f"snapshot/replay divergence: snapshot=(verdict={snap[0]}, "
            f"nodes={snap[1]}, states={len(snap[2])}) vs replay="
            f"(verdict={replay[0]}, nodes={replay[1]}, states={len(replay[2])})",
            file=sys.stderr,
        )
        return 1
    print(
        f"snapshot and replay exploration identical: verdict={snap[0]}, "
        f"{snap[1]} nodes, {len(snap[2])} states"
    )
    return 0


def _numapte_smoke() -> int:
    """numaPTE gate: replication eliminates remote hardware walks and
    actually fans out updates; the ``use_pt_replication`` escape hatch
    degenerates to the Linux baseline byte-identically; and the
    broken-replica mutation is caught by both the continuous invariant
    monitor (fuzz leg) and the model checker's mutation audit."""
    from .verify import generate_plan, mutation_spec, run_one
    from .verify.mc import McConfig, McScope, run_mc

    plan = generate_plan(1, 60)
    on = run_one("numapte", plan)
    if not on.clean:
        print("numapte-smoke: replicated run had findings", file=sys.stderr)
        return 1
    summary = on.stats_summary
    if summary.get("count.pt.walk.remote", 0):
        print("numapte-smoke: remote hardware walks survived replication", file=sys.stderr)
        return 1
    if not summary.get("count.pt.replica.updates", 0):
        print("numapte-smoke: no replica fan-out happened", file=sys.stderr)
        return 1
    off = run_one("numapte", plan, use_pt_replication=False)
    base = run_one("linux", plan)
    if off.stats_summary != base.stats_summary or off.snapshot != base.snapshot:
        print(
            "numapte-smoke: use_pt_replication=False is not byte-identical "
            "to the single-table baseline",
            file=sys.stderr,
        )
        return 1
    mutation = mutation_spec("broken_replica")
    bad = run_one("latr", plan, mutate=mutation.name)
    if not any(v.check == "replica_coherence" for v in bad.violations):
        print("numapte-smoke: monitor missed the broken_replica mutation", file=sys.stderr)
        return 1
    audit = run_mc(
        McConfig(scope=McScope(cores=2, pages=2, ops=5, mutate=mutation.name))
    )
    if audit.verdict != "violation":
        print(
            f"numapte-smoke: mc audit missed broken_replica "
            f"(verdict {audit.verdict})",
            file=sys.stderr,
        )
        return 1
    print(
        f"numapte ok: {int(summary['count.pt.walk.local'])} local walks, "
        f"0 remote, {int(summary['count.pt.replica.updates'])} replica "
        f"updates; escape hatch byte-identical; broken_replica caught by "
        f"monitor and mc"
    )
    return 0


def _virt_smoke() -> int:
    """Two-level translation gate: a virtualized run actually pays 2D
    walks and host-level (EPT) invalidations and stays invariant-clean
    (HATRIC included); the ``use_virtualization`` escape hatch is
    byte-identical to the flat baseline; and the broken-EPT-shootdown
    mutation is caught by both the continuous invariant monitor (fuzz
    leg) and the model checker's mutation audit."""
    from .verify import generate_plan, mutation_spec, run_one
    from .verify.mc import McConfig, McScope, run_mc

    plan = generate_plan(1, 60)
    on = run_one("linux", plan, use_virtualization=True)
    if not on.clean:
        print("virt-smoke: virtualized run had findings", file=sys.stderr)
        return 1
    summary = on.stats_summary
    if not summary.get("count.virt.walk.2d", 0) or not summary.get(
        "count.virt.host_inval.entries", 0
    ):
        print(
            "virt-smoke: virtualized run paid no 2D walks or no host "
            "invalidations",
            file=sys.stderr,
        )
        return 1
    hat = run_one("hatric", plan, use_virtualization=True)
    if not hat.clean:
        print("virt-smoke: virtualized hatric run had findings", file=sys.stderr)
        return 1
    if not hat.stats_summary.get("count.virt.host_inval.entries", 0):
        print("virt-smoke: hatric snooped no host invalidations", file=sys.stderr)
        return 1
    off = run_one("linux", plan, use_virtualization=False)
    base = run_one("linux", plan)
    if off.stats_summary != base.stats_summary or off.snapshot != base.snapshot:
        print(
            "virt-smoke: use_virtualization=False is not byte-identical "
            "to the flat baseline",
            file=sys.stderr,
        )
        return 1
    if any(k.startswith("count.virt.") for k in off.stats_summary):
        print(
            "virt-smoke: flat run carries virt.* counters", file=sys.stderr
        )
        return 1
    mutation = mutation_spec("broken_ept_shootdown")
    bad = run_one("latr", plan, mutate=mutation.name)
    if not any(v.check == "ept_coherence" for v in bad.violations):
        print(
            "virt-smoke: monitor missed the broken_ept_shootdown mutation",
            file=sys.stderr,
        )
        return 1
    audit = run_mc(
        McConfig(scope=McScope(cores=2, pages=2, ops=5, mutate=mutation.name))
    )
    if audit.verdict != "violation":
        print(
            f"virt-smoke: mc audit missed broken_ept_shootdown "
            f"(verdict {audit.verdict})",
            file=sys.stderr,
        )
        return 1
    print(
        f"virt ok: {int(summary['count.virt.walk.2d'])} 2D walks, "
        f"{int(summary['count.virt.host_inval.entries'])} host invalidations, "
        f"hatric clean; escape hatch byte-identical; broken_ept_shootdown "
        f"caught by monitor and mc"
    )
    return 0


def _fleet_smoke() -> int:
    """Fleet gate: the 960-core spec boots and runs the stress churn
    cleanly, and the packed hot-state representations (SoA LATR queues,
    packed TLB slots, slab frame frees -- the defaults) are byte-identical
    to the object model at a short scope. The fleet bench *floor* rides in
    the quick-bench step (fleet-stress-960c under ``--check-regression``);
    this step is the cheap correctness half."""
    from .bench import run_fleet_stress

    scope = dict(
        machine="fleet-16s960c", drivers=8, pages=4, touchers=3, duration_ms=2
    )
    packed = run_fleet_stress(packed=True, scope=scope)
    if not packed.get("count.latr.sweeps") or not packed.get("count.latr.states_posted"):
        print(
            "fleet-smoke: 960-core run posted no LATR states or never swept",
            file=sys.stderr,
        )
        return 1
    objects = run_fleet_stress(packed=False, scope=scope)
    if packed != objects:
        diff = [k for k in packed.keys() | objects.keys() if packed.get(k) != objects.get(k)]
        print(
            f"fleet-smoke: packed and object-model stats diverge on "
            f"{sorted(diff)[:8]}",
            file=sys.stderr,
        )
        return 1
    print(
        f"fleet ok: 960 cores, {int(packed['count.latr.sweeps'])} sweeps, "
        f"{int(packed['count.latr.states_posted'])} posts; packed representations "
        f"byte-identical to the object model"
    )
    return 0


def _run_ci_command(args) -> int:
    """``python -m repro ci``: the full local gate -- tier-1 pytest, a
    small exhaustive mc scope, the snapshot-vs-replay differential, the
    numaPTE smoke (replication/escape-hatch/mutation-audit gate), the
    virt smoke (two-level translation: 2D-walk/host-invalidation
    accounting, escape-hatch byte-identity, broken-EPT-shootdown
    mutation audit), the
    fleet smoke (960-core boot + packed-vs-object byte-identity), a
    parallel fast-mode smoke of every experiment, and the quick wall-clock
    bench (which gates the mc-snapshot speedup/hash equality and the
    fleet-stress packed speedup and events/s floors) with its regression
    check against the committed BENCH_*.json baseline (exit 2 if the
    baseline is missing). Exits non-zero on the first failure.

    Needs a source checkout (it locates ``tests/`` next to ``src/``)."""
    import subprocess

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    repo_root = os.path.dirname(src_dir)
    started = time.time()

    def step(label: str, runner) -> int:
        step_start = time.time()
        print(f"ci: {label} ...", flush=True)
        code = runner()
        status = "ok" if code == 0 else f"FAILED (exit {code})"
        print(f"ci: {label}: {status} [{time.time() - step_start:.1f}s]", flush=True)
        return code

    def tier1() -> int:
        import importlib.util

        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        argv = [sys.executable, "-m", "pytest", "-x", "-q"]
        if importlib.util.find_spec("pytest_cov") is not None:
            # Coverage gate rides along wherever the dev extras are
            # installed; environments without pytest-cov still run the
            # plain suite.
            argv += [
                "--cov=repro",
                "--cov-report=term",
                f"--cov-fail-under={COVERAGE_FLOOR}",
            ]
        return subprocess.call(argv, cwd=repo_root, env=env)

    steps = [
        ("tier-1 pytest", tier1),
        (
            "repro mc --cores 2 --pages 2 --ops 4",
            lambda: main(["mc", "--cores", "2", "--pages", "2", "--ops", "4"]),
        ),
        ("snapshot differential (3c/2p/5ops)", _snapshot_differential),
        ("numapte-smoke", _numapte_smoke),
        ("virt-smoke", _virt_smoke),
        ("fleet-smoke", _fleet_smoke),
        ("repro all --fast --jobs 2", lambda: main(["all", "--fast", "--jobs", "2"])),
        (
            "repro bench --quick --check-regression",
            lambda: main(["bench", "--quick", "--check-regression"]),
        ),
    ]
    for label, runner in steps:
        code = step(label, runner)
        if code != 0:
            print(f"ci: FAILED at '{label}' [{time.time() - started:.1f}s total]")
            return code
    print(f"ci: all gates passed [{time.time() - started:.1f}s total]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
