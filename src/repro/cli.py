"""Command-line entry point: regenerate any paper table or figure.

Examples::

    python -m repro list
    python -m repro fig6
    python -m repro fig9 --fast
    python -m repro all --fast -o results.txt
    python -m repro fuzz --seed 7 --ops 500
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import available_experiments, run_experiment


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="latr-repro",
        description="Reproduce the tables and figures of 'LATR: Lazy Translation "
        "Coherence' (ASPLOS 2018) on the simulated machine.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig6, tab5), 'all', 'list', 'fuzz', or 'bench'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced sweeps/durations (for smoke runs and CI)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="fuzz: RNG seed for the workload+schedule plan",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=200,
        help="fuzz: operations per plan",
    )
    parser.add_argument(
        "--mutate",
        default=None,
        help="fuzz: inject a known-bad LATR variant "
        "(reclaim_delay_zero, skip_sweep_invalidate)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="bench: reduced suite (fig6 + a short sweep-stress) for CI smoke",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="bench: exit non-zero if wall-clock regresses beyond --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="bench: regression threshold in percent (default 25)",
    )
    parser.add_argument(
        "--bench-dir",
        default=None,
        help="bench: directory for BENCH_*.json files (default benchmarks/results)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="also append rendered tables to this file",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each experiment's rows as <csv-dir>/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for exp_id in available_experiments():
            print(exp_id)
        return 0

    if args.experiment == "fuzz":
        return _run_fuzz_command(args)

    if args.experiment == "bench":
        return _run_bench_command(args)

    exp_ids = available_experiments() if args.experiment == "all" else [args.experiment]
    sink = open(args.output, "a") if args.output else None
    try:
        for exp_id in exp_ids:
            started = time.time()
            result = run_experiment(exp_id, fast=args.fast)
            text = result.render()
            elapsed = time.time() - started
            print(text)
            print(f"[{exp_id} done in {elapsed:.1f}s]\n")
            if sink:
                sink.write(text + "\n\n")
            if args.csv_dir:
                import os

                os.makedirs(args.csv_dir, exist_ok=True)
                with open(os.path.join(args.csv_dir, f"{exp_id}.csv"), "w") as csv_file:
                    csv_file.write(result.to_csv())
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        if sink:
            sink.close()
    return 0


def _run_bench_command(args) -> int:
    """``python -m repro bench [--quick] [--check-regression]``: time the
    fixed wall-clock suite, write BENCH_<timestamp>.json, compare to the
    previous one."""
    from .bench import DEFAULT_BENCH_DIR, DEFAULT_THRESHOLD_PCT, run_bench

    started = time.time()
    print(f"wall-clock bench ({'quick' if args.quick else 'full'} suite):")
    _report, code = run_bench(
        bench_dir=args.bench_dir or DEFAULT_BENCH_DIR,
        quick=args.quick,
        check_regression=args.check_regression,
        threshold_pct=args.threshold if args.threshold is not None else DEFAULT_THRESHOLD_PCT,
    )
    print(f"[bench done in {time.time() - started:.1f}s]")
    return code


def _run_fuzz_command(args) -> int:
    """``python -m repro fuzz --seed N --ops M [--fast] [--mutate X]``:
    one differential campaign; exit 0 iff every mechanism is clean."""
    from .verify import MUTATIONS, FuzzConfig, run_fuzz

    if args.mutate is not None and args.mutate not in MUTATIONS:
        print(
            f"unknown mutation {args.mutate!r}; have {', '.join(MUTATIONS)}",
            file=sys.stderr,
        )
        return 2
    n_ops = min(args.ops, 120) if args.fast else args.ops
    config = FuzzConfig(
        seed=args.seed,
        n_ops=n_ops,
        mutate=args.mutate,
        shrink_budget=30 if args.fast else 60,
    )
    started = time.time()
    report = run_fuzz(config)
    text = report.render()
    print(text)
    print(f"[fuzz done in {time.time() - started:.1f}s]")
    if args.output:
        with open(args.output, "a") as sink:
            sink.write(text + "\n\n")
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
