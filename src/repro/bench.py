"""Wall-clock benchmark harness: how fast does the *simulator* run?

Everything else in the repo measures simulated nanoseconds; this module
measures host seconds. ``python -m repro bench`` times a fixed suite --
fast-mode fig6/fig9/fuzz-smoke plus a 120-core sweep-stress microbench --
and writes ``BENCH_<timestamp>.json`` into ``benchmarks/results/`` with
per-case wall-clock and simulator events/sec. Each run is compared against
the most recent previous ``BENCH_*.json`` so perf regressions fail loudly
(``--check-regression`` turns a regression into a non-zero exit).

The sweep-stress case runs twice on the paper's 8-socket/120-core machine:
once with the LATR active-state index (the default) and once with the
original full O(cores x queue_depth) scan (``use_sweep_index=False``). The
JSON records both wall-clocks and the speedup, and the two legs' complete
``StatsRegistry.summary()`` dicts are asserted identical -- the index must
never change a modelled result.

Two engine microbenches time the simulator-core optimisations against
their escape hatches on identical schedules (shared deterministic
xorshift RNG): **engine-stress** runs periodic + one-shot churn with
``use_timer_wheel`` on vs off, asserting the ``(time, seq)`` execution
orders match and recording ``speedup_vs_heap``; **invalidate-stress**
replays a fill/invalidate_range/flush mix with ``use_tlb_index`` on vs
off, asserting dropped-counts, entries and ``stats()`` match and
recording ``speedup_vs_scan``. A mismatch fails the bench.

The mc-snapshot case runs one exhaustive model-checker exploration twice:
backtracking via executor ``fork()``/``restore()`` snapshots (the default)
and via honest prefix replay (``use_snapshots=False``). Both legs must
reach the same verdict, node count and canonical state-hash set
(``hashes_match``), and the snapshot leg must be at least
``MC_SNAPSHOT_MIN_SPEEDUP`` times faster (``speedup_ok``) -- the explorer
silently falling back to replay fails the bench.

The openloop-stress case runs the open-loop service workload (the ``slo``
experiment's engine) on the 120-core box twice: with the batched
``touch_pages`` fault path (the default) and with the per-page generic
path (``use_batched_faults=False``). The legs' metrics and counters must
be identical (``tables_match``), and the batched leg must clear an
absolute simulator-throughput floor, ``OPENLOOP_MIN_EVENTS_PER_SEC``
(``events_floor_ok``) -- best-of up to ``OPENLOOP_FLOOR_ROUNDS`` timing
rounds, since absolute rates swing with host phase.

The fleet-stress case lights up the dormant 16-socket/960-core fleet
spec: many concurrent drivers churn mmap/touch/remote-touch/munmap so
every tick all 960 cores sweep a long LATR active-state list. It runs
twice -- the packed hot-state representations (SoA state queues, packed
TLB slots, slab frame frees: the defaults) and the object model (all
three escape hatches off) -- asserting the complete stats summaries are
identical (``tables_match``) and gating the packed leg on an absolute
events/s floor (``events_floor_ok``) plus a minimum speedup over the
object leg (``packed_speedup_ok``).

The all-fast-parallel case (full suite only) runs every registered
experiment in fast mode twice -- serially, then with the run cells sharded
over one worker process per CPU -- and records the jobs=1 vs jobs=N
speedup. The two legs' rendered tables are asserted byte-identical
(``tables_match``); a mismatch fails the bench like a stats divergence.

JSON format (one file per run)::

    {
      "schema": 1,
      "created": "2026-08-06T12:34:56",
      "quick": false,
      "python": "3.11.9",
      "threshold_pct": 25.0,
      "cases": {
        "fig6-fast": {"wall_s": 0.21, "events": 412345, "events_per_sec": 1.9e6},
        ...,
        "sweep-stress-120c": {
          "wall_s": 1.8, "events": ..., "events_per_sec": ...,
          "full_scan_wall_s": 9.4, "speedup_vs_full_scan": 5.2,
          "stats_match": true
        }
      },
      "comparison": {"previous": "BENCH_...json", "regressions": []}
    }
"""

from __future__ import annotations

import glob
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

DEFAULT_BENCH_DIR = os.path.join("benchmarks", "results")
DEFAULT_THRESHOLD_PCT = 25.0
SCHEMA_VERSION = 1

#: Simulated milliseconds the sweep-stress microbench runs for. Long enough
#: that tick sweeps dominate the one-off machine-build cost, so the indexed
#: vs full-scan wall-clock ratio reflects the sweep hot path.
SWEEP_STRESS_MS = 60
SWEEP_STRESS_MS_QUICK = 20

#: Events the engine-stress microbench executes (pure Simulator churn:
#: periodic timers plus one-shot schedules at mixed horizons, with
#: cancellations). Run twice -- timer wheel on and off -- and the two legs'
#: (time, seq) execution orders must be identical.
ENGINE_STRESS_EVENTS = 120_000
ENGINE_STRESS_EVENTS_QUICK = 30_000

#: Operations the invalidate-stress microbench performs against a bare Tlb
#: (fills across many PCIDs, range invalidations, per-PCID flushes). Run
#: twice -- per-pcid index on and off -- and the two legs' drop counts,
#: surviving entries, and counter stats must be identical.
INVALIDATE_STRESS_OPS = 6_000
INVALIDATE_STRESS_OPS_QUICK = 1_500

#: (cores, pages, ops) scope of the mc-snapshot microbench: exhaustive DPOR
#: exploration run twice, once backtracking via executor fork/restore
#: snapshots and once via honest prefix replay. The two legs must visit the
#: same node count and canonical state set; their wall-clock ratio is the
#: snapshot machinery's speedup and is gated at MC_SNAPSHOT_MIN_SPEEDUP.
#: A wide machine (4 cores, the mc CLI's core cap) is the representative
#: load: every replayed prefix starts with a fresh 4-core boot, which is
#: exactly the cost restore() avoids, and deeper page pressure (3 slots)
#: keeps LATR states live across more of each trace. Quick and full runs
#: share the scope so their baselines compare.
MC_SNAPSHOT_SCOPE = (4, 3, 5)
MC_SNAPSHOT_SCOPE_QUICK = (4, 3, 5)
MC_SNAPSHOT_MIN_SPEEDUP = 5.0

#: Fixed scope of the openloop-stress microbench: the open-loop service
#: workload on the 120-core box, offered load held below the Linux
#: capacity knee so the measured window is steady state (no unbounded
#: backlog distorting later rounds), with long per-request service times
#: so the arrival path -- dispatch, per-request mmap/touch/munmap, and
#: execute quanta -- dominates the event mix. Quick and full runs share
#: the scope so their baselines compare.
OPENLOOP_STRESS_SCOPE = dict(
    machine="large-numa-8s120c",
    mechanism="linux",
    offered_kreq_s=5.0,
    request_work_ns=8_000_000,
    request_pages=1,
    conn_churn_per_sec=0.0,
    warmup_ms=5,
    duration_ms=100,
)

#: Absolute simulator-throughput floor for the openloop-stress case. The
#: open-loop hot path's trajectory across baselines is 49.6k -> 170k ->
#: this stop at >=300k events/s, reached by the batched fault path (flat
#: per-page loop under one mmap_sem hold, no nested generator frames or
#: redundant walks). Absolute wall-clock rates swing with host phase, so
#: the case times up to OPENLOOP_FLOOR_ROUNDS batched rounds and gates on
#: the best -- a structural slowdown still fails every round.
OPENLOOP_MIN_EVENTS_PER_SEC = 300_000.0
OPENLOOP_FLOOR_ROUNDS = 8

#: Fixed scope of the fleet-stress microbench: the 16-socket/960-core
#: fleet spec under many concurrent mmap/touch/remote-touch/munmap
#: drivers, so every tick all 960 cores sweep a long active-state list
#: while the TLB fill/invalidate and frame alloc/free paths churn. This
#: is the load the packed hot state exists for: the same case runs twice,
#: once with the packed representations (SoA LATR queues, int-encoded TLB
#: slots, slab frame frees -- the defaults) and once with all three
#: escape hatches off (the object model), and the two legs' complete
#: ``StatsRegistry.summary()`` dicts must be identical. Quick and full
#: runs share the scope so their baselines compare.
FLEET_STRESS_SCOPE = dict(
    machine="fleet-16s960c",
    drivers=96,
    pages=4,
    touchers=3,
    duration_ms=8,
)

#: Required events/s advantage of the packed leg over the object-model
#: leg at 960 cores, and the packed leg's absolute simulator-throughput
#: floor. The sweep at this scale is list-indexed bitmask tests over the
#: queues' parallel arrays with tabled pull costs and one batched LLC
#: traffic add per sweep; the object model pays per-state sets, property
#: calls and per-pull bound-method dispatch. Absolute rates swing with
#: host phase, so the case times up to FLEET_FLOOR_ROUNDS packed rounds
#: and gates on the best.
FLEET_MIN_SPEEDUP = 1.5
FLEET_MIN_EVENTS_PER_SEC = 20_000.0
FLEET_FLOOR_ROUNDS = 6


# ---------------------------------------------------------------------------
# Timed execution
# ---------------------------------------------------------------------------


@dataclass
class CaseResult:
    """One timed suite entry."""

    name: str
    wall_s: float
    events: int
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "wall_s": round(self.wall_s, 4),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
        }
        out.update(self.extra)
        return out


def _timed(fn: Callable[[], object], rounds: int = 1) -> Tuple[float, int, object]:
    """Run ``fn`` returning (wall seconds, simulator events executed, result).

    With ``rounds > 1`` this is best-of-N: a single-shot wall clock taken
    mid-suite swings tens of percent with allocator and cyclic-GC state
    left by earlier cases, so the microbench cases time each (deterministic)
    leg a few times after a collect and keep the minimum -- the stable
    statistic for a fixed workload."""
    import gc

    from .sim.engine import Simulator

    best: Optional[Tuple[float, int, object]] = None
    for _ in range(rounds):
        if rounds > 1:
            gc.collect()
        events_before = Simulator.total_events_executed
        started = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - started
        events = Simulator.total_events_executed - events_before
        if best is None or wall < best[0]:
            best = (wall, events, result)
    return best


# ---------------------------------------------------------------------------
# The sweep-stress microbench
# ---------------------------------------------------------------------------


def run_sweep_stress(
    duration_ms: int = SWEEP_STRESS_MS,
    use_sweep_index: bool = True,
    machine: str = "large-numa-8s120c",
) -> Dict[str, object]:
    """Tick-dominated load on the big box: a task pinned to every core (so
    every core sweeps every tick) while core 0 keeps a trickle of munmaps
    posting LATR states that a scatter of remote cores has cached. Returns
    the final ``StatsRegistry.summary()`` so callers can assert the indexed
    and full-scan runs are modelled identically."""
    from . import build_system
    from .mm.addr import PAGE_SIZE
    from .sim.engine import MSEC, AllOf, Timeout

    system = build_system(
        "latr", machine=machine, seed=7, use_sweep_index=use_sweep_index
    )
    kernel = system.kernel
    cores = kernel.machine.cores
    proc = kernel.create_process("sweep-stress")
    tasks = [kernel.spawn_thread(proc, f"ss.t{core.id}", core.id) for core in cores]

    def touch(task, vrange):
        core = kernel.machine.core(task.home_core_id)
        yield from kernel.syscalls.touch_pages(task, core, vrange, write=False)

    def driver():
        t0, c0 = tasks[0], kernel.machine.core(0)
        rep = 0
        while True:
            vrange = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            # A few cacheing cores scattered across the sockets, rotating
            # with the rep count so sweeps keep pulling fresh remote state;
            # kept small so sweeps (not touches) dominate the wall-clock.
            remote = [tasks[(rep * 7 + i * 15 + 1) % len(tasks)] for i in range(4)]
            spawned = [
                system.sim.spawn(touch(task, vrange), name=f"ss.touch{task.tid}")
                for task in remote
            ]
            yield AllOf(spawned)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            rep += 1
            yield Timeout(MSEC)

    system.sim.spawn(driver(), name="sweep-stress-driver")
    system.sim.run(until=duration_ms * MSEC)
    return kernel.stats.summary()


def _sweep_stress_case(duration_ms: int) -> CaseResult:
    """Time both legs; report the indexed leg as the case proper and the
    full scan as its recorded pre-index baseline."""
    wall_idx, events_idx, summary_idx = _timed(
        lambda: run_sweep_stress(duration_ms, use_sweep_index=True), rounds=3
    )
    wall_full, _events_full, summary_full = _timed(
        lambda: run_sweep_stress(duration_ms, use_sweep_index=False), rounds=2
    )
    return CaseResult(
        name="sweep-stress-120c",
        wall_s=wall_idx,
        events=events_idx,
        extra={
            "sim_ms": duration_ms,
            "full_scan_wall_s": round(wall_full, 4),
            "speedup_vs_full_scan": round(wall_full / wall_idx, 2) if wall_idx > 0 else 0.0,
            "stats_match": summary_idx == summary_full,
        },
    )


# ---------------------------------------------------------------------------
# The pt-replication microbench (replicated vs single page table)
# ---------------------------------------------------------------------------


def run_pt_replication_stress(
    duration_ms: int = SWEEP_STRESS_MS,
    replicated: bool = True,
    machine: str = "large-numa-8s120c",
) -> Dict[str, object]:
    """Sweep-stress-shaped load through the numaPTE facade: core 0 keeps a
    trickle of mmaps/munmaps (each fanning out to every live replica when
    replication is on) while a rotating scatter of remote-socket cores
    touches the fresh range (each first touch a hardware walk, local under
    replication). ``replicated=False`` is the single-table leg of the
    wall-clock comparison: same mechanism, same op sequence, facade never
    built."""
    from . import build_system
    from .mm.addr import PAGE_SIZE
    from .sim.engine import MSEC, AllOf, Timeout

    system = build_system(
        "numapte", machine=machine, seed=7, use_pt_replication=replicated
    )
    kernel = system.kernel
    cores = kernel.machine.cores
    proc = kernel.create_process("pt-repl-stress")
    tasks = [kernel.spawn_thread(proc, f"pr.t{core.id}", core.id) for core in cores]

    def touch(task, vrange):
        core = kernel.machine.core(task.home_core_id)
        yield from kernel.syscalls.touch_pages(task, core, vrange, write=False)

    def driver():
        t0, c0 = tasks[0], kernel.machine.core(0)
        rep = 0
        while True:
            vrange = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            remote = [tasks[(rep * 7 + i * 15 + 1) % len(tasks)] for i in range(4)]
            spawned = [
                system.sim.spawn(touch(task, vrange), name=f"pr.touch{task.tid}")
                for task in remote
            ]
            yield AllOf(spawned)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            rep += 1
            yield Timeout(MSEC)

    system.sim.spawn(driver(), name="pt-repl-stress-driver")
    system.sim.run(until=duration_ms * MSEC)
    return kernel.stats.summary()


#: Replicated-walk bookkeeping budget: the facade (mirrored mutations,
#: local-replica lookup, pending-count drains) may cost at most this much
#: wall-clock over the identical single-table run.
PT_REPLICATION_MAX_OVERHEAD_PCT = 10.0
PT_REPLICATION_PAIR_ROUNDS = 8


def _pt_replication_case(duration_ms: int) -> CaseResult:
    """Time both legs; the replicated leg is the case proper, pinned to
    <= PT_REPLICATION_MAX_OVERHEAD_PCT wall-clock over the single table.

    The legs are interleaved round by round (rather than one ``_timed``
    block each) with the in-pair order alternating, after an untimed
    warmup of each: a leg that always runs first (or cold) eats the
    process warmup and allocator drift, and the overhead ratio swings
    tens of percent. The gated overhead is the best *pair* ratio (the
    mc-snapshot statistic): per-leg minima can come from different host
    phases and swing past the budget on a loaded single-CPU host, while
    adjacent in-round legs share their phase."""
    import gc

    from .sim.engine import Simulator

    for leg in (False, True):  # untimed warmup
        run_pt_replication_stress(duration_ms, replicated=leg)
    best: Dict[bool, Tuple[float, int, Dict[str, object]]] = {}
    pair_overheads = []
    for round_idx in range(PT_REPLICATION_PAIR_ROUNDS):
        order = (False, True) if round_idx % 2 == 0 else (True, False)
        pair: Dict[bool, float] = {}
        for leg in order:
            gc.collect()
            events_before = Simulator.total_events_executed
            started = time.perf_counter()
            summary = run_pt_replication_stress(duration_ms, replicated=leg)
            wall = time.perf_counter() - started
            events = Simulator.total_events_executed - events_before
            pair[leg] = wall
            if leg not in best or wall < best[leg][0]:
                best[leg] = (wall, events, summary)
        pair_overheads.append(
            (pair[True] / pair[False] - 1.0) * 100.0 if pair[False] > 0 else 0.0
        )
        # The budget is a property of the code, not of one noisy sample:
        # stop as soon as some phase-matched pair clears it.
        if min(pair_overheads) <= PT_REPLICATION_MAX_OVERHEAD_PCT:
            break
    wall_repl, events_repl, summary_repl = best[True]
    wall_single, _events_single, _summary_single = best[False]
    overhead_pct = min(pair_overheads) if pair_overheads else 0.0
    return CaseResult(
        name="pt-replication-120c",
        wall_s=wall_repl,
        events=events_repl,
        extra={
            "sim_ms": duration_ms,
            "single_table_wall_s": round(wall_single, 4),
            "pair_overhead_pcts": [round(p, 2) for p in pair_overheads],
            "overhead_pct": round(overhead_pct, 2),
            "max_overhead_pct": PT_REPLICATION_MAX_OVERHEAD_PCT,
            "overhead_ok": overhead_pct <= PT_REPLICATION_MAX_OVERHEAD_PCT,
            # Correctness ride-along: the replicated leg must never walk
            # remotely, and must actually be replicating.
            "replicas_ok": (
                "count.pt.walk.remote" not in summary_repl
                and summary_repl.get("count.pt.replica.updates", 0) > 0
            ),
        },
    )


# ---------------------------------------------------------------------------
# The engine-stress microbench (timer wheel vs plain heap)
# ---------------------------------------------------------------------------


def _xorshift(state: List[int]) -> int:
    """Deterministic 32-bit xorshift; the stress benches must replay the
    exact same schedule on both legs."""
    x = state[0]
    x ^= (x << 13) & 0xFFFFFFFF
    x ^= x >> 17
    x ^= (x << 5) & 0xFFFFFFFF
    state[0] = x
    return x


def run_engine_stress(
    n_events: int = ENGINE_STRESS_EVENTS,
    use_timer_wheel: bool = True,
    record_order: bool = False,
):
    """Pure event-loop churn, no kernel model: eight periodic generators
    keep scheduling one-shot timers whose delays are spread across the
    wheel's three placement regimes (current slot, in-horizon bucket,
    overflow heap) and cancel a deterministic subset. Returns
    ``(simulator, order_log)``; the order log (when recorded) is the
    executed ``(time, seq)`` sequence, which must not depend on
    ``use_timer_wheel``."""
    from .sim.engine import Simulator

    sim = Simulator(use_timer_wheel=use_timer_wheel)
    if record_order:
        sim.order_log = []
    rng = [0x2545F491]
    cancel_pool: List[object] = []

    def noop() -> None:
        pass

    def churn() -> None:
        for _ in range(3):
            r = _xorshift(rng)
            kind = r % 16
            if kind < 8:
                # Near events: land in the active slot or the next few.
                delay = 1 + (r >> 4) % 4_000
            elif kind < 14:
                # Mid events: inside the wheel horizon (~2.1 ms).
                delay = 4_096 + (r >> 4) % 2_000_000
            else:
                # Far events: past the horizon, into the overflow heap.
                delay = 2_200_000 + (r >> 4) % 50_000_000
            handle = sim.after(delay, noop)
            if r & 1:
                cancel_pool.append(handle)
        while len(cancel_pool) > 32:
            victim = cancel_pool.pop(_xorshift(rng) % len(cancel_pool))
            victim.cancel()

    for i in range(8):
        sim.every(7_000 + 911 * i, churn, start=503 * i)
    sim.run(max_events=n_events)
    return sim, sim.order_log


def _engine_stress_case(n_events: int) -> CaseResult:
    """Time both legs; the wheel leg is the case proper, the binary-heap
    leg its recorded baseline. Identical execution order is a hard gate."""
    wall_wheel, events_wheel, (_sim_w, order_wheel) = _timed(
        lambda: run_engine_stress(n_events, use_timer_wheel=True, record_order=True),
        rounds=3,
    )
    wall_heap, _events_heap, (_sim_h, order_heap) = _timed(
        lambda: run_engine_stress(n_events, use_timer_wheel=False, record_order=True),
        rounds=2,
    )
    return CaseResult(
        name="engine-stress",
        wall_s=wall_wheel,
        events=events_wheel,
        extra={
            "n_events": n_events,
            "heap_wall_s": round(wall_heap, 4),
            "speedup_vs_heap": round(wall_heap / wall_wheel, 2) if wall_wheel > 0 else 0.0,
            "order_match": order_wheel == order_heap,
        },
    )


# ---------------------------------------------------------------------------
# The invalidate-stress microbench (per-pcid TLB index vs linear scan)
# ---------------------------------------------------------------------------


def run_invalidate_stress(
    ops: int = INVALIDATE_STRESS_OPS, use_index: bool = True
) -> Dict[str, object]:
    """Hammer one bare Tlb with a deterministic mix of fills (24 PCIDs,
    clustered vpns, occasional 2 MiB entries), range invalidations wide
    enough to overlap huge pages, and per-PCID flushes. Returns the final
    observable state -- drop count, surviving (pcid, vpn) keys in residence
    order, counter stats -- which must not depend on ``use_index``."""
    from .hw.tlb import HUGE_SPAN, Tlb, TlbEntry

    tlb = Tlb(capacity=4096, pcid_enabled=True, huge_capacity=128, use_index=use_index)
    rng = [0x9E3779B9]
    drops = 0
    for op in range(ops):
        r = _xorshift(rng)
        pcid = 1 + r % 24
        base = (r >> 8) % 1_000_000
        kind = op % 8
        if kind < 3:
            stride = (r >> 5) % 3 + 1
            for i in range(32):
                tlb.fill(pcid, base + i * stride, TlbEntry(pfn=op * 32 + i))
            if (r >> 3) % 4 == 0:
                tlb.fill_huge(
                    pcid, base - base % HUGE_SPAN, TlbEntry(pfn=op)
                )
        elif kind < 7:
            width = 8 + (r >> 6) % 4096
            drops += tlb.invalidate_range(pcid, base, base + width)
        else:
            drops += tlb.flush(pcid)
    return {
        "drops": drops,
        "entries": [key for key, _ in tlb.items()],
        "huge_entries": [key for key, _ in tlb.huge_items()],
        "stats": tlb.stats(),
    }


def _invalidate_stress_case(ops: int) -> CaseResult:
    """Time both legs; ``events`` is the op count (this bench runs no
    simulator). Identical final TLB state is a hard gate."""
    wall_idx, _ev, result_idx = _timed(
        lambda: run_invalidate_stress(ops, use_index=True), rounds=3
    )
    wall_scan, _ev, result_scan = _timed(
        lambda: run_invalidate_stress(ops, use_index=False), rounds=2
    )
    return CaseResult(
        name="invalidate-stress",
        wall_s=wall_idx,
        events=ops,
        extra={
            "ops": ops,
            "scan_wall_s": round(wall_scan, 4),
            "speedup_vs_scan": round(wall_scan / wall_idx, 2) if wall_idx > 0 else 0.0,
            "state_match": result_idx == result_scan,
        },
    )


# ---------------------------------------------------------------------------
# The mc-snapshot microbench (fork/restore backtracking vs prefix replay)
# ---------------------------------------------------------------------------


def run_mc_snapshot(
    cores: int, pages: int, ops: int, use_snapshots: bool
) -> Dict[str, object]:
    """One exhaustive model-checker run over the given scope (no mutation
    differential, hash collection on). Returns the verdict, the explored
    node count and the canonical state-hash set -- all of which must be
    identical between the snapshot and replay legs."""
    from .verify.mc.explorer import McConfig, McScope, run_mc

    report = run_mc(
        McConfig(
            scope=McScope(cores=cores, pages=pages, ops=ops),
            differential=False,
            collect_hashes=True,
            stop_on_first=False,
            use_snapshots=use_snapshots,
        )
    )
    hashes: set = set()
    nodes = 0
    for cell in report.cells:
        hashes |= set(cell.state_hashes)
        nodes += cell.nodes
    return {"verdict": report.verdict, "nodes": nodes, "hashes": hashes}


def _mc_snapshot_case(scope: Tuple[int, int, int], pairs: int = 3) -> CaseResult:
    """Time both legs as interleaved (snapshot, replay) pairs.

    A shared host swings either leg tens of percent between rounds, which
    a sequential best-of can pair pessimally (a throttled snapshot leg
    against a boosted replay leg). Interleaving keeps each ratio within
    one machine phase, and the best paired ratio is the stable statistic
    for the fixed, deterministic workload -- while a structural failure
    (the explorer silently falling back to prefix replay) still shows as
    ~1x in every pair. Two hard gates: the legs must visit identical
    (verdict, nodes, state set), and the best paired speedup must clear
    MC_SNAPSHOT_MIN_SPEEDUP."""
    import gc

    cores, pages, ops = scope
    runs = []
    for _ in range(pairs):
        gc.collect()
        snap_run = _timed(
            lambda: run_mc_snapshot(cores, pages, ops, use_snapshots=True)
        )
        gc.collect()
        replay_run = _timed(
            lambda: run_mc_snapshot(cores, pages, ops, use_snapshots=False)
        )
        runs.append((snap_run, replay_run))
    wall_snap, events_snap, res_snap = min(runs, key=lambda r: r[0][0])[0]
    wall_replay, _events_replay, res_replay = min(runs, key=lambda r: r[1][0])[1]
    pair_speedups = [
        round(r_run[0] / s_run[0], 2) if s_run[0] > 0 else 0.0
        for s_run, r_run in runs
    ]
    speedup = max(pair_speedups)
    states = len(res_snap["hashes"])
    return CaseResult(
        name="mc-snapshot",
        wall_s=wall_snap,
        events=events_snap,
        extra={
            "mc_scope": f"{cores}c{pages}p{ops}o",
            "nodes": res_snap["nodes"],
            "states": states,
            "states_per_sec": round(states / wall_snap, 1) if wall_snap > 0 else 0.0,
            "replay_wall_s": round(wall_replay, 4),
            "pair_speedups": pair_speedups,
            "speedup_vs_replay": speedup,
            "min_speedup": MC_SNAPSHOT_MIN_SPEEDUP,
            "speedup_ok": speedup >= MC_SNAPSHOT_MIN_SPEEDUP,
            "hashes_match": (
                res_snap["verdict"] == res_replay["verdict"]
                and res_snap["nodes"] == res_replay["nodes"]
                and res_snap["hashes"] == res_replay["hashes"]
            ),
        },
    )


# ---------------------------------------------------------------------------
# The openloop-stress microbench (batched fault path vs per-page generic)
# ---------------------------------------------------------------------------


def run_openloop_stress(use_batched_faults: bool = True) -> Dict[str, object]:
    """One open-loop run at the fixed stress scope. Returns the complete
    observable outcome -- headline metrics plus the raw counter snapshot --
    which must not depend on ``use_batched_faults``: the batched path is a
    pure wall-clock optimisation and may never change a modelled result."""
    from .workloads.openloop import run_openloop

    result = run_openloop(
        use_batched_faults=use_batched_faults, **OPENLOOP_STRESS_SCOPE
    )
    return {"metrics": dict(result.metrics), "counters": dict(result.counters)}


def _openloop_stress_case() -> CaseResult:
    """Time the batched leg until it clears the absolute events/s floor
    (best-of up to OPENLOOP_FLOOR_ROUNDS -- the host phase swings a leg
    tens of percent, and the floor is a property of the code, not of one
    noisy sample), then the per-page generic leg as its recorded baseline.
    Two hard gates: identical metrics+counters between the legs
    (``tables_match``) and the batched events/s floor (``events_floor_ok``)."""
    import gc

    best: Optional[Tuple[float, int, object]] = None
    rounds = 0
    for _ in range(OPENLOOP_FLOOR_ROUNDS):
        gc.collect()
        run = _timed(lambda: run_openloop_stress(use_batched_faults=True))
        rounds += 1
        if best is None or run[0] < best[0]:
            best = run
        if best[1] / best[0] >= OPENLOOP_MIN_EVENTS_PER_SEC:
            break
    wall_batched, events_batched, outcome_batched = best
    wall_generic, _events_generic, outcome_generic = _timed(
        lambda: run_openloop_stress(use_batched_faults=False), rounds=2
    )
    events_per_sec = events_batched / wall_batched if wall_batched > 0 else 0.0
    return CaseResult(
        name="openloop-stress-120c",
        wall_s=wall_batched,
        events=events_batched,
        extra={
            "sim_ms": OPENLOOP_STRESS_SCOPE["duration_ms"],
            "floor_rounds": rounds,
            "generic_wall_s": round(wall_generic, 4),
            "speedup_vs_generic": (
                round(wall_generic / wall_batched, 2) if wall_batched > 0 else 0.0
            ),
            "min_events_per_sec": OPENLOOP_MIN_EVENTS_PER_SEC,
            "events_floor_ok": events_per_sec >= OPENLOOP_MIN_EVENTS_PER_SEC,
            "tables_match": outcome_batched == outcome_generic,
        },
    )


# ---------------------------------------------------------------------------
# The fleet-stress microbench (packed hot state vs the object model)
# ---------------------------------------------------------------------------


def run_fleet_stress(
    packed: bool = True, scope: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """FLEET_STRESS_SCOPE's churn on the 960-core fleet box: every driver
    process pins a task to every core, then loops mmap / local write touch /
    a rotating scatter of remote read touches / munmap, so LATR states post
    from many owner cores and stay live while all 960 cores sweep each
    tick. ``packed=False`` is the object-model leg: same machine, same op
    sequence, all three packed-representation escape hatches off. Returns
    the final ``StatsRegistry.summary()`` so the case can assert the legs
    are modelled identically. ``scope`` overrides FLEET_STRESS_SCOPE (the
    CI fleet-smoke runs a shorter leg than the bench)."""
    from . import build_system
    from .mm.addr import PAGE_SIZE
    from .sim.engine import MSEC, AllOf, Timeout

    scope = scope or FLEET_STRESS_SCOPE
    flags = (
        {}
        if packed
        else dict(use_packed_tlb=False, use_frame_slabs=False, use_soa_states=False)
    )
    system = build_system("latr", machine=scope["machine"], seed=7, **flags)
    kernel = system.kernel
    n_cores = len(kernel.machine.cores)
    n_drivers = scope["drivers"]
    n_pages = scope["pages"]
    n_touchers = scope["touchers"]
    procs = [kernel.create_process(f"fleet{p}") for p in range(n_drivers)]
    tasks = [
        [kernel.spawn_thread(proc, f"fleet{p}.t{c}", c) for c in range(n_cores)]
        for p, proc in enumerate(procs)
    ]

    def touch(task, vrange):
        core = kernel.machine.core(task.home_core_id)
        yield from kernel.syscalls.touch_pages(task, core, vrange, write=False)

    def driver(p):
        home = (p * 17) % n_cores
        t0 = tasks[p][home]
        c0 = kernel.machine.core(home)
        rep = 0
        while True:
            vrange = yield from kernel.syscalls.mmap(t0, c0, n_pages * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            # Remote cacheing cores rotate with the rep count so sweeps
            # keep pulling fresh cross-socket state lines.
            remote = [
                tasks[p][(rep * 37 + i * 131 + home + 1) % n_cores]
                for i in range(n_touchers)
            ]
            spawned = [
                system.sim.spawn(touch(task, vrange), name=f"fleet.touch{task.tid}")
                for task in remote
            ]
            yield AllOf(spawned)
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            rep += 1
            yield Timeout(MSEC // 8)

    for p in range(n_drivers):
        system.sim.spawn(driver(p), name=f"fleet-driver{p}")
    system.sim.run(until=scope["duration_ms"] * MSEC)
    return kernel.stats.summary()


def _fleet_stress_case() -> CaseResult:
    """Time the two legs in interleaved (packed, object) pairs, keeping the
    per-leg minimum wall -- the workload is deterministic and both legs
    share each round's host phase, so min-over-pairs is the stable
    statistic for the ratio -- until the gates clear or FLEET_FLOOR_ROUNDS
    pairs are spent. Three hard gates: identical stats summaries between
    the legs (``tables_match``), the packed leg's events/s floor
    (``events_floor_ok``), and the packed-vs-objects speedup floor
    (``packed_speedup_ok``)."""
    import gc

    best: Optional[Tuple[float, int, object]] = None
    wall_obj = float("inf")
    summary_obj = None
    rounds = 0
    for _ in range(FLEET_FLOOR_ROUNDS):
        gc.collect()
        run = _timed(lambda: run_fleet_stress(packed=True))
        obj = _timed(lambda: run_fleet_stress(packed=False))
        rounds += 1
        if best is None or run[0] < best[0]:
            best = run
        if obj[0] < wall_obj:
            wall_obj = obj[0]
            summary_obj = obj[2]
        if (
            best[1] / best[0] >= FLEET_MIN_EVENTS_PER_SEC
            and wall_obj / best[0] >= FLEET_MIN_SPEEDUP
        ):
            break
    wall_packed, events_packed, summary_packed = best
    events_per_sec = events_packed / wall_packed if wall_packed > 0 else 0.0
    speedup = wall_obj / wall_packed if wall_packed > 0 else 0.0
    return CaseResult(
        name="fleet-stress-960c",
        wall_s=wall_packed,
        events=events_packed,
        extra={
            "sim_ms": FLEET_STRESS_SCOPE["duration_ms"],
            "drivers": FLEET_STRESS_SCOPE["drivers"],
            "floor_rounds": rounds,
            "object_wall_s": round(wall_obj, 4),
            "speedup_vs_objects": round(speedup, 2),
            "min_speedup": FLEET_MIN_SPEEDUP,
            "packed_speedup_ok": speedup >= FLEET_MIN_SPEEDUP,
            "min_events_per_sec": FLEET_MIN_EVENTS_PER_SEC,
            "events_floor_ok": events_per_sec >= FLEET_MIN_EVENTS_PER_SEC,
            "tables_match": summary_packed == summary_obj,
        },
    )


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------


def _experiment_case(exp_id: str) -> CaseResult:
    from .experiments import run_experiment

    wall, events, result = _timed(lambda: run_experiment(exp_id, fast=True))
    return CaseResult(
        name=f"{exp_id}-fast", wall_s=wall, events=events,
        extra={"rows": len(result.rows)},
    )


def _all_parallel_case(jobs: Optional[int] = None) -> CaseResult:
    """``repro all --fast`` serially, then again sharded over ``jobs``
    worker processes. Records the speedup and asserts the rendered tables
    are byte-identical (``tables_match`` fails the bench when not).

    On a single-CPU host the parallel leg is skipped (sharding one core
    only measures pool overhead) and the speedup is reported as 1.0."""
    from .experiments import available_experiments, run_many

    exp_ids = available_experiments()
    jobs = jobs if jobs is not None else (os.cpu_count() or 1)
    wall_serial, _parent_events, serial_runs = _timed(
        lambda: run_many(exp_ids, fast=True, jobs=1)
    )
    serial_tables = [run.result.render() for run in serial_runs]
    events = sum(run.events for run in serial_runs)
    cells = sum(len(run.outcomes) for run in serial_runs)
    extra: Dict[str, object] = {
        "experiments": len(exp_ids),
        "cells": cells,
        "jobs": jobs,
        "serial_wall_s": round(wall_serial, 4),
    }
    if jobs > 1:
        wall_par, _parent_events, parallel_runs = _timed(
            lambda: run_many(exp_ids, fast=True, jobs=jobs)
        )
        parallel_tables = [run.result.render() for run in parallel_runs]
        extra["speedup_vs_serial"] = (
            round(wall_serial / wall_par, 2) if wall_par > 0 else 0.0
        )
        extra["tables_match"] = parallel_tables == serial_tables
        wall = wall_par
    else:
        extra["speedup_vs_serial"] = 1.0
        extra["note"] = "single-CPU host: parallel leg skipped"
        wall = wall_serial
    return CaseResult(name="all-fast-parallel", wall_s=wall, events=events, extra=extra)


def bench_suite(quick: bool = False) -> List[Callable[[], CaseResult]]:
    """The fixed suite, as thunks (so case failures are attributable)."""
    if quick:
        return [
            lambda: _experiment_case("fig6"),
            lambda: _engine_stress_case(ENGINE_STRESS_EVENTS_QUICK),
            lambda: _invalidate_stress_case(INVALIDATE_STRESS_OPS_QUICK),
            lambda: _mc_snapshot_case(MC_SNAPSHOT_SCOPE_QUICK, pairs=2),
            lambda: _sweep_stress_case(SWEEP_STRESS_MS_QUICK),
            # Full duration even in quick mode: at 20 sim-ms each leg is
            # ~25 ms wall and timer jitter alone can swing the overhead
            # ratio past the 10% budget.
            lambda: _pt_replication_case(SWEEP_STRESS_MS),
            _openloop_stress_case,
            _fleet_stress_case,
        ]
    return [
        lambda: _experiment_case("fig6"),
        lambda: _experiment_case("fig9"),
        lambda: _experiment_case("fuzz-smoke"),
        lambda: _engine_stress_case(ENGINE_STRESS_EVENTS),
        lambda: _invalidate_stress_case(INVALIDATE_STRESS_OPS),
        lambda: _mc_snapshot_case(MC_SNAPSHOT_SCOPE),
        lambda: _sweep_stress_case(SWEEP_STRESS_MS),
        lambda: _pt_replication_case(SWEEP_STRESS_MS),
        _openloop_stress_case,
        _fleet_stress_case,
        lambda: _all_parallel_case(),
    ]


# ---------------------------------------------------------------------------
# Persistence + regression comparison
# ---------------------------------------------------------------------------


def previous_bench_file(bench_dir: str) -> Optional[str]:
    """Most recent BENCH_*.json already in ``bench_dir`` (lexicographic ==
    chronological, the filenames embed a sortable timestamp)."""
    files = sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json")))
    return files[-1] if files else None


def compare_to_previous(
    cases: Dict[str, Dict[str, object]],
    previous: Optional[Dict[str, object]],
    threshold_pct: float,
) -> List[str]:
    """Human-readable regression lines: cases whose wall-clock grew more
    than ``threshold_pct`` percent over the previous run's."""
    if not previous:
        return []
    regressions: List[str] = []
    prev_cases = previous.get("cases", {})
    for name, entry in cases.items():
        prev = prev_cases.get(name)
        if not isinstance(prev, dict):
            continue
        if any(
            prev.get(scale_key) != entry.get(scale_key)
            # Quick and full runs use different stress sizes, and
            # all-fast-parallel varies with the host CPU count; such
            # wall-clocks are not comparable.
            for scale_key in ("sim_ms", "jobs", "n_events", "ops", "mc_scope")
        ):
            continue
        prev_wall = prev.get("wall_s")
        wall = entry.get("wall_s")
        if not isinstance(prev_wall, (int, float)) or not isinstance(wall, (int, float)):
            continue
        if prev_wall > 0 and wall > prev_wall * (1.0 + threshold_pct / 100.0):
            regressions.append(
                f"{name}: {wall:.3f}s vs previous {prev_wall:.3f}s "
                f"(+{(wall / prev_wall - 1.0) * 100.0:.0f}%, threshold {threshold_pct:.0f}%)"
            )
    return regressions


def run_bench(
    bench_dir: str = DEFAULT_BENCH_DIR,
    quick: bool = False,
    check_regression: bool = False,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    suite: Optional[List[Callable[[], CaseResult]]] = None,
    echo: Callable[[str], None] = print,
) -> Tuple[Dict[str, object], int]:
    """Run the suite, write BENCH_<timestamp>.json, compare to the previous
    file. Returns (report dict, exit code): exit 1 means a case failed its
    own correctness check (sweep-stress stats mismatch) or, when
    ``check_regression`` is set, a wall-clock regression beyond threshold.
    Exit 2 means ``check_regression`` was requested but no committed
    BENCH_*.json baseline exists to compare against."""
    os.makedirs(bench_dir, exist_ok=True)
    prev_path = previous_bench_file(bench_dir)
    previous = None
    if prev_path:
        try:
            with open(prev_path) as fh:
                previous = json.load(fh)
        except (OSError, json.JSONDecodeError):
            echo(f"warning: could not read previous bench file {prev_path}")
    if check_regression and previous is None:
        echo(
            f"error: --check-regression requires a committed BENCH_*.json "
            f"baseline in {bench_dir}, and none was found (or it was "
            f"unreadable); run `python -m repro bench` once and commit the "
            f"result"
        )
        return {}, 2

    cases: Dict[str, Dict[str, object]] = {}
    failed = False
    for thunk in suite if suite is not None else bench_suite(quick):
        case = thunk()
        cases[case.name] = case.to_json()
        line = (
            f"  {case.name:<20} {case.wall_s:7.3f}s  "
            f"{case.events_per_sec:>12,.0f} events/s"
        )
        if "speedup_vs_full_scan" in case.extra:
            line += (
                f"  (full scan {case.extra['full_scan_wall_s']}s, "
                f"{case.extra['speedup_vs_full_scan']}x speedup)"
            )
        if "speedup_vs_heap" in case.extra:
            line += (
                f"  (heap {case.extra['heap_wall_s']}s, "
                f"{case.extra['speedup_vs_heap']}x speedup)"
            )
        if "speedup_vs_scan" in case.extra:
            line += (
                f"  (scan {case.extra['scan_wall_s']}s, "
                f"{case.extra['speedup_vs_scan']}x speedup)"
            )
        if "speedup_vs_replay" in case.extra:
            line += (
                f"  (replay {case.extra['replay_wall_s']}s, "
                f"{case.extra['speedup_vs_replay']}x speedup, "
                f"{case.extra['states_per_sec']} states/s)"
            )
        if "speedup_vs_generic" in case.extra:
            line += (
                f"  (generic {case.extra['generic_wall_s']}s, "
                f"{case.extra['speedup_vs_generic']}x speedup)"
            )
        if "speedup_vs_objects" in case.extra:
            line += (
                f"  (objects {case.extra['object_wall_s']}s, "
                f"{case.extra['speedup_vs_objects']}x speedup)"
            )
        if "single_table_wall_s" in case.extra:
            line += (
                f"  (single table {case.extra['single_table_wall_s']}s, "
                f"{case.extra['overhead_pct']:+.1f}% overhead)"
            )
        if "speedup_vs_serial" in case.extra:
            line += (
                f"  (serial {case.extra['serial_wall_s']}s, "
                f"{case.extra['speedup_vs_serial']}x speedup on "
                f"{case.extra['jobs']} jobs)"
            )
        echo(line)
        if case.extra.get("stats_match") is False:
            echo(f"  {case.name}: FAIL -- indexed and full-scan stats diverge")
            failed = True
        if case.extra.get("tables_match") is False:
            echo(f"  {case.name}: FAIL -- the two legs' tables/stats diverge")
            failed = True
        if case.extra.get("order_match") is False:
            echo(f"  {case.name}: FAIL -- wheel and heap event orders diverge")
            failed = True
        if case.extra.get("state_match") is False:
            echo(f"  {case.name}: FAIL -- indexed and scan TLB states diverge")
            failed = True
        if case.extra.get("hashes_match") is False:
            echo(
                f"  {case.name}: FAIL -- snapshot and replay exploration "
                f"diverge (verdict/nodes/state set)"
            )
            failed = True
        if case.extra.get("events_floor_ok") is False:
            echo(
                f"  {case.name}: FAIL -- {case.events_per_sec:,.0f} events/s "
                f"below the {case.extra.get('min_events_per_sec'):,.0f} floor "
                f"after {case.extra.get('floor_rounds')} round(s)"
            )
            failed = True
        if case.extra.get("overhead_ok") is False:
            echo(
                f"  {case.name}: FAIL -- replication bookkeeping overhead "
                f"{case.extra.get('overhead_pct')}% over the single table "
                f"exceeds the {case.extra.get('max_overhead_pct')}% budget"
            )
            failed = True
        if case.extra.get("replicas_ok") is False:
            echo(
                f"  {case.name}: FAIL -- replicated leg walked remotely "
                f"or never fanned out an update"
            )
            failed = True
        if case.extra.get("speedup_ok") is False:
            echo(
                f"  {case.name}: FAIL -- snapshot backtracking speedup "
                f"{case.extra.get('speedup_vs_replay')}x below the "
                f"{case.extra.get('min_speedup')}x floor"
            )
            failed = True
        if case.extra.get("packed_speedup_ok") is False:
            echo(
                f"  {case.name}: FAIL -- packed-representation speedup "
                f"{case.extra.get('speedup_vs_objects')}x over the object "
                f"model below the {case.extra.get('min_speedup')}x floor"
            )
            failed = True

    regressions = compare_to_previous(cases, previous, threshold_pct)
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": quick,
        "python": platform.python_version(),
        "threshold_pct": threshold_pct,
        "cases": cases,
        "comparison": {
            "previous": os.path.basename(prev_path) if prev_path else None,
            "regressions": regressions,
        },
    }
    out_path = os.path.join(
        bench_dir, f"BENCH_{time.strftime('%Y%m%d-%H%M%S')}.json"
    )
    with open(out_path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    echo(f"wrote {out_path}")

    for line in regressions:
        echo(f"  REGRESSION: {line}")
    if not regressions and prev_path:
        echo(f"  no regressions vs {os.path.basename(prev_path)}")

    exit_code = 1 if failed or (check_regression and regressions) else 0
    return report, exit_code
