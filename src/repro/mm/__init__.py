"""Memory-management substrate: frames, page tables, VMAs, address spaces."""

from .addr import (
    HUGE_PAGE_PAGES,
    HUGE_PAGE_SIZE,
    PAGE_SHIFT,
    PAGE_SIZE,
    VADDR_LIMIT,
    VirtRange,
    addr_of,
    page_align_down,
    page_align_up,
    vpn_of,
)
from .fault import FaultKind, FaultResult, SegmentationFault
from .frames import FrameAllocator, FrameAllocatorError
from .mmstruct import MMAP_BASE, MmStruct
from .pagecache import PageCache
from .pagetable import PageTable, ReplicatedPageTable
from .pte import Pte, PteFlags, make_huge_pte, make_present_pte, make_swap_pte
from .vma import Prot, Vma, VmaKind, VmaSet, VmaSetError

__all__ = [
    "FaultKind",
    "FaultResult",
    "FrameAllocator",
    "FrameAllocatorError",
    "HUGE_PAGE_PAGES",
    "HUGE_PAGE_SIZE",
    "MMAP_BASE",
    "MmStruct",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageCache",
    "PageTable",
    "Prot",
    "Pte",
    "PteFlags",
    "ReplicatedPageTable",
    "SegmentationFault",
    "VADDR_LIMIT",
    "VirtRange",
    "Vma",
    "VmaKind",
    "VmaSet",
    "VmaSetError",
    "addr_of",
    "make_huge_pte",
    "make_present_pte",
    "make_swap_pte",
    "page_align_down",
    "page_align_up",
    "vpn_of",
]
