"""Four-level radix page table (x86-64 style: PML4 -> PDPT -> PD -> PT).

Nine VPN bits select the slot at each level. Interior nodes are dicts so
sparse address spaces stay cheap; the structure still gives realistic
walk/teardown behaviour (levels allocated on demand, freed when empty) and
lets tests compare against a flat shadow model.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Iterator, Optional, Tuple

from .addr import HUGE_PAGE_PAGES, VirtRange, huge_base_vpn, is_huge_aligned
from .pte import Pte

LEVELS = 4
BITS_PER_LEVEL = 9
SLOTS_PER_LEVEL = 1 << BITS_PER_LEVEL

#: Process-global version numbers for page-table change tracking;
#: values are never reused, so equal versions imply identical contents
#: (same contract as ``repro.hw.tlb._VERSIONS``).
_VERSIONS = count(1)


def _indices(vpn: int) -> Tuple[int, int, int, int]:
    """Split a VPN into (pml4, pdpt, pd, pt) slot indices."""
    pt = vpn & (SLOTS_PER_LEVEL - 1)
    pd = (vpn >> BITS_PER_LEVEL) & (SLOTS_PER_LEVEL - 1)
    pdpt = (vpn >> (2 * BITS_PER_LEVEL)) & (SLOTS_PER_LEVEL - 1)
    pml4 = (vpn >> (3 * BITS_PER_LEVEL)) & (SLOTS_PER_LEVEL - 1)
    return pml4, pdpt, pd, pt


class PageTable:
    """A process's page table; one per MmStruct."""

    def __init__(self):
        self._root: Dict[int, Dict] = {}
        self._count = 0
        #: PD-level 2 MiB mappings: base_vpn -> Pte with the HUGE flag.
        #: (Kept in a side table for clarity; semantically these live in
        #: the PD slot that would otherwise point at a PT page.)
        self._huge: Dict[int, Pte] = {}
        #: table-page allocations, for memory-overhead accounting
        self.table_pages_allocated = 1  # the root
        #: Optional ``observer(event, vpn)`` invoked after every mutation
        #: (the InvariantMonitor's continuous-checking hook).
        self.observer = None
        #: Bumped on any mutation; keys snapshot/restore/canonical skip
        #: paths (never rewound except together with the contents).
        self._version = next(_VERSIONS)

    def __len__(self) -> int:
        return self._count

    def walk(self, vpn: int) -> Optional[Pte]:
        """Hardware walk: return the PTE for ``vpn`` or None.

        A huge mapping covering ``vpn`` wins (the walk stops at the PD)."""
        huge = self._huge.get(huge_base_vpn(vpn))
        if huge is not None:
            return huge
        node = self._root
        pml4, pdpt, pd, pt = _indices(vpn)
        for idx in (pml4, pdpt, pd):
            node = node.get(idx)
            if node is None:
                return None
        return node.get(pt)

    # ---- huge (2 MiB) mappings ----------------------------------------------

    def set_huge_pte(self, base_vpn: int, pte: Pte) -> None:
        """Install a PD-level 2 MiB entry. The 512-page range must be free
        of 4 KiB entries (khugepaged clears them before collapsing)."""
        self._version = next(_VERSIONS)
        if not is_huge_aligned(base_vpn):
            raise ValueError(f"huge mapping not 2MiB-aligned: vpn {base_vpn:#x}")
        if not pte.huge:
            raise ValueError("set_huge_pte needs a HUGE-flagged pte")
        covered = VirtRange.from_pages(base_vpn, HUGE_PAGE_PAGES)
        for vpn in covered.vpns():
            if self._walk_4k(vpn) is not None:
                raise ValueError(f"4K entry at {vpn:#x} blocks huge mapping")
        self._huge[base_vpn] = pte
        if self.observer is not None:
            self.observer("set_huge", base_vpn)

    def clear_huge_pte(self, base_vpn: int) -> Optional[Pte]:
        self._version = next(_VERSIONS)
        prev = self._huge.pop(base_vpn, None)
        if prev is not None and self.observer is not None:
            self.observer("clear_huge", base_vpn)
        return prev

    def huge_in_range(self, vrange: VirtRange):
        """(base_vpn, pte) for huge mappings fully inside ``vrange``."""
        for base_vpn, pte in sorted(self._huge.items()):
            if vrange.vpn_start <= base_vpn and base_vpn + HUGE_PAGE_PAGES <= vrange.vpn_end:
                yield base_vpn, pte

    def huge_count(self) -> int:
        return len(self._huge)

    def _walk_4k(self, vpn: int) -> Optional[Pte]:
        node = self._root
        pml4, pdpt, pd, pt = _indices(vpn)
        for idx in (pml4, pdpt, pd):
            node = node.get(idx)
            if node is None:
                return None
        return node.get(pt)

    def set_pte(self, vpn: int, pte: Pte) -> Optional[Pte]:
        """Install a 4 KiB PTE; returns the previous entry if any."""
        self._version = next(_VERSIONS)
        if huge_base_vpn(vpn) in self._huge:
            raise ValueError(f"vpn {vpn:#x} covered by a huge mapping")
        node = self._root
        pml4, pdpt, pd, pt = _indices(vpn)
        for idx in (pml4, pdpt, pd):
            nxt = node.get(idx)
            if nxt is None:
                nxt = {}
                node[idx] = nxt
                self.table_pages_allocated += 1
            node = nxt
        prev = node.get(pt)
        node[pt] = pte
        if prev is None:
            self._count += 1
        if self.observer is not None:
            self.observer("set", vpn)
        return prev

    def clear_pte(self, vpn: int) -> Optional[Pte]:
        """Remove the PTE for ``vpn``; returns it (None if unmapped).

        Empty interior nodes are pruned, mirroring free_pgtables().
        """
        self._version = next(_VERSIONS)
        pml4, pdpt, pd, pt = _indices(vpn)
        path = []
        node = self._root
        for idx in (pml4, pdpt, pd):
            nxt = node.get(idx)
            if nxt is None:
                return None
            path.append((node, idx))
            node = nxt
        prev = node.pop(pt, None)
        if prev is None:
            return None
        self._count -= 1
        for parent, idx in reversed(path):
            child = parent[idx]
            if child:
                break
            del parent[idx]
        if self.observer is not None:
            self.observer("clear", vpn)
        return prev

    def update_pte(self, vpn: int, pte: Pte) -> None:
        """Replace an existing PTE in place (PTE must exist)."""
        self._version = next(_VERSIONS)
        existing = self.walk(vpn)
        if existing is None:
            raise KeyError(f"update of unmapped vpn {vpn:#x}")
        self.set_pte(vpn, pte)

    def entries_in_range(self, vrange: VirtRange) -> Iterator[Tuple[int, Pte]]:
        """Yield (vpn, pte) for every mapped 4 KiB page in ``vrange``
        (huge mappings are surfaced once, at their base vpn)."""
        seen_huge = set()
        for vpn in vrange.vpns():
            base = huge_base_vpn(vpn)
            huge = self._huge.get(base)
            if huge is not None:
                if base not in seen_huge:
                    seen_huge.add(base)
                    yield base, huge
                continue
            pte = self._walk_4k(vpn)
            if pte is not None:
                yield vpn, pte

    def all_entries(self) -> Iterator[Tuple[int, Pte]]:
        """Every 4 KiB entry plus every huge entry (once, at its base)."""
        yield from sorted(self._huge.items())
        yield from self._all_4k_entries()

    def _all_4k_entries(self) -> Iterator[Tuple[int, Pte]]:
        for pml4_idx, pdpt_node in sorted(self._root.items()):
            for pdpt_idx, pd_node in sorted(pdpt_node.items()):
                for pd_idx, pt_node in sorted(pd_node.items()):
                    for pt_idx, pte in sorted(pt_node.items()):
                        vpn = (
                            (pml4_idx << (3 * BITS_PER_LEVEL))
                            | (pdpt_idx << (2 * BITS_PER_LEVEL))
                            | (pd_idx << BITS_PER_LEVEL)
                            | pt_idx
                        )
                        yield vpn, pte
