"""Four-level radix page table (x86-64 style: PML4 -> PDPT -> PD -> PT).

Nine VPN bits select the slot at each level. Interior nodes are dicts so
sparse address spaces stay cheap; the structure still gives realistic
walk/teardown behaviour (levels allocated on demand, freed when empty) and
lets tests compare against a flat shadow model.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Iterator, Optional, Tuple

from .addr import HUGE_PAGE_PAGES, VirtRange, huge_base_vpn, is_huge_aligned
from .pte import Pte, make_present_pte

LEVELS = 4
BITS_PER_LEVEL = 9
SLOTS_PER_LEVEL = 1 << BITS_PER_LEVEL

#: Process-global version numbers for page-table change tracking;
#: values are never reused, so equal versions imply identical contents
#: (same contract as ``repro.hw.tlb._VERSIONS``).
_VERSIONS = count(1)


def _indices(vpn: int) -> Tuple[int, int, int, int]:
    """Split a VPN into (pml4, pdpt, pd, pt) slot indices."""
    pt = vpn & (SLOTS_PER_LEVEL - 1)
    pd = (vpn >> BITS_PER_LEVEL) & (SLOTS_PER_LEVEL - 1)
    pdpt = (vpn >> (2 * BITS_PER_LEVEL)) & (SLOTS_PER_LEVEL - 1)
    pml4 = (vpn >> (3 * BITS_PER_LEVEL)) & (SLOTS_PER_LEVEL - 1)
    return pml4, pdpt, pd, pt


class PageTable:
    """A process's page table; one per MmStruct."""

    def __init__(self):
        self._root: Dict[int, Dict] = {}
        self._count = 0
        #: PD-level 2 MiB mappings: base_vpn -> Pte with the HUGE flag.
        #: (Kept in a side table for clarity; semantically these live in
        #: the PD slot that would otherwise point at a PT page.)
        self._huge: Dict[int, Pte] = {}
        #: table-page allocations, for memory-overhead accounting
        self.table_pages_allocated = 1  # the root
        #: Optional ``observer(event, vpn)`` invoked after every mutation
        #: (the InvariantMonitor's continuous-checking hook).
        self.observer = None
        #: Bumped on any mutation; keys snapshot/restore/canonical skip
        #: paths (never rewound except together with the contents).
        self._version = next(_VERSIONS)

    def __len__(self) -> int:
        return self._count

    def walk(self, vpn: int) -> Optional[Pte]:
        """Hardware walk: return the PTE for ``vpn`` or None.

        A huge mapping covering ``vpn`` wins (the walk stops at the PD)."""
        huge = self._huge.get(huge_base_vpn(vpn))
        if huge is not None:
            return huge
        node = self._root
        pml4, pdpt, pd, pt = _indices(vpn)
        for idx in (pml4, pdpt, pd):
            node = node.get(idx)
            if node is None:
                return None
        return node.get(pt)

    # ---- huge (2 MiB) mappings ----------------------------------------------

    def set_huge_pte(self, base_vpn: int, pte: Pte) -> None:
        """Install a PD-level 2 MiB entry. The 512-page range must be free
        of 4 KiB entries (khugepaged clears them before collapsing)."""
        self._version = next(_VERSIONS)
        if not is_huge_aligned(base_vpn):
            raise ValueError(f"huge mapping not 2MiB-aligned: vpn {base_vpn:#x}")
        if not pte.huge:
            raise ValueError("set_huge_pte needs a HUGE-flagged pte")
        covered = VirtRange.from_pages(base_vpn, HUGE_PAGE_PAGES)
        for vpn in covered.vpns():
            if self._walk_4k(vpn) is not None:
                raise ValueError(f"4K entry at {vpn:#x} blocks huge mapping")
        self._huge[base_vpn] = pte
        if self.observer is not None:
            self.observer("set_huge", base_vpn)

    def clear_huge_pte(self, base_vpn: int) -> Optional[Pte]:
        self._version = next(_VERSIONS)
        prev = self._huge.pop(base_vpn, None)
        if prev is not None and self.observer is not None:
            self.observer("clear_huge", base_vpn)
        return prev

    def huge_in_range(self, vrange: VirtRange):
        """(base_vpn, pte) for huge mappings fully inside ``vrange``."""
        for base_vpn, pte in sorted(self._huge.items()):
            if vrange.vpn_start <= base_vpn and base_vpn + HUGE_PAGE_PAGES <= vrange.vpn_end:
                yield base_vpn, pte

    def huge_count(self) -> int:
        return len(self._huge)

    def _walk_4k(self, vpn: int) -> Optional[Pte]:
        node = self._root
        pml4, pdpt, pd, pt = _indices(vpn)
        for idx in (pml4, pdpt, pd):
            node = node.get(idx)
            if node is None:
                return None
        return node.get(pt)

    def set_pte(self, vpn: int, pte: Pte) -> Optional[Pte]:
        """Install a 4 KiB PTE; returns the previous entry if any."""
        self._version = next(_VERSIONS)
        if huge_base_vpn(vpn) in self._huge:
            raise ValueError(f"vpn {vpn:#x} covered by a huge mapping")
        node = self._root
        pml4, pdpt, pd, pt = _indices(vpn)
        for idx in (pml4, pdpt, pd):
            nxt = node.get(idx)
            if nxt is None:
                nxt = {}
                node[idx] = nxt
                self.table_pages_allocated += 1
            node = nxt
        prev = node.get(pt)
        node[pt] = pte
        if prev is None:
            self._count += 1
        if self.observer is not None:
            self.observer("set", vpn)
        return prev

    def clear_pte(self, vpn: int) -> Optional[Pte]:
        """Remove the PTE for ``vpn``; returns it (None if unmapped).

        Empty interior nodes are pruned, mirroring free_pgtables().
        """
        self._version = next(_VERSIONS)
        pml4, pdpt, pd, pt = _indices(vpn)
        path = []
        node = self._root
        for idx in (pml4, pdpt, pd):
            nxt = node.get(idx)
            if nxt is None:
                return None
            path.append((node, idx))
            node = nxt
        prev = node.pop(pt, None)
        if prev is None:
            return None
        self._count -= 1
        for parent, idx in reversed(path):
            child = parent[idx]
            if child:
                break
            del parent[idx]
        if self.observer is not None:
            self.observer("clear", vpn)
        return prev

    def update_pte(self, vpn: int, pte: Pte) -> None:
        """Replace an existing PTE in place (PTE must exist).

        A vpn covered by a huge mapping replaces the covering PD entry
        (mprotect over a collapsed range rewrites the single huge PTE).
        """
        self._version = next(_VERSIONS)
        base = huge_base_vpn(vpn)
        if base in self._huge:
            self._huge[base] = pte
            if self.observer is not None:
                self.observer("set_huge", base)
            return
        node = self._root
        pml4, pdpt, pd, pt = _indices(vpn)
        for idx in (pml4, pdpt, pd):
            node = node.get(idx)
            if node is None:
                raise KeyError(f"update of unmapped vpn {vpn:#x}")
        if pt not in node:
            raise KeyError(f"update of unmapped vpn {vpn:#x}")
        node[pt] = pte
        if self.observer is not None:
            self.observer("set", vpn)

    def entries_in_range(self, vrange: VirtRange) -> Iterator[Tuple[int, Pte]]:
        """Yield (vpn, pte) for every mapped 4 KiB page in ``vrange``
        (huge mappings are surfaced once, at their base vpn).

        Descends the radix tree, so cost is O(mapped entries in range),
        not O(range length). Yield order matches the historical per-vpn
        probe exactly: ascending by position, where a huge mapping's
        position is the first covered vpn inside the range (its base,
        or ``vpn_start`` when the range starts mid-huge) but it is
        yielded at its base vpn.
        """
        start, end = vrange.vpn_start, vrange.vpn_end
        if start >= end:
            return
        overlapping = sorted(
            (max(base, start), base, pte)
            for base, pte in self._huge.items()
            if base < end and base + HUGE_PAGE_PAGES > start
        )
        entries_4k = self._entries_4k_in_range(start, end)
        nxt = next(entries_4k, None)
        # No 4 KiB entry can exist under a huge mapping, so positions
        # never tie and a plain two-way merge preserves the probe order.
        for pos, base, pte in overlapping:
            while nxt is not None and nxt[0] < pos:
                yield nxt
                nxt = next(entries_4k, None)
            yield base, pte
        while nxt is not None:
            yield nxt
            nxt = next(entries_4k, None)

    def _entries_4k_in_range(self, start: int, end: int) -> Iterator[Tuple[int, Pte]]:
        """Radix descent over 4 KiB entries with vpn in [start, end)."""
        span_pml4 = 1 << (3 * BITS_PER_LEVEL)
        span_pdpt = 1 << (2 * BITS_PER_LEVEL)
        span_pd = 1 << BITS_PER_LEVEL
        for pml4_idx, pdpt_node in sorted(self._root.items()):
            base1 = pml4_idx << (3 * BITS_PER_LEVEL)
            if base1 >= end or base1 + span_pml4 <= start:
                continue
            for pdpt_idx, pd_node in sorted(pdpt_node.items()):
                base2 = base1 | (pdpt_idx << (2 * BITS_PER_LEVEL))
                if base2 >= end or base2 + span_pdpt <= start:
                    continue
                for pd_idx, pt_node in sorted(pd_node.items()):
                    base3 = base2 | (pd_idx << BITS_PER_LEVEL)
                    if base3 >= end or base3 + span_pd <= start:
                        continue
                    for pt_idx, pte in sorted(pt_node.items()):
                        vpn = base3 | pt_idx
                        if start <= vpn < end:
                            yield vpn, pte

    def _entries_in_range_probing(self, vrange: VirtRange) -> Iterator[Tuple[int, Pte]]:
        """The historical O(range) per-vpn probe, kept as the reference
        implementation for the equivalence test of the radix descent."""
        seen_huge = set()
        for vpn in vrange.vpns():
            base = huge_base_vpn(vpn)
            huge = self._huge.get(base)
            if huge is not None:
                if base not in seen_huge:
                    seen_huge.add(base)
                    yield base, huge
                continue
            pte = self._walk_4k(vpn)
            if pte is not None:
                yield vpn, pte

    def all_entries(self) -> Iterator[Tuple[int, Pte]]:
        """Every 4 KiB entry plus every huge entry (once, at its base)."""
        yield from sorted(self._huge.items())
        yield from self._all_4k_entries()

    def _all_4k_entries(self) -> Iterator[Tuple[int, Pte]]:
        for pml4_idx, pdpt_node in sorted(self._root.items()):
            for pdpt_idx, pd_node in sorted(pdpt_node.items()):
                for pd_idx, pt_node in sorted(pd_node.items()):
                    for pt_idx, pte in sorted(pt_node.items()):
                        vpn = (
                            (pml4_idx << (3 * BITS_PER_LEVEL))
                            | (pdpt_idx << (2 * BITS_PER_LEVEL))
                            | (pd_idx << BITS_PER_LEVEL)
                            | pt_idx
                        )
                        yield vpn, pte


class ReplicatedPageTable(PageTable):
    """numaPTE-style per-NUMA-node page-table replication facade.

    The facade *is* the home node's table (all inherited storage is the
    canonical replica, so single-table callers keep working unchanged);
    remote nodes get lazily materialized :class:`PageTable` replicas that
    every mutator fans out to. Replicas share ``Pte`` objects with the
    canonical table -- coherence means structural agreement, and the
    invariant monitor checks it entry-by-entry.

    Cost accounting is decoupled from the data structure: fan-outs only
    *count* pending entry-updates per node; the kernel drains those
    counts into hop-aware nanoseconds at its existing charge sites.
    """

    #: Mutation-audit hook: nodes whose replicas the fan-out skips
    #: (the ``broken_replica`` variant sets this on one mm's facade).
    _skip_replica_nodes: frozenset = frozenset()

    def __init__(self, nodes: int, home_node: int = 0):
        super().__init__()
        #: NUMA node count of the machine this mm runs on.
        self.nodes = nodes
        #: Node whose replica is the canonical (inherited) table.
        self.home_node = home_node
        #: node -> replica table; the home node is never in here.
        self._replicas: Dict[int, PageTable] = {}
        #: Lifetime count of entry updates fanned out to replicas.
        self.replica_updates = 0
        #: Lifetime count of lazy replica materializations.
        self.replica_materializations = 0
        #: node -> entry updates not yet charged by the kernel.
        self._pending_updates: Dict[int, int] = {}

    # ---- write coordination: every mutator mirrors to live replicas ---------
    #
    # The inherited mutators fire the observer (the invariant monitor's
    # continuous-check hook) at their end -- *before* the fan-out would
    # run. The monitor's replica-coherence check must never observe that
    # mid-mutation window, so each override runs the canonical mutation
    # with the observer detached, mirrors, and only then notifies.

    def set_pte(self, vpn: int, pte: Pte) -> Optional[Pte]:
        prev = self._quiet(super().set_pte, vpn, pte)
        self._mirror("set_pte", vpn, pte)
        self._notify("set", vpn)
        return prev

    def clear_pte(self, vpn: int) -> Optional[Pte]:
        prev = self._quiet(super().clear_pte, vpn)
        if prev is not None:
            self._mirror("clear_pte", vpn)
            self._notify("clear", vpn)
        return prev

    def update_pte(self, vpn: int, pte: Pte) -> None:
        self._quiet(super().update_pte, vpn, pte)
        self._mirror("update_pte", vpn, pte)
        base = huge_base_vpn(vpn)
        if base in self._huge:
            self._notify("set_huge", base)
        else:
            self._notify("set", vpn)

    def set_huge_pte(self, base_vpn: int, pte: Pte) -> None:
        self._quiet(super().set_huge_pte, base_vpn, pte)
        self._mirror("set_huge_pte", base_vpn, pte)
        self._notify("set_huge", base_vpn)

    def clear_huge_pte(self, base_vpn: int) -> Optional[Pte]:
        prev = self._quiet(super().clear_huge_pte, base_vpn)
        if prev is not None:
            self._mirror("clear_huge_pte", base_vpn)
            self._notify("clear_huge", base_vpn)
        return prev

    def _quiet(self, method, *args):
        obs, self.observer = self.observer, None
        try:
            return method(*args)
        finally:
            self.observer = obs

    def _notify(self, event: str, vpn: int) -> None:
        if self.observer is not None:
            self.observer(event, vpn)

    def _mirror(self, method: str, *args) -> None:
        """Apply one canonical mutation to every live replica.

        The two ops the fault and munmap paths hammer (``set_pte`` /
        ``clear_pte``) take inlined fast paths that share one index split
        across all replicas; mutation hooks (``broken_replica``) wrap this
        method, so dispatch stays here. The fast paths must mutate exactly
        like :class:`PageTable`'s -- the shadow-model property test and the
        replica-coherence monitor guard that equivalence."""
        if not self._replicas:
            return
        if method == "set_pte":
            self._mirror_set(*args)
        elif method == "clear_pte":
            self._mirror_clear(*args)
        else:
            skip = self._skip_replica_nodes
            pending = self._pending_updates
            n = 0
            for node, replica in self._replicas.items():
                if node in skip:
                    continue
                getattr(replica, method)(*args)
                pending[node] = pending.get(node, 0) + 1
                n += 1
            self.replica_updates += n

    def _mirror_set(self, vpn: int, pte: Pte) -> None:
        """Fan out one 4 KiB install (PageTable.set_pte, sans the huge
        check -- the canonical mutation already vetted it)."""
        skip = self._skip_replica_nodes
        pending = self._pending_updates
        pml4, pdpt, pd, pt = _indices(vpn)
        n = 0
        for node, replica in self._replicas.items():
            if node in skip:
                continue
            replica._version = next(_VERSIONS)
            level = replica._root
            for idx in (pml4, pdpt, pd):
                nxt = level.get(idx)
                if nxt is None:
                    nxt = {}
                    level[idx] = nxt
                    replica.table_pages_allocated += 1
                level = nxt
            if pt not in level:
                replica._count += 1
            level[pt] = pte
            pending[node] = pending.get(node, 0) + 1
            n += 1
        self.replica_updates += n

    def _mirror_clear(self, vpn: int) -> None:
        """Fan out one 4 KiB teardown (PageTable.clear_pte, including the
        interior-node pruning)."""
        skip = self._skip_replica_nodes
        pending = self._pending_updates
        pml4, pdpt, pd, pt = _indices(vpn)
        n = 0
        for node, replica in self._replicas.items():
            if node in skip:
                continue
            replica._version = next(_VERSIONS)
            root = replica._root
            pdpt_d = root.get(pml4)
            if pdpt_d is None:
                continue
            pd_d = pdpt_d.get(pdpt)
            if pd_d is None:
                continue
            pt_d = pd_d.get(pd)
            if pt_d is None:
                continue
            if pt_d.pop(pt, None) is None:
                continue
            replica._count -= 1
            if not pt_d:
                del pd_d[pd]
                if not pd_d:
                    del pdpt_d[pdpt]
                    if not pdpt_d:
                        del root[pml4]
            pending[node] = pending.get(node, 0) + 1
            n += 1
        self.replica_updates += n

    # ---- walk-side API -------------------------------------------------------

    def local_table(self, node: int) -> PageTable:
        """The replica a hardware walk from ``node`` descends
        (materialized on first use)."""
        if node == self.home_node:
            return self
        replica = self._replicas.get(node)
        if replica is None:
            replica = self._materialize(node)
        return replica

    def walk_local(self, vpn: int, node: int) -> Optional[Pte]:
        return self.local_table(node).walk(vpn)

    def _materialize(self, node: int) -> PageTable:
        """Clone the canonical table as ``node``'s replica.

        Interior dicts are copied (and counted as that node's table
        pages); ``Pte`` leaves are shared with the canonical table.
        """
        replica = PageTable()
        pages = 1  # the replica's root
        root: Dict[int, Dict] = {}
        for pml4_idx, pdpt_node in self._root.items():
            new_pdpt: Dict[int, Dict] = {}
            pages += 1
            for pdpt_idx, pd_node in pdpt_node.items():
                new_pd: Dict[int, Dict] = {}
                pages += 1
                for pd_idx, pt_node in pd_node.items():
                    new_pd[pd_idx] = dict(pt_node)
                    pages += 1
                new_pdpt[pdpt_idx] = new_pd
            root[pml4_idx] = new_pdpt
        replica._root = root
        replica._count = self._count
        replica._huge = dict(self._huge)
        replica.table_pages_allocated = pages
        replica._version = next(_VERSIONS)
        self._replicas[node] = replica
        self.replica_materializations += 1
        # Derived state changed: invalidate version-keyed snapshot and
        # canonical-hash caches that fold replica state.
        self._version = next(_VERSIONS)
        return replica

    # ---- accounting ----------------------------------------------------------

    def take_pending_updates(self) -> Tuple[Tuple[int, int], ...]:
        """Drain (node, entry-update count) pairs accumulated since the
        last drain; the kernel turns them into hop-aware charge."""
        if not self._pending_updates:
            return ()
        items = tuple(sorted(self._pending_updates.items()))
        self._pending_updates.clear()
        # Keep the version contract over the *whole* facade (canonical +
        # replicas + pending counts): equal version implies equal state.
        self._version = next(_VERSIONS)
        return items

    def table_pages_by_node(self) -> Dict[int, int]:
        """Table pages allocated per node (home = canonical table)."""
        pages = {self.home_node: self.table_pages_allocated}
        for node, replica in self._replicas.items():
            pages[node] = replica.table_pages_allocated
        return pages

    def replicas(self) -> Dict[int, PageTable]:
        """Live remote replicas by node (read-only view for checkers)."""
        return dict(self._replicas)


class HostPageTable(PageTable):
    """gPA->hPA (EPT/NPT-style) translation table for a virtualized mm.

    Entries are keyed by guest frame number (gfn); each present entry's
    ``Pte.pfn`` is the backing *host* frame. Guest frames are minted
    sequentially per mm as host frames get exposed to the guest, and the
    gfn<->pfn pairing is tracked both ways so the hypervisor side (frame
    reclamation) can find and invalidate the host entry for a freed frame
    without scanning.

    The table reuses :class:`PageTable`'s radix storage and version mint,
    so snapshot/restore and the model checker's version-keyed canonical
    hashing cover host state with the same machinery as guest state.
    """

    def __init__(self, levels: int = LEVELS):
        super().__init__()
        #: Host-table depth (m of the n-over-m 2D walk cost model).
        self.levels = levels
        #: host pfn -> gfn for every populated entry.
        self.gfn_of_pfn: Dict[int, int] = {}
        #: Next guest frame number to mint.
        self.next_gfn = 0
        #: gfn -> frame free-generation recorded at populate time; the
        #: ept_coherence invariant proves no entry outlives its frame.
        self.generation_of_gfn: Dict[int, int] = {}

    def populate(self, pfn: int, generation: int) -> bool:
        """Install the gfn->pfn entry for ``pfn`` (EPT-violation fill).
        Returns True when a new entry was created, False if already
        populated (idempotent -- TLB fills hit this on every miss)."""
        if pfn in self.gfn_of_pfn:
            return False
        gfn = self.next_gfn
        self.next_gfn = gfn + 1
        self.gfn_of_pfn[pfn] = gfn
        self.generation_of_gfn[gfn] = generation
        self.set_pte(gfn, make_present_pte(pfn))
        return True

    def invalidate_pfn(self, pfn: int) -> Optional[int]:
        """Tear down the host entry backing ``pfn`` (host-side INVEPT on
        frame reclamation). Returns the gfn removed, or None."""
        gfn = self.gfn_of_pfn.pop(pfn, None)
        if gfn is None:
            return None
        self.generation_of_gfn.pop(gfn, None)
        self.clear_pte(gfn)
        return gfn

    def walk_gfn(self, gfn: int) -> Optional[Pte]:
        """The host half of a 2D walk: gfn -> host Pte (or None)."""
        return self.walk(gfn)
