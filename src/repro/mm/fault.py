"""Page-fault outcome taxonomy shared by the kernel fault handler."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class FaultKind(enum.Enum):
    """What the fault handler did."""

    MINOR_ANON = "minor-anon"        # demand-zero anonymous page
    MINOR_FILE = "minor-file"        # mapped a page-cache page
    MAJOR_FILE = "major-file"        # page-cache miss, "I/O" fill
    COW_BREAK = "cow-break"          # copied a shared page on write
    NUMA_HINT = "numa-hint"          # AutoNUMA sampling fault
    SWAP_IN = "swap-in"              # brought a page back from swap
    SPURIOUS = "spurious"            # PTE fine by the time we looked
    SEGFAULT = "segfault"            # no VMA / bad permission


@dataclass
class FaultResult:
    kind: FaultKind
    vpn: int
    pfn: Optional[int] = None
    migrated: bool = False

    @property
    def fatal(self) -> bool:
        return self.kind is FaultKind.SEGFAULT


class SegmentationFault(RuntimeError):
    """Raised (optionally) by access paths when a fault resolves to SEGFAULT.

    The paper's race discussion (section 4.4) hinges on *when* an erroneous
    access starts segfaulting under LATR: before the remote sweep it still
    reads the stale-but-not-yet-freed page; after the sweep it faults. Tests
    assert both sides of that boundary.
    """

    def __init__(self, vaddr: int):
        super().__init__(f"segmentation fault at {vaddr:#x}")
        self.vaddr = vaddr
