"""Page-table entry representation and flag algebra."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional


class PteFlags(enum.IntFlag):
    """x86-style PTE software view.

    ``PROTNONE`` models Linux's NUMA-hint encoding: the page stays resident
    but the hardware-present bit is cleared so the next access faults into
    the AutoNUMA path (paper sections 2.1, 4.3).
    ``COW`` marks a write-protected shared anonymous page.
    """

    NONE = 0
    PRESENT = enum.auto()
    WRITE = enum.auto()
    USER = enum.auto()
    ACCESSED = enum.auto()
    DIRTY = enum.auto()
    PROTNONE = enum.auto()
    COW = enum.auto()
    SWAPPED = enum.auto()
    #: PD-level 2 MiB mapping (x86 PS bit); pfn is the base of 512
    #: physically contiguous frames.
    HUGE = enum.auto()


# Plain-int views of the masks: IntFlag.__and__ routes through the enum
# machinery (member lookup per operation), which shows up in page-walk-heavy
# workloads. The flag properties below test bits via int.__and__ instead.
_PRESENT = int(PteFlags.PRESENT)
_WRITE = int(PteFlags.WRITE)
_PROTNONE = int(PteFlags.PROTNONE)
_COW = int(PteFlags.COW)
_SWAPPED = int(PteFlags.SWAPPED)
_HUGE = int(PteFlags.HUGE)


@dataclass(frozen=True)
class Pte:
    """One page-table entry: a PFN (or swap slot) plus flags."""

    pfn: int
    flags: PteFlags
    #: Swap slot index when SWAPPED (pfn is meaningless then).
    swap_slot: Optional[int] = None

    @property
    def present(self) -> bool:
        return bool(int.__and__(self.flags, _PRESENT))

    @property
    def writable(self) -> bool:
        return bool(int.__and__(self.flags, _WRITE))

    @property
    def numa_hint(self) -> bool:
        return bool(int.__and__(self.flags, _PROTNONE))

    @property
    def cow(self) -> bool:
        return bool(int.__and__(self.flags, _COW))

    @property
    def swapped(self) -> bool:
        return bool(int.__and__(self.flags, _SWAPPED))

    @property
    def huge(self) -> bool:
        return bool(int.__and__(self.flags, _HUGE))

    def with_flags(self, add: PteFlags = PteFlags.NONE, drop: PteFlags = PteFlags.NONE) -> "Pte":
        return replace(self, flags=(self.flags | add) & ~drop)

    def make_numa_hint(self) -> "Pte":
        """change_prot_numa: clear PRESENT, set PROTNONE (page stays mapped)."""
        return self.with_flags(add=PteFlags.PROTNONE, drop=PteFlags.PRESENT)

    def clear_numa_hint(self) -> "Pte":
        return self.with_flags(add=PteFlags.PRESENT, drop=PteFlags.PROTNONE)


def make_present_pte(pfn: int, writable: bool = True, cow: bool = False) -> Pte:
    flags = PteFlags.PRESENT | PteFlags.USER | PteFlags.ACCESSED
    if writable:
        flags |= PteFlags.WRITE
    if cow:
        flags |= PteFlags.COW
        flags &= ~PteFlags.WRITE
    return Pte(pfn=pfn, flags=flags)


def make_swap_pte(swap_slot: int) -> Pte:
    return Pte(pfn=-1, flags=PteFlags.SWAPPED, swap_slot=swap_slot)


def make_huge_pte(base_pfn: int, writable: bool = True) -> Pte:
    """A 2 MiB PD-level entry; ``base_pfn`` starts 512 contiguous frames."""
    flags = PteFlags.PRESENT | PteFlags.USER | PteFlags.ACCESSED | PteFlags.HUGE
    if writable:
        flags |= PteFlags.WRITE
    return Pte(pfn=base_pfn, flags=flags)
