"""Virtual memory areas (VMAs) and the per-address-space VMA set."""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional

from .addr import PAGE_SIZE, VirtRange


class VmaKind(enum.Enum):
    ANON = "anon"
    FILE = "file"


class Prot(enum.IntFlag):
    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()

    @classmethod
    def rw(cls) -> "Prot":
        return cls.READ | cls.WRITE

    @classmethod
    def ro(cls) -> "Prot":
        return cls.READ


_vma_ids = itertools.count(1)


@dataclass
class Vma:
    """One mapping: a range, protection, and backing kind."""

    range: VirtRange
    prot: Prot
    kind: VmaKind = VmaKind.ANON
    #: Identifies the backing object for FILE mappings (page-cache key).
    file_key: Optional[str] = None
    file_offset: int = 0
    #: Prefer 2 MiB mappings on fault (MAP_HUGETLB / THP-eligible).
    huge: bool = False
    vma_id: int = field(default_factory=lambda: next(_vma_ids))

    @property
    def start(self) -> int:
        return self.range.start

    @property
    def end(self) -> int:
        return self.range.end

    @property
    def n_pages(self) -> int:
        return self.range.n_pages

    def split_at(self, addr: int) -> "Vma":
        """Shrink self to [start, addr) and return the new [addr, end) VMA."""
        if not (self.start < addr < self.end) or addr % PAGE_SIZE:
            raise ValueError(f"bad split point {addr:#x} for {self.range}")
        tail_offset = self.file_offset + (addr - self.start)
        tail = replace(
            self,
            range=VirtRange(addr, self.end),
            file_offset=tail_offset,
            vma_id=next(_vma_ids),
        )
        self.range = VirtRange(self.start, addr)
        return tail


class VmaSetError(RuntimeError):
    """Overlapping insert or unmap of an unmapped region."""


class VmaSet:
    """Sorted, non-overlapping set of VMAs (Linux's mm->mm_rb analogue)."""

    def __init__(self):
        self._starts: List[int] = []
        self._vmas: List[Vma] = []

    def __len__(self) -> int:
        return len(self._vmas)

    def __iter__(self):
        return iter(list(self._vmas))

    def insert(self, vma: Vma) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        if idx > 0 and self._vmas[idx - 1].end > vma.start:
            raise VmaSetError(f"{vma.range} overlaps {self._vmas[idx - 1].range}")
        if idx < len(self._vmas) and self._vmas[idx].start < vma.end:
            raise VmaSetError(f"{vma.range} overlaps {self._vmas[idx].range}")
        self._starts.insert(idx, vma.start)
        self._vmas.insert(idx, vma)

    def find(self, addr: int) -> Optional[Vma]:
        """The VMA containing byte address ``addr``, or None."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx >= 0 and self._vmas[idx].range.contains(addr):
            return self._vmas[idx]
        return None

    def overlapping(self, vrange: VirtRange) -> List[Vma]:
        """All VMAs intersecting ``vrange``, in address order."""
        out = []
        idx = bisect.bisect_right(self._starts, vrange.start) - 1
        if idx < 0:
            idx = 0
        for vma in self._vmas[idx:]:
            if vma.start >= vrange.end:
                break
            if vma.range.overlaps(vrange):
                out.append(vma)
        return out

    def remove_range(self, vrange: VirtRange) -> List[Vma]:
        """Unmap ``vrange``: split boundary VMAs, drop covered ones.

        Returns the removed pieces (exactly covering the intersection of
        ``vrange`` with mapped space). Unmapped gaps inside the range are
        permitted, matching munmap() semantics.
        """
        removed: List[Vma] = []
        for vma in self.overlapping(vrange):
            self._remove_vma(vma)
            if vma.start < vrange.start:
                tail = vma.split_at(vrange.start)
                self.insert(vma)
                vma = tail
            if vma.end > vrange.end:
                tail = vma.split_at(vrange.end)
                self.insert(tail)
            removed.append(vma)
        return removed

    def _remove_vma(self, vma: Vma) -> None:
        idx = bisect.bisect_left(self._starts, vma.start)
        while idx < len(self._vmas) and self._vmas[idx] is not vma:
            idx += 1
        if idx == len(self._vmas):
            raise VmaSetError(f"vma {vma.range} not in set")
        del self._starts[idx]
        del self._vmas[idx]

    def highest_end(self) -> int:
        return self._vmas[-1].end if self._vmas else 0

    def total_pages(self) -> int:
        return sum(v.n_pages for v in self._vmas)
