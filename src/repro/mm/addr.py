"""Address arithmetic: pages, VPNs, PFNs, virtual ranges."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT  # 4 KiB
#: x86 2 MiB huge pages: one PD-level entry spans 512 base pages.
HUGE_PAGE_ORDER = 9
HUGE_PAGE_PAGES = 1 << HUGE_PAGE_ORDER
HUGE_PAGE_SIZE = PAGE_SIZE * HUGE_PAGE_PAGES
#: x86-64 canonical user address-space size the paper cites (2**48 bytes).
VADDR_BITS = 48
VADDR_LIMIT = 1 << VADDR_BITS


def huge_base_vpn(vpn: int) -> int:
    """The 2 MiB-aligned base VPN of the huge page containing ``vpn``."""
    return vpn & ~(HUGE_PAGE_PAGES - 1)


def is_huge_aligned(vpn: int) -> bool:
    return vpn % HUGE_PAGE_PAGES == 0


def page_align_down(addr: int) -> int:
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


def vpn_of(addr: int) -> int:
    """Virtual page number containing byte address ``addr``."""
    return addr >> PAGE_SHIFT


def addr_of(vpn: int) -> int:
    return vpn << PAGE_SHIFT


@dataclass(frozen=True)
class VirtRange:
    """A half-open, page-aligned virtual byte range [start, end)."""

    start: int
    end: int

    def __post_init__(self):
        if self.start % PAGE_SIZE or self.end % PAGE_SIZE:
            raise ValueError(f"range not page aligned: {self.start:#x}..{self.end:#x}")
        if not 0 <= self.start < self.end <= VADDR_LIMIT:
            raise ValueError(f"bad range: {self.start:#x}..{self.end:#x}")

    @classmethod
    def from_pages(cls, vpn_start: int, n_pages: int) -> "VirtRange":
        return cls(addr_of(vpn_start), addr_of(vpn_start + n_pages))

    @property
    def n_pages(self) -> int:
        return (self.end - self.start) >> PAGE_SHIFT

    @property
    def n_bytes(self) -> int:
        return self.end - self.start

    @property
    def vpn_start(self) -> int:
        return vpn_of(self.start)

    @property
    def vpn_end(self) -> int:
        return vpn_of(self.end)

    def vpns(self) -> Iterator[int]:
        return iter(range(self.vpn_start, self.vpn_end))

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end

    def overlaps(self, other: "VirtRange") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "VirtRange") -> "VirtRange":
        if not self.overlaps(other):
            raise ValueError(f"ranges do not overlap: {self} vs {other}")
        return VirtRange(max(self.start, other.start), min(self.end, other.end))

    def __repr__(self) -> str:
        return f"VirtRange({self.start:#x}..{self.end:#x}, {self.n_pages}p)"
