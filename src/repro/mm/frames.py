"""NUMA-aware physical frame allocator with reference counting.

The reproduction's core invariant -- *a physical page is reused only after
every TLB entry mapping it has been invalidated* (paper section 3) -- is
enforced here: frames carry refcounts and a monotonically increasing
*generation* that bumps on every free. A TLB entry snapshots the generation
at fill time, so invariant checkers can prove that no core ever translates
through a recycled frame.
"""

from __future__ import annotations

from collections import deque
from heapq import merge as _heap_merge
from itertools import count
from typing import Deque, Dict, Iterable, List, Optional, Tuple


class FrameAllocatorError(RuntimeError):
    """Double free, refcount underflow, or out-of-memory."""


class FrameBatch(list):
    """A list of PFNs to free, annotated with its *cost* in release units.

    A 2 MiB compound page carries 512 PFNs but frees like a handful of
    operations, not 512 -- coherence mechanisms charge
    ``free_units * page_free_ns`` instead of ``len(batch)``.
    """

    def __init__(self, pfns=(), free_units: int = None):
        super().__init__(pfns)
        self.free_units = len(self) if free_units is None else free_units

    @staticmethod
    def units_of(pfns) -> int:
        """Cost units for any pfn container (plain lists count 1:1)."""
        return getattr(pfns, "free_units", len(pfns))


class _FreeList:
    """A node's free-PFN queue with deque semantics but O(1) construction.

    Never-yet-allocated frames live as a ``[lo, hi)`` watermark range served
    front-first; recycled (or exclude-rotated) frames go to a deque *behind*
    the range. That is exactly the logical order of the eager
    ``deque(range(base, base + n))`` it replaces -- popleft drains the fresh
    range in ascending order first, appends queue behind it -- without
    materializing half a million integers per node at boot.

    ``remove_run`` (huge-page allocation) can cut a hole in the middle of
    the watermark; the ascending remainders beyond the primary ``[lo, hi)``
    live as extra lazy segments in ``_extra``, drained in order after the
    primary before the tail -- never materialized.
    """

    __slots__ = ("_lo", "_hi", "_extra", "_tail")

    def __init__(self, pfns=(), fresh: Optional[range] = None):
        self._tail: Deque[int] = deque(pfns)
        self._extra: Deque[Tuple[int, int]] = deque()
        if fresh is not None:
            self._lo, self._hi = fresh.start, fresh.stop
        else:
            self._lo = self._hi = 0

    def popleft(self) -> int:
        if self._lo >= self._hi and self._extra:
            self._lo, self._hi = self._extra.popleft()
        if self._lo < self._hi:
            pfn = self._lo
            self._lo += 1
            return pfn
        return self._tail.popleft()

    def append(self, pfn: int) -> None:
        self._tail.append(pfn)

    def extend(self, pfns) -> None:
        """Queue a slab of recycled PFNs behind the watermark in one go --
        identical logical order to appending them one at a time."""
        self._tail.extend(pfns)

    def __len__(self) -> int:
        return (
            (self._hi - self._lo)
            + sum(hi - lo for lo, hi in self._extra)
            + len(self._tail)
        )

    def __iter__(self):
        yield from range(self._lo, self._hi)
        for lo, hi in self._extra:
            yield from range(lo, hi)
        yield from self._tail

    def covers_fresh(self, pfn: int) -> bool:
        """O(segments) membership probe of the lazy ranges only."""
        if self._lo <= pfn < self._hi:
            return True
        return any(lo <= pfn < hi for lo, hi in self._extra)

    def remove_run(self, base: int, end: int) -> None:
        """Drop every free PFN in ``[base, end)``, keeping laziness.

        Watermark segments are cut arithmetically (a middle cut splits one
        segment into two lazy remainders); only tail members inside the run
        cost a rebuild, and only when at least one is actually present.
        The logical drain order -- ascending fresh first, then recycled
        tail -- is exactly what filtering the eager list preserved.
        """
        segments = []
        for lo, hi in [(self._lo, self._hi)] + list(self._extra):
            cut_lo, cut_hi = max(lo, base), min(hi, end)
            if cut_lo >= cut_hi:  # no overlap
                if lo < hi:
                    segments.append((lo, hi))
                continue
            if lo < cut_lo:
                segments.append((lo, cut_lo))
            if cut_hi < hi:
                segments.append((cut_hi, hi))
        if segments:
            self._lo, self._hi = segments[0]
            self._extra = deque(segments[1:])
        else:
            self._lo = self._hi = 0
            self._extra = deque()
        if any(base <= p < end for p in self._tail):
            self._tail = deque(p for p in self._tail if not base <= p < end)

    # ---- snapshot plumbing (see repro.snapshot / verify.mc.executor) ----------

    def state(self) -> Tuple:
        """Exact state without materializing the lazy segments."""
        return (self._lo, self._hi, tuple(self._extra), tuple(self._tail))

    def set_state(self, state: Tuple) -> None:
        lo, hi, extra, tail = state
        self._lo = lo
        self._hi = hi
        self._extra = deque(extra)
        self._tail = deque(tail)


#: Process-global version numbers for allocator change tracking; values
#: are never reused, so equal versions imply identical allocator state
#: (same contract as ``repro.hw.tlb._VERSIONS``).
_VERSIONS = count(1)

#: Default for ``FrameAllocator(use_slabs=...)`` when left unspecified.
DEFAULT_USE_FRAME_SLABS = True


class FrameAllocator:
    """Per-node free lists of physical frame numbers (PFNs)."""

    def __init__(self, nodes: int, frames_per_node: int, use_slabs: Optional[bool] = None):
        if nodes < 1 or frames_per_node < 1:
            raise ValueError("need at least one node and one frame")
        self.nodes = nodes
        self.frames_per_node = frames_per_node
        #: Batched-free escape hatch: with slabs on, bulk releases go
        #: through :meth:`free_batch` (one version mint, per-node slab
        #: extends); off forces the one-``put``-per-frame legacy path.
        self.use_slabs = DEFAULT_USE_FRAME_SLABS if use_slabs is None else bool(use_slabs)
        self._free: List[_FreeList] = [
            _FreeList(fresh=range(node * frames_per_node, (node + 1) * frames_per_node))
            for node in range(nodes)
        ]
        self._refcount: Dict[int, int] = {}
        self._generation: Dict[int, int] = {}
        self.total_allocs = 0
        self.total_frees = 0
        #: Bumped on any mutation; keys snapshot/restore/canonical skip
        #: paths (never rewound except together with the state).
        self._version = next(_VERSIONS)

    @property
    def total_frames(self) -> int:
        return self.nodes * self.frames_per_node

    def free_count(self, node: Optional[int] = None) -> int:
        if node is None:
            return sum(len(q) for q in self._free)
        return len(self._free[node])

    def allocated_count(self) -> int:
        return len(self._refcount)

    def node_of(self, pfn: int) -> int:
        if not 0 <= pfn < self.nodes * self.frames_per_node:
            raise KeyError(pfn)
        return pfn // self.frames_per_node

    def alloc(self, node: int = 0, exclude: Optional[range] = None) -> int:
        """Allocate one frame, preferring ``node``, falling back round-robin.

        ``exclude`` skips a PFN range -- compaction uses it to evacuate a
        target block without immediately re-filling it.
        """
        self._version = next(_VERSIONS)
        if not 0 <= node < self.nodes:
            raise ValueError(f"bad node {node}")
        for candidate in [node] + [n for n in range(self.nodes) if n != node]:
            queue = self._free[candidate]
            for _ in range(len(queue)):
                pfn = queue.popleft()
                if exclude is not None and pfn in exclude:
                    queue.append(pfn)
                    continue
                self._refcount[pfn] = 1
                self.total_allocs += 1
                return pfn
        raise FrameAllocatorError("out of physical frames")

    def alloc_contiguous(self, count: int, node: int = 0, aligned: bool = True) -> int:
        """Allocate ``count`` physically contiguous frames on ``node``.

        Returns the base PFN (aligned to ``count`` when ``aligned``, the way
        a 2 MiB huge page must be). Raises when no run exists -- which is
        exactly the fragmentation problem compaction solves.
        """
        self._version = next(_VERSIONS)
        if count < 1:
            raise ValueError("count must be positive")
        if not 0 <= node < self.nodes:
            raise ValueError(f"bad node {node}")
        queue = self._free[node]
        # The fresh watermark segments are probed arithmetically; only the
        # (short, recycled-frames-only) tail needs a membership set. The
        # eager ``sorted(...)``/``set(...)`` this replaces materialized the
        # whole lazy range -- defeating O(1) construction on big nodes.
        tail_set = set(queue._tail)
        base_lo = node * self.frames_per_node
        if aligned:
            candidates = range(base_lo, base_lo + self.frames_per_node, count)
        else:
            # Any free PFN can start an unaligned run; scan them in the
            # same ascending order the eager sorted list produced, without
            # building it (lazy merge of the segments and sorted tail).
            candidates = _heap_merge(
                range(queue._lo, queue._hi),
                *(range(lo, hi) for lo, hi in queue._extra),
                sorted(tail_set),
            )
        for base in candidates:
            if all(
                queue.covers_fresh(base + i) or base + i in tail_set
                for i in range(count)
            ):
                for i in range(count):
                    pfn = base + i
                    self._refcount[pfn] = 1
                queue.remove_run(base, base + count)
                self.total_allocs += count
                return base
        raise FrameAllocatorError(
            f"no contiguous run of {count} frames on node {node} (fragmented)"
        )

    def contiguous_run_available(self, count: int, node: int = 0) -> bool:
        """Whether an aligned run of ``count`` free frames exists on node."""
        queue = self._free[node]
        tail_set = set(queue._tail)
        base_lo = node * self.frames_per_node
        return any(
            all(
                queue.covers_fresh(base + i) or base + i in tail_set
                for i in range(count)
            )
            for base in range(base_lo, base_lo + self.frames_per_node, count)
        )

    def get(self, pfn: int) -> None:
        """Take an extra reference (page sharing, lazy lists)."""
        self._version = next(_VERSIONS)
        if pfn not in self._refcount:
            raise FrameAllocatorError(f"get() on free frame {pfn}")
        self._refcount[pfn] += 1

    def put(self, pfn: int) -> bool:
        """Drop a reference; frees the frame at zero. Returns True if freed."""
        self._version = next(_VERSIONS)
        count = self._refcount.get(pfn)
        if count is None:
            raise FrameAllocatorError(f"put() on free frame {pfn} (double free?)")
        if count == 1:
            del self._refcount[pfn]
            self._generation[pfn] = self._generation.get(pfn, 0) + 1
            self._free[pfn // self.frames_per_node].append(pfn)
            self.total_frees += 1
            return True
        self._refcount[pfn] = count - 1
        return False

    def free_batch(self, pfns: Iterable[int]) -> List[int]:
        """Drop one reference per PFN, recycling zero-refcount frames
        through per-node slabs. Returns the PFNs actually freed, in order.

        The slab path is the batched twin of calling :meth:`put` in a
        loop: every refcount decrement, generation bump, free-list entry
        and error is identical (per-node slab extends preserve each
        node's append order exactly), but the version counter is minted
        once per batch -- legal because version *values* are never
        compared across runs, only for change detection -- and the dict
        and list lookups are hoisted out of the loop. A munmap of a large
        VMA releases thousands of frames in one call; at fleet scale this
        is the allocator's hot path.
        """
        self._version = next(_VERSIONS)
        refcount = self._refcount
        generation = self._generation
        fpn = self.frames_per_node
        slabs: Dict[int, List[int]] = {}
        freed: List[int] = []
        for pfn in pfns:
            count = refcount.get(pfn)
            if count is None:
                raise FrameAllocatorError(f"put() on free frame {pfn} (double free?)")
            if count == 1:
                del refcount[pfn]
                generation[pfn] = generation.get(pfn, 0) + 1
                node = pfn // fpn
                slab = slabs.get(node)
                if slab is None:
                    slab = slabs[node] = []
                slab.append(pfn)
                freed.append(pfn)
            else:
                refcount[pfn] = count - 1
        for node, slab in slabs.items():
            self._free[node].extend(slab)
        self.total_frees += len(freed)
        return freed

    def refcount(self, pfn: int) -> int:
        return self._refcount.get(pfn, 0)

    def is_allocated(self, pfn: int) -> bool:
        return pfn in self._refcount

    def generation(self, pfn: int) -> int:
        """Bumped every time the frame is freed; TLB entries snapshot this."""
        return self._generation.get(pfn, 0)
