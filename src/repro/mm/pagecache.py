"""Page cache: shared physical frames backing file mappings.

Apache's serving loop mmap()s the same small files over and over; the
frames come from the page cache and are *shared* across processes and
requests, which is why the munmap() on one core leaves stale TLB entries on
every core that served the same file (paper section 6.2.2).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .frames import FrameAllocator


class PageCache:
    """Maps (file_key, page_index) -> pfn; the cache holds one reference."""

    def __init__(self, frames: FrameAllocator):
        self.frames = frames
        self._pages: Dict[Tuple[str, int], int] = {}
        self.hits = 0
        self.fills = 0
        #: Optional hook called with the pfn when an eviction actually
        #: frees the frame (the kernel installs its EPT detach here for
        #: virtualized runs; None keeps the flat path byte-identical).
        self.on_free = None

    def lookup(self, file_key: str, page_index: int) -> Optional[int]:
        pfn = self._pages.get((file_key, page_index))
        if pfn is not None:
            self.hits += 1
        return pfn

    def get_or_fill(self, file_key: str, page_index: int, node: int) -> Tuple[int, bool]:
        """Return (pfn, was_cached); allocates and caches on miss."""
        key = (file_key, page_index)
        pfn = self._pages.get(key)
        if pfn is not None:
            self.hits += 1
            return pfn, True
        pfn = self.frames.alloc(node)
        self._pages[key] = pfn
        self.fills += 1
        return pfn, False

    def evict(self, file_key: str, page_index: int) -> bool:
        """Drop the cache's reference (page reclaim). True if it was cached."""
        pfn = self._pages.pop((file_key, page_index), None)
        if pfn is None:
            return False
        freed = self.frames.put(pfn)
        if freed and self.on_free is not None:
            self.on_free(pfn)
        return True

    def cached_pages(self) -> int:
        return len(self._pages)
