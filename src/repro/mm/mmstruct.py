"""MmStruct: one address space (Linux mm_struct analogue).

Holds the page table, the VMA set, the ``mmap_sem`` semaphore that
serializes address-space changes (and that Linux holds across the
synchronous shootdown -- the serialization LATR removes from the critical
path), the ``mm_cpumask`` of cores that may cache translations, and the
lazy-reclamation bookkeeping LATR adds (paper section 4.2):

* ``lazy_vranges``: virtual ranges freed but not yet reusable,
* ``lazy_frames``: frames whose refcount LATR still pins.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set

from ..sim.engine import Simulator
from ..sim.resources import Lock
from .addr import PAGE_SIZE, VirtRange, page_align_up
from .pagetable import HostPageTable, PageTable, ReplicatedPageTable
from .vma import Vma, VmaSet

#: Default base of the mmap area (like x86-64 mmap_base, simplified).
MMAP_BASE = 0x7000_0000_0000

_mm_ids = itertools.count(1)


class MmStruct:
    """A process address space."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        pt_nodes: Optional[int] = None,
        pt_home_node: int = 0,
        virtualized: bool = False,
    ):
        self.mm_id = next(_mm_ids)
        self.name = name or f"mm{self.mm_id}"
        # ``pt_nodes`` set means page-table replication (numaPTE): one
        # replica per NUMA node behind the ReplicatedPageTable facade.
        # Unset keeps today's single shared table, bit-identically.
        if pt_nodes is not None and pt_nodes > 1:
            self.page_table: PageTable = ReplicatedPageTable(
                nodes=pt_nodes, home_node=pt_home_node
            )
        else:
            self.page_table = PageTable()
        #: gPA->hPA table for a VM task's address space (None for native
        #: processes -- the flat model carries literally no extra state).
        self.host_table: Optional[HostPageTable] = (
            HostPageTable() if virtualized else None
        )
        self.vmas = VmaSet()
        self.mmap_sem = Lock(sim, name=f"{self.name}.mmap_sem")
        #: Cores that have run a thread of this mm since its last full flush
        #: there; Linux computes shootdown targets from this (paper 4.1).
        self.cpumask: Set[int] = set()
        #: Tasks sharing this address space.
        self.users = 0

        # Virtual-address allocation.
        self._bump = MMAP_BASE
        self._free_ranges: List[VirtRange] = []

        # LATR lazy-reclamation state.
        self.lazy_vranges: List[VirtRange] = []
        self.lazy_frames: List[int] = []
        #: Monotonic stamp for mapping changes; TLB entries snapshot it so
        #: invariant checks can spot a translation that outlived its mapping.
        self.map_generation = 0

    @property
    def pcid(self) -> int:
        """Process-context identifier == mm id (paper section 4.5)."""
        return self.mm_id

    @property
    def virtualized(self) -> bool:
        """True when this address space belongs to a VM task (guest walks
        are two-dimensional; frees need host-level invalidation)."""
        return self.host_table is not None

    # ---- cpumask management -------------------------------------------------

    def mark_running_on(self, core_id: int) -> None:
        self.cpumask.add(core_id)

    def clear_cpu(self, core_id: int) -> None:
        self.cpumask.discard(core_id)

    def shootdown_targets(self, initiator_core_id: int) -> List[int]:
        """Remote cores that may cache our translations (sorted for
        determinism)."""
        return sorted(c for c in self.cpumask if c != initiator_core_id)

    # ---- virtual address allocation ----------------------------------------

    def find_free_range(self, n_bytes: int, alignment: int = PAGE_SIZE) -> VirtRange:
        """First-fit from the free list, else bump allocation.

        Lazily-freed ranges are *not* on the free list, which is how the
        virtual half of LATR's reuse invariant is enforced: they only come
        back via :meth:`reclaim_vrange`. ``alignment`` supports huge-page
        mappings (2 MiB-aligned bases).
        """
        n_bytes = page_align_up(max(n_bytes, PAGE_SIZE))
        for i, candidate in enumerate(self._free_ranges):
            aligned_start = -(-candidate.start // alignment) * alignment
            if aligned_start + n_bytes <= candidate.end:
                del self._free_ranges[i]
                chosen = VirtRange(aligned_start, aligned_start + n_bytes)
                if aligned_start > candidate.start:
                    self._free_ranges.insert(
                        i, VirtRange(candidate.start, aligned_start)
                    )
                if chosen.end < candidate.end:
                    self._free_ranges.insert(
                        i, VirtRange(chosen.end, candidate.end)
                    )
                return chosen
        start = -(-self._bump // alignment) * alignment
        if start > self._bump:
            self.release_vrange(VirtRange(self._bump, start))
        self._bump = start + n_bytes
        return VirtRange(start, start + n_bytes)

    def release_vrange(self, vrange: VirtRange) -> None:
        """Return a range to the free list for immediate reuse (Linux path)."""
        self._free_ranges.append(vrange)

    def defer_vrange(self, vrange: VirtRange) -> None:
        """Park a range on the lazy list (LATR path, not yet reusable)."""
        self.lazy_vranges.append(vrange)

    def reclaim_vrange(self, vrange: VirtRange) -> None:
        """Move a lazily-freed range to the free list (reclaim daemon)."""
        self.lazy_vranges.remove(vrange)
        self._free_ranges.append(vrange)

    def vrange_is_lazy(self, vrange: VirtRange) -> bool:
        return any(v.overlaps(vrange) for v in self.lazy_vranges)

    # ---- lazy frames --------------------------------------------------------

    def defer_frames(self, pfns: List[int]) -> None:
        self.lazy_frames.extend(pfns)

    def take_lazy_frames(self, pfns: List[int]) -> None:
        for pfn in pfns:
            self.lazy_frames.remove(pfn)

    def bump_generation(self) -> int:
        self.map_generation += 1
        return self.map_generation

    def __repr__(self) -> str:  # pragma: no cover
        return f"<MmStruct {self.name} vmas={len(self.vmas)} ptes={len(self.page_table)}>"
