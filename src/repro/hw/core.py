"""Core model: execution time accounting, interrupts, idle state.

A core runs (at most) one task at a time; workload tasks burn CPU through
:meth:`Core.execute`, which transparently absorbs the time stolen by
interrupt handlers (the third shootdown overhead the paper attacks: remote
handler time). IPI delivery is immediate -- the handler preempts the task --
but the preempted task is slowed by exactly the handler's cost, which is how
the throughput loss from IPI storms materializes in the Apache and PARSEC
experiments.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.engine import Simulator, Timeout
from .tlb import Tlb

#: Granularity at which executing tasks absorb stolen interrupt time.
EXEC_QUANTUM_NS = 20_000


class Core:
    """One CPU core: a TLB, an interrupt sink, and execution accounting."""

    def __init__(self, core_id: int, socket: int, sim: Simulator, tlb: Tlb):
        self.id = core_id
        self.socket = socket
        self.sim = sim
        self.tlb = tlb
        #: Task currently scheduled here (set by the scheduler); None == idle.
        self.current_task = None
        #: Lazy-TLB idle mode (Linux's idle-core optimization, paper 2.3):
        #: while set, the core asks not to receive shootdown IPIs and will
        #: full-flush when it wakes.
        self.lazy_tlb_mode = False
        #: Deferred-flush flag: a shootdown was skipped while idle; flush on wake.
        self.needs_flush_on_wake = False

        # Interrupt accounting.
        self._pending_interrupt_ns = 0
        self._handler_busy_until = 0
        self.interrupts_received = 0
        self.interrupt_ns_total = 0

        # Execution accounting (for utilization reports).
        self.busy_ns_total = 0

    @property
    def idle(self) -> bool:
        return self.current_task is None

    def deliver_interrupt(self, handler_cost_ns: int) -> int:
        """An interrupt arrives now; returns the absolute completion time.

        Handlers on one core serialize (interrupts re-disabled while one
        runs), so a burst of IPIs drains back-to-back -- this produces the
        handler-queueing delays the paper mentions for remote cores with
        interrupts temporarily disabled.
        """
        start = max(self.sim.now, self._handler_busy_until)
        done = start + handler_cost_ns
        self._handler_busy_until = done
        self.interrupts_received += 1
        self.interrupt_ns_total += handler_cost_ns
        # The running task loses this much forward progress.
        self._pending_interrupt_ns += handler_cost_ns
        return done

    def steal_time(self, cost_ns: int) -> None:
        """Charge non-interrupt asynchronous work (e.g. LATR sweeps) to the
        task running here, without modelling an interrupt."""
        self._pending_interrupt_ns += cost_ns

    def execute(self, work_ns: int) -> Generator:
        """Burn ``work_ns`` of CPU; total elapsed time additionally includes
        any interrupt/sweep time that lands on this core meanwhile.

        Usage inside a process: ``yield from core.execute(ns)``.
        """
        if work_ns < 0:
            raise ValueError(f"negative work: {work_ns}")
        remaining = int(work_ns)
        while True:
            stolen = self._pending_interrupt_ns
            if stolen:
                self._pending_interrupt_ns = 0
                yield Timeout(stolen)
                continue
            if remaining <= 0:
                break
            chunk = min(remaining, EXEC_QUANTUM_NS)
            yield Timeout(chunk)
            self.busy_ns_total += chunk
            remaining -= chunk

    def drain_stolen_time(self) -> Generator:
        """Absorb any pending stolen time without doing new work."""
        yield from self.execute(0)

    def enter_idle(self) -> None:
        """Scheduler hook: the core went idle (enters lazy-TLB mode)."""
        self.current_task = None
        self.lazy_tlb_mode = True

    def exit_idle(self, task) -> int:
        """Scheduler hook: a task lands on an idle core.

        Returns the TLB-flush cost owed if a shootdown was deferred while
        idle (Linux lazy-TLB semantics: flush everything on wake).
        """
        self.current_task = task
        self.lazy_tlb_mode = False
        if self.needs_flush_on_wake:
            self.needs_flush_on_wake = False
            self.tlb.flush()
            return 1
        return 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Core {self.id} socket={self.socket} idle={self.idle}>"
