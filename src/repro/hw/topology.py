"""NUMA topology: socket placement and inter-socket hop counts.

The paper's Figure 7 discussion attributes the latency jump beyond three
sockets to IPIs needing two QPI hops on the 8-socket box. We model sockets
as a glueless ring-with-crosslinks (the E7-8870 v2 topology): adjacent
sockets and the direct cross link are one hop, everything else two.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import MachineSpec


class Topology:
    """Maps cores to sockets and answers hop-distance queries."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._socket_of: List[int] = [spec.socket_of(c) for c in range(spec.total_cores)]
        self._hops = self._build_socket_hops(spec.sockets)

    @staticmethod
    def _build_socket_hops(sockets: int) -> List[List[int]]:
        """Hop matrix between sockets.

        <=4 sockets are fully connected (1 hop); beyond that, ring neighbours
        and the diagonal cross link are 1 hop, the rest 2.
        """
        hops = [[0] * sockets for _ in range(sockets)]
        for a in range(sockets):
            for b in range(sockets):
                if a == b:
                    continue
                if sockets <= 4:
                    hops[a][b] = 1
                    continue
                ring = min((a - b) % sockets, (b - a) % sockets)
                cross = abs(a - b) == sockets // 2
                hops[a][b] = 1 if ring == 1 or cross else 2
        return hops

    def socket_of(self, core_id: int) -> int:
        return self._socket_of[core_id]

    def core_hops(self, core_a: int, core_b: int) -> int:
        """QPI hops between two cores (0 when on the same socket)."""
        return self._hops[self._socket_of[core_a]][self._socket_of[core_b]]

    def sharer_hop_counts(self, core_id: int, sharers) -> Dict[int, int]:
        """Histogram {hop distance: count} from ``core_id`` to every *other*
        core in ``sharers``. Equivalent to counting ``core_hops(core_id, s)``
        per sharer, but one pass over plain lists -- rmap bookkeeping sums
        a per-sharer cost on every munmap and the per-call overhead shows."""
        socket_of = self._socket_of
        row = self._hops[socket_of[core_id]]
        counts: Dict[int, int] = {}
        for other in sharers:
            if other != core_id:
                hops = row[socket_of[other]]
                counts[hops] = counts.get(hops, 0) + 1
        return counts

    def socket_hops(self, socket_a: int, socket_b: int) -> int:
        return self._hops[socket_a][socket_b]

    def cores_on_socket(self, socket: int) -> List[int]:
        return [c for c in range(self.spec.total_cores) if self._socket_of[c] == socket]

    def max_hops(self) -> int:
        return max(max(row) for row in self._hops)

    def numa_node_of(self, core_id: int) -> int:
        """NUMA node == socket on both Table 3 machines."""
        return self._socket_of[core_id]
