"""Per-core TLB model.

The functional heart of the reproduction: LATR's correctness argument is
entirely about *which translations survive in which core's TLB until when*.
We model the per-core TLB as a capacity-bounded LRU map from
``(pcid, vpn)`` to a cached translation, with the operations x86 exposes
(INVLPG for one entry, CR3 write for a full flush) plus hit/miss counters.

PCID support (paper section 4.5) is modelled with explicit tags: without
PCIDs a context switch flushes everything; with PCIDs entries of inactive
processes survive switches and must still be swept by LATR before the PCID
is reused.

``invalidate_range``, ``flush(pcid)`` and ``cached_vpns`` are O(victims)
rather than O(resident): a per-pcid secondary index (pcid -> vpn set,
maintained on fill/evict/invalidate) names exactly the entries a victim
pcid owns, so range shootdowns never scan the other processes' entries.
``Tlb(..., use_index=False)`` keeps the original linear scans selectable --
the differential tests prove both paths drop the same entries and report
the same stats.

Packed slots (``use_packed``, the default)
------------------------------------------

The hit path runs once per simulated memory access, so its representation
dominates the simulator's wall-clock at fleet scale. In packed mode keys
are single ints (``pcid << KEY_PCID_SHIFT | vpn`` -- no tuple allocation
per lookup) and entries are int-encoded slots (writable bit 0, then
generation, mm id and pfn bit fields -- no ``TlbEntry`` dataclass per
fill), stored in a plain insertion-ordered dict whose LRU refresh is a
delete + reinsert. ``fill``/``lookup``/``invalidate_range`` are then
allocation-free on the hit path (``fill_new`` skips even the legacy-mode
entry object at the two hot fill sites). Every inspection surface --
``peek``, ``items()``, ``canonical_rows()`` -- decodes back to
:class:`TlbEntry`/bool form, so invariant checkers, snapshots and the model
checker's canonical hash observe byte-identical state either way;
``use_packed=False`` (``use_packed_tlb`` on :class:`~repro.hw.machine.Machine`)
is the escape hatch back to the object representation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import count
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

#: PCID used for every process when PCID support is off.
NO_PCID = 0

#: Default for ``Tlb(use_index=...)`` when left unspecified.
DEFAULT_USE_TLB_INDEX = True

#: Default for ``Tlb(use_packed=...)`` when left unspecified.
DEFAULT_USE_PACKED_TLB = True

#: Process-global version numbers for TLB change tracking. Values are
#: never reused, so equal versions imply identical state: a version is
#: first assigned to exactly one state, mutations always take a fresh
#: number, and a restore only rewinds the version together with the
#: state it names (see ``repro.snapshot._tlb_restore``).
_VERSIONS = count(1)


@dataclass
class TlbEntry:
    """A cached virtual-to-physical translation."""

    pfn: int
    writable: bool = True
    #: Generation stamp of the mapping when cached; used by invariant checks
    #: to detect a stale entry being used after the frame was reused.
    generation: int = 0
    #: Debug metadata (not hardware state): which mm installed the entry.
    #: Lets the invariant checker attribute entries when PCIDs are off.
    debug_mm_id: int = 0


#: Number of vpns one 2 MiB entry spans (mirrors mm.addr.HUGE_PAGE_PAGES;
#: duplicated here so the hardware layer stays import-independent of mm).
HUGE_SPAN = 512

#: Packed-key layout: vpn in the low bits, pcid above. 48 vpn bits cover
#: the whole modelled virtual address space with room to spare.
KEY_PCID_SHIFT = 48
KEY_VPN_MASK = (1 << KEY_PCID_SHIFT) - 1

#: Packed-entry layout (low to high): writable bit, 32 generation bits,
#: 20 debug-mm-id bits, then the pfn. Fields are sized so the whole slot
#: stays a small int for the frame counts and process counts the simulator
#: ever reaches.
ENTRY_GEN_SHIFT = 1
ENTRY_GEN_MASK = (1 << 32) - 1
ENTRY_MM_SHIFT = 33
ENTRY_MM_MASK = (1 << 20) - 1
ENTRY_PFN_SHIFT = 53

#: A resident translation as handed out by ``lookup``: a TlbEntry in the
#: legacy representation, an int-encoded slot in packed mode. Hot callers
#: use the ``entry_*`` accessors below, which dispatch on the type.
TlbSlot = Union[TlbEntry, int]


def encode_entry(pfn: int, writable: bool, generation: int, mm_id: int) -> int:
    """Pack translation fields into one int slot."""
    return (
        (pfn << ENTRY_PFN_SHIFT)
        | ((mm_id & ENTRY_MM_MASK) << ENTRY_MM_SHIFT)
        | ((generation & ENTRY_GEN_MASK) << ENTRY_GEN_SHIFT)
        | (1 if writable else 0)
    )


def decode_entry(slot: int) -> TlbEntry:
    """Unpack an int slot back into a TlbEntry (bool writable and all)."""
    return TlbEntry(
        pfn=slot >> ENTRY_PFN_SHIFT,
        writable=bool(slot & 1),
        generation=(slot >> ENTRY_GEN_SHIFT) & ENTRY_GEN_MASK,
        debug_mm_id=(slot >> ENTRY_MM_SHIFT) & ENTRY_MM_MASK,
    )


def entry_pfn(entry: TlbSlot) -> int:
    return entry >> ENTRY_PFN_SHIFT if type(entry) is int else entry.pfn


def entry_writable(entry: TlbSlot) -> bool:
    return entry & 1 != 0 if type(entry) is int else entry.writable


def entry_generation(entry: TlbSlot) -> int:
    if type(entry) is int:
        return (entry >> ENTRY_GEN_SHIFT) & ENTRY_GEN_MASK
    return entry.generation


class Tlb:
    """A single core's TLB (split 4 KiB / 2 MiB arrays, like x86 L1 dTLBs)."""

    def __init__(
        self,
        capacity: int,
        pcid_enabled: bool = False,
        huge_capacity: int = 32,
        use_index: Optional[bool] = None,
        use_packed: Optional[bool] = None,
    ):
        if capacity < 1:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self.huge_capacity = huge_capacity
        self.pcid_enabled = pcid_enabled
        self.use_index = DEFAULT_USE_TLB_INDEX if use_index is None else bool(use_index)
        self.packed = DEFAULT_USE_PACKED_TLB if use_packed is None else bool(use_packed)
        if self.packed:
            # Plain dicts are insertion-ordered; LRU refresh is del+reinsert
            # and the LRU victim is next(iter(...)) -- same order semantics
            # as OrderedDict.move_to_end/popitem(last=False), less overhead.
            self._entries: dict = {}
            self._huge_entries: dict = {}
        else:
            self._entries = OrderedDict()
            #: 2 MiB entries keyed by (pcid, base_vpn).
            self._huge_entries = OrderedDict()
        #: Secondary index: effective pcid -> vpns resident in _entries.
        self._index: Dict[int, Set[int]] = {}
        #: Same for the huge array (base vpns).
        self._huge_index: Dict[int, Set[int]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.full_flushes = 0
        self.evictions = 0
        #: Bumped on *any* observable change (incl. LRU order and the
        #: hit/miss counters): snapshot/restore skip work when equal.
        self._state_version = next(_VERSIONS)
        #: Bumped only when the resident entry set (or index) changes:
        #: keys the model checker's canonical-fragment cache.
        self._entries_version = next(_VERSIONS)

    def __len__(self) -> int:
        return len(self._entries) + len(self._huge_entries)

    def _key(self, pcid: int, vpn: int):
        eff = pcid if self.pcid_enabled else NO_PCID
        if self.packed:
            return (eff << KEY_PCID_SHIFT) | vpn
        return (eff, vpn)

    def _huge_key(self, pcid: int, vpn: int):
        eff = pcid if self.pcid_enabled else NO_PCID
        base = vpn - vpn % HUGE_SPAN
        if self.packed:
            return (eff << KEY_PCID_SHIFT) | base
        return (eff, base)

    def _split_key(self, key) -> Tuple[int, int]:
        if self.packed:
            return key >> KEY_PCID_SHIFT, key & KEY_VPN_MASK
        return key

    # ---- index maintenance -----------------------------------------------------

    def _index_add(self, index: Dict[int, Set[int]], key) -> None:
        pcid, vpn = self._split_key(key)
        vpns = index.get(pcid)
        if vpns is None:
            vpns = index[pcid] = set()
        vpns.add(vpn)

    def _index_drop(self, index: Dict[int, Set[int]], key) -> None:
        pcid, vpn = self._split_key(key)
        vpns = index.get(pcid)
        if vpns is not None:
            vpns.discard(vpn)
            if not vpns:
                del index[pcid]

    # ---- lookups and fills -----------------------------------------------------

    def lookup(self, pcid: int, vpn: int) -> Optional[TlbSlot]:
        """Translate; counts a hit or miss and refreshes LRU position.

        Returns the resident slot in its native representation (TlbEntry or
        packed int) -- read it through ``entry_pfn``/``entry_writable``."""
        self._state_version = next(_VERSIONS)
        if self.packed:
            eff = pcid if self.pcid_enabled else NO_PCID
            key = (eff << KEY_PCID_SHIFT) | vpn
            entries = self._entries
            slot = entries.get(key)
            if slot is not None:
                del entries[key]
                entries[key] = slot
                self.hits += 1
                return slot
            hkey = (eff << KEY_PCID_SHIFT) | (vpn - vpn % HUGE_SPAN)
            huge = self._huge_entries
            slot = huge.get(hkey)
            if slot is not None:
                del huge[hkey]
                huge[hkey] = slot
                self.hits += 1
                return slot
            self.misses += 1
            return None
        key = self._key(pcid, vpn)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        hkey = self._huge_key(pcid, vpn)
        entry = self._huge_entries.get(hkey)
        if entry is not None:
            self._huge_entries.move_to_end(hkey)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def peek(self, pcid: int, vpn: int) -> Optional[TlbEntry]:
        """Inspect without touching counters or LRU (for invariant checks).
        Always returns decoded ``TlbEntry`` form, in both representations."""
        entry = self._entries.get(self._key(pcid, vpn))
        if entry is None:
            entry = self._huge_entries.get(self._huge_key(pcid, vpn))
        if entry is None:
            return None
        return decode_entry(entry) if self.packed else entry

    def fill(self, pcid: int, vpn: int, entry: TlbEntry) -> None:
        """Install a 4 KiB translation, evicting LRU on overflow."""
        if self.packed:
            self.fill_new(
                pcid, vpn, entry.pfn, entry.writable, entry.generation,
                entry.debug_mm_id,
            )
            return
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        key = self._key(pcid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        if self.use_index:
            self._index_add(self._index, key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            if self.use_index:
                self._index_drop(self._index, evicted)
            self.evictions += 1

    def fill_new(
        self,
        pcid: int,
        vpn: int,
        pfn: int,
        writable: bool = True,
        generation: int = 0,
        mm_id: int = 0,
    ) -> None:
        """Install a fresh 4 KiB translation from raw fields.

        The hot-path form of :meth:`fill`: packed mode encodes the slot
        directly (no TlbEntry allocated), legacy mode builds the entry
        object exactly as callers used to."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        if not self.packed:
            key = self._key(pcid, vpn)
            entries = self._entries
            if key in entries:
                entries.move_to_end(key)
            entries[key] = TlbEntry(
                pfn=pfn, writable=writable, generation=generation,
                debug_mm_id=mm_id,
            )
            if self.use_index:
                self._index_add(self._index, key)
            while len(entries) > self.capacity:
                evicted, _ = entries.popitem(last=False)
                if self.use_index:
                    self._index_drop(self._index, evicted)
                self.evictions += 1
            return
        eff = pcid if self.pcid_enabled else NO_PCID
        key = (eff << KEY_PCID_SHIFT) | vpn
        slot = (
            (pfn << ENTRY_PFN_SHIFT)
            | ((mm_id & ENTRY_MM_MASK) << ENTRY_MM_SHIFT)
            | ((generation & ENTRY_GEN_MASK) << ENTRY_GEN_SHIFT)
            | (1 if writable else 0)
        )
        entries = self._entries
        if key in entries:
            del entries[key]
        entries[key] = slot
        if self.use_index:
            vpns = self._index.get(eff)
            if vpns is None:
                vpns = self._index[eff] = set()
            vpns.add(vpn)
        capacity = self.capacity
        while len(entries) > capacity:
            evicted = next(iter(entries))
            del entries[evicted]
            if self.use_index:
                self._index_drop(self._index, evicted)
            self.evictions += 1

    def fill_huge(self, pcid: int, base_vpn: int, entry: TlbEntry) -> None:
        """Install a 2 MiB translation in the huge array."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        if base_vpn % HUGE_SPAN:
            raise ValueError(f"huge fill not aligned: vpn {base_vpn:#x}")
        key = self._key(pcid, base_vpn)
        huge = self._huge_entries
        if self.packed:
            slot = encode_entry(
                entry.pfn, entry.writable, entry.generation, entry.debug_mm_id
            )
            if key in huge:
                del huge[key]
            huge[key] = slot
        else:
            if key in huge:
                huge.move_to_end(key)
            huge[key] = entry
        if self.use_index:
            self._index_add(self._huge_index, key)
        while len(huge) > self.huge_capacity:
            if self.packed:
                evicted = next(iter(huge))
                del huge[evicted]
            else:
                evicted, _ = huge.popitem(last=False)
            if self.use_index:
                self._index_drop(self._huge_index, evicted)
            self.evictions += 1

    # ---- invalidation ----------------------------------------------------------

    def invalidate_page(self, pcid: int, vpn: int) -> bool:
        """INVLPG: drop the translation covering ``vpn``; True if present."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        key = self._key(pcid, vpn)
        if key in self._entries:
            del self._entries[key]
            if self.use_index:
                self._index_drop(self._index, key)
            self.invalidations += 1
            return True
        hkey = self._huge_key(pcid, vpn)
        if hkey in self._huge_entries:
            del self._huge_entries[hkey]
            if self.use_index:
                self._index_drop(self._huge_index, hkey)
            self.invalidations += 1
            return True
        return False

    def invalidate_range(self, pcid: int, vpn_start: int, vpn_end: int) -> int:
        """Drop all translations overlapping [vpn_start, vpn_end).

        The indexed body lives inline here (not behind a second method
        call): LATR sweeps call this once per matching state per core."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        eff_pcid = pcid if self.pcid_enabled else NO_PCID
        if not self.use_index:
            dropped = self._invalidate_range_scan(eff_pcid, vpn_start, vpn_end)
            self.invalidations += dropped
            return dropped
        packed = self.packed
        key_base = eff_pcid << KEY_PCID_SHIFT
        dropped = 0
        vpns = self._index.get(eff_pcid)
        if vpns:
            if vpn_end - vpn_start <= len(vpns):
                victims = [v for v in range(vpn_start, vpn_end) if v in vpns]
            else:
                victims = [v for v in vpns if vpn_start <= v < vpn_end]
            entries = self._entries
            if packed:
                for vpn in victims:
                    del entries[key_base | vpn]
                    vpns.discard(vpn)
            else:
                for vpn in victims:
                    del entries[(eff_pcid, vpn)]
                    vpns.discard(vpn)
            if not vpns:
                del self._index[eff_pcid]
            dropped += len(victims)
        huge_vpns = self._huge_index.get(eff_pcid)
        if huge_vpns:
            huge_victims = [
                v for v in huge_vpns if v < vpn_end and v + HUGE_SPAN > vpn_start
            ]
            huge_entries = self._huge_entries
            if packed:
                for vpn in huge_victims:
                    del huge_entries[key_base | vpn]
                    huge_vpns.discard(vpn)
            else:
                for vpn in huge_victims:
                    del huge_entries[(eff_pcid, vpn)]
                    huge_vpns.discard(vpn)
            if not huge_vpns:
                del self._huge_index[eff_pcid]
            dropped += len(huge_victims)
        self.invalidations += dropped
        return dropped

    def _invalidate_range_indexed(self, eff_pcid: int, vpn_start: int, vpn_end: int) -> int:
        """O(victims): only this pcid's entries are ever examined, and the
        4 KiB pass walks whichever is smaller -- the range or the pcid's
        resident set. (Kept as the testable form of the inline body in
        :meth:`invalidate_range`.)"""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        key_base = eff_pcid << KEY_PCID_SHIFT
        dropped = 0
        vpns = self._index.get(eff_pcid)
        if vpns:
            if vpn_end - vpn_start <= len(vpns):
                victims = [v for v in range(vpn_start, vpn_end) if v in vpns]
            else:
                victims = [v for v in vpns if vpn_start <= v < vpn_end]
            for vpn in victims:
                del self._entries[key_base | vpn if self.packed else (eff_pcid, vpn)]
                vpns.discard(vpn)
            if not vpns:
                del self._index[eff_pcid]
            dropped += len(victims)
        huge_vpns = self._huge_index.get(eff_pcid)
        if huge_vpns:
            huge_victims = [
                v for v in huge_vpns if v < vpn_end and v + HUGE_SPAN > vpn_start
            ]
            for vpn in huge_victims:
                del self._huge_entries[key_base | vpn if self.packed else (eff_pcid, vpn)]
                huge_vpns.discard(vpn)
            if not huge_vpns:
                del self._huge_index[eff_pcid]
            dropped += len(huge_victims)
        return dropped

    def _invalidate_range_scan(self, eff_pcid: int, vpn_start: int, vpn_end: int) -> int:
        """The original linear scan over every resident entry."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        split = self._split_key
        victims = []
        for key in self._entries:
            pcid, vpn = split(key)
            if pcid == eff_pcid and vpn_start <= vpn < vpn_end:
                victims.append(key)
        for key in victims:
            del self._entries[key]
        huge_victims = []
        for key in self._huge_entries:
            pcid, vpn = split(key)
            if pcid == eff_pcid and vpn < vpn_end and vpn + HUGE_SPAN > vpn_start:
                huge_victims.append(key)
        for key in huge_victims:
            del self._huge_entries[key]
        return len(victims) + len(huge_victims)

    def flush(self, pcid: Optional[int] = None) -> int:
        """CR3 write: drop everything (or one PCID's entries when tagged)."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        self.full_flushes += 1
        if pcid is None or not self.pcid_enabled:
            count = len(self._entries) + len(self._huge_entries)
            self._entries.clear()
            self._huge_entries.clear()
            self._index.clear()
            self._huge_index.clear()
            return count
        key_base = pcid << KEY_PCID_SHIFT
        if self.use_index:
            vpns = self._index.pop(pcid, ())
            for vpn in vpns:
                del self._entries[key_base | vpn if self.packed else (pcid, vpn)]
            huge_vpns = self._huge_index.pop(pcid, ())
            for vpn in huge_vpns:
                del self._huge_entries[key_base | vpn if self.packed else (pcid, vpn)]
            return len(vpns) + len(huge_vpns)
        split = self._split_key
        victims = [key for key in self._entries if split(key)[0] == pcid]
        for key in victims:
            del self._entries[key]
        huge_victims = [key for key in self._huge_entries if split(key)[0] == pcid]
        for key in huge_victims:
            del self._huge_entries[key]
        return len(victims) + len(huge_victims)

    # ---- inspection ------------------------------------------------------------

    def items(self) -> Iterable[Tuple[Tuple[int, int], TlbEntry]]:
        """All 4 KiB ((pcid, vpn), entry) pairs; for invariant checkers.
        Decoded to tuple keys and TlbEntry values in both representations,
        in residence (LRU) order."""
        if self.packed:
            return [
                (self._split_key(key), decode_entry(slot))
                for key, slot in self._entries.items()
            ]
        return list(self._entries.items())

    def huge_items(self) -> Iterable[Tuple[Tuple[int, int], TlbEntry]]:
        """All 2 MiB ((pcid, base_vpn), entry) pairs."""
        if self.packed:
            return [
                (self._split_key(key), decode_entry(slot))
                for key, slot in self._huge_entries.items()
            ]
        return list(self._huge_entries.items())

    def canonical_rows(self) -> List[Tuple[int, int, int, bool, int]]:
        """Sorted (pcid, vpn, pfn, writable, generation) rows of the 4 KiB
        array -- the representation-independent form the model checker
        hashes. Byte-identical between packed and legacy modes."""
        if self.packed:
            return sorted(
                (
                    key >> KEY_PCID_SHIFT,
                    key & KEY_VPN_MASK,
                    slot >> ENTRY_PFN_SHIFT,
                    bool(slot & 1),
                    (slot >> ENTRY_GEN_SHIFT) & ENTRY_GEN_MASK,
                )
                for key, slot in self._entries.items()
            )
        return sorted(
            (pcid, vpn, e.pfn, e.writable, e.generation)
            for (pcid, vpn), e in self._entries.items()
        )

    def canonical_huge_rows(self) -> List[Tuple[int, int, int, bool, int]]:
        """Huge-array twin of :meth:`canonical_rows`."""
        if self.packed:
            return sorted(
                (
                    key >> KEY_PCID_SHIFT,
                    key & KEY_VPN_MASK,
                    slot >> ENTRY_PFN_SHIFT,
                    bool(slot & 1),
                    (slot >> ENTRY_GEN_SHIFT) & ENTRY_GEN_MASK,
                )
                for key, slot in self._huge_entries.items()
            )
        return sorted(
            (pcid, vpn, e.pfn, e.writable, e.generation)
            for (pcid, vpn), e in self._huge_entries.items()
        )

    def cached_vpns(self, pcid: int) -> Iterable[int]:
        eff_pcid = pcid if self.pcid_enabled else NO_PCID
        if self.use_index:
            return sorted(self._index.get(eff_pcid, ()))
        return [
            vpn for (p, vpn) in map(self._split_key, self._entries) if p == eff_pcid
        ]

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "full_flushes": self.full_flushes,
            "evictions": self.evictions,
            "resident": len(self._entries),
        }
