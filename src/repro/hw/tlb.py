"""Per-core TLB model.

The functional heart of the reproduction: LATR's correctness argument is
entirely about *which translations survive in which core's TLB until when*.
We model the per-core TLB as a capacity-bounded LRU map from
``(pcid, vpn)`` to a cached translation, with the operations x86 exposes
(INVLPG for one entry, CR3 write for a full flush) plus hit/miss counters.

PCID support (paper section 4.5) is modelled with explicit tags: without
PCIDs a context switch flushes everything; with PCIDs entries of inactive
processes survive switches and must still be swept by LATR before the PCID
is reused.

``invalidate_range``, ``flush(pcid)`` and ``cached_vpns`` are O(victims)
rather than O(resident): a per-pcid secondary index (pcid -> vpn set,
maintained on fill/evict/invalidate) names exactly the entries a victim
pcid owns, so range shootdowns never scan the other processes' entries.
``Tlb(..., use_index=False)`` keeps the original linear scans selectable --
the differential tests prove both paths drop the same entries and report
the same stats.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import count
from typing import Dict, Iterable, Optional, Set, Tuple

#: PCID used for every process when PCID support is off.
NO_PCID = 0

#: Default for ``Tlb(use_index=...)`` when left unspecified.
DEFAULT_USE_TLB_INDEX = True

#: Process-global version numbers for TLB change tracking. Values are
#: never reused, so equal versions imply identical state: a version is
#: first assigned to exactly one state, mutations always take a fresh
#: number, and a restore only rewinds the version together with the
#: state it names (see ``repro.snapshot._tlb_restore``).
_VERSIONS = count(1)


@dataclass
class TlbEntry:
    """A cached virtual-to-physical translation."""

    pfn: int
    writable: bool = True
    #: Generation stamp of the mapping when cached; used by invariant checks
    #: to detect a stale entry being used after the frame was reused.
    generation: int = 0
    #: Debug metadata (not hardware state): which mm installed the entry.
    #: Lets the invariant checker attribute entries when PCIDs are off.
    debug_mm_id: int = 0


#: Number of vpns one 2 MiB entry spans (mirrors mm.addr.HUGE_PAGE_PAGES;
#: duplicated here so the hardware layer stays import-independent of mm).
HUGE_SPAN = 512


class Tlb:
    """A single core's TLB (split 4 KiB / 2 MiB arrays, like x86 L1 dTLBs)."""

    def __init__(
        self,
        capacity: int,
        pcid_enabled: bool = False,
        huge_capacity: int = 32,
        use_index: Optional[bool] = None,
    ):
        if capacity < 1:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self.huge_capacity = huge_capacity
        self.pcid_enabled = pcid_enabled
        self.use_index = DEFAULT_USE_TLB_INDEX if use_index is None else bool(use_index)
        self._entries: "OrderedDict[Tuple[int, int], TlbEntry]" = OrderedDict()
        #: 2 MiB entries keyed by (pcid, base_vpn).
        self._huge_entries: "OrderedDict[Tuple[int, int], TlbEntry]" = OrderedDict()
        #: Secondary index: effective pcid -> vpns resident in _entries.
        self._index: Dict[int, Set[int]] = {}
        #: Same for the huge array (base vpns).
        self._huge_index: Dict[int, Set[int]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.full_flushes = 0
        self.evictions = 0
        #: Bumped on *any* observable change (incl. LRU order and the
        #: hit/miss counters): snapshot/restore skip work when equal.
        self._state_version = next(_VERSIONS)
        #: Bumped only when the resident entry set (or index) changes:
        #: keys the model checker's canonical-fragment cache.
        self._entries_version = next(_VERSIONS)

    def __len__(self) -> int:
        return len(self._entries) + len(self._huge_entries)

    def _key(self, pcid: int, vpn: int) -> Tuple[int, int]:
        return (pcid if self.pcid_enabled else NO_PCID, vpn)

    def _huge_key(self, pcid: int, vpn: int) -> Tuple[int, int]:
        return (pcid if self.pcid_enabled else NO_PCID, vpn - vpn % HUGE_SPAN)

    # ---- index maintenance -----------------------------------------------------

    def _index_add(self, index: Dict[int, Set[int]], key: Tuple[int, int]) -> None:
        vpns = index.get(key[0])
        if vpns is None:
            vpns = index[key[0]] = set()
        vpns.add(key[1])

    def _index_drop(self, index: Dict[int, Set[int]], key: Tuple[int, int]) -> None:
        vpns = index.get(key[0])
        if vpns is not None:
            vpns.discard(key[1])
            if not vpns:
                del index[key[0]]

    # ---- lookups and fills -----------------------------------------------------

    def lookup(self, pcid: int, vpn: int) -> Optional[TlbEntry]:
        """Translate; counts a hit or miss and refreshes LRU position."""
        self._state_version = next(_VERSIONS)
        key = self._key(pcid, vpn)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        hkey = self._huge_key(pcid, vpn)
        entry = self._huge_entries.get(hkey)
        if entry is not None:
            self._huge_entries.move_to_end(hkey)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def peek(self, pcid: int, vpn: int) -> Optional[TlbEntry]:
        """Inspect without touching counters or LRU (for invariant checks)."""
        entry = self._entries.get(self._key(pcid, vpn))
        if entry is not None:
            return entry
        return self._huge_entries.get(self._huge_key(pcid, vpn))

    def fill(self, pcid: int, vpn: int, entry: TlbEntry) -> None:
        """Install a 4 KiB translation, evicting LRU on overflow."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        key = self._key(pcid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        if self.use_index:
            self._index_add(self._index, key)
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            if self.use_index:
                self._index_drop(self._index, evicted)
            self.evictions += 1

    def fill_huge(self, pcid: int, base_vpn: int, entry: TlbEntry) -> None:
        """Install a 2 MiB translation in the huge array."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        if base_vpn % HUGE_SPAN:
            raise ValueError(f"huge fill not aligned: vpn {base_vpn:#x}")
        key = self._key(pcid, base_vpn)
        if key in self._huge_entries:
            self._huge_entries.move_to_end(key)
        self._huge_entries[key] = entry
        if self.use_index:
            self._index_add(self._huge_index, key)
        while len(self._huge_entries) > self.huge_capacity:
            evicted, _ = self._huge_entries.popitem(last=False)
            if self.use_index:
                self._index_drop(self._huge_index, evicted)
            self.evictions += 1

    # ---- invalidation ----------------------------------------------------------

    def invalidate_page(self, pcid: int, vpn: int) -> bool:
        """INVLPG: drop the translation covering ``vpn``; True if present."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        key = self._key(pcid, vpn)
        if key in self._entries:
            del self._entries[key]
            if self.use_index:
                self._index_drop(self._index, key)
            self.invalidations += 1
            return True
        hkey = self._huge_key(pcid, vpn)
        if hkey in self._huge_entries:
            del self._huge_entries[hkey]
            if self.use_index:
                self._index_drop(self._huge_index, hkey)
            self.invalidations += 1
            return True
        return False

    def invalidate_range(self, pcid: int, vpn_start: int, vpn_end: int) -> int:
        """Drop all translations overlapping [vpn_start, vpn_end).

        The indexed body lives inline here (not behind a second method
        call): LATR sweeps call this once per matching state per core."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        eff_pcid = pcid if self.pcid_enabled else NO_PCID
        if not self.use_index:
            dropped = self._invalidate_range_scan(eff_pcid, vpn_start, vpn_end)
            self.invalidations += dropped
            return dropped
        dropped = 0
        vpns = self._index.get(eff_pcid)
        if vpns:
            if vpn_end - vpn_start <= len(vpns):
                victims = [v for v in range(vpn_start, vpn_end) if v in vpns]
            else:
                victims = [v for v in vpns if vpn_start <= v < vpn_end]
            entries = self._entries
            for vpn in victims:
                del entries[(eff_pcid, vpn)]
                vpns.discard(vpn)
            if not vpns:
                del self._index[eff_pcid]
            dropped += len(victims)
        huge_vpns = self._huge_index.get(eff_pcid)
        if huge_vpns:
            huge_victims = [
                v for v in huge_vpns if v < vpn_end and v + HUGE_SPAN > vpn_start
            ]
            huge_entries = self._huge_entries
            for vpn in huge_victims:
                del huge_entries[(eff_pcid, vpn)]
                huge_vpns.discard(vpn)
            if not huge_vpns:
                del self._huge_index[eff_pcid]
            dropped += len(huge_victims)
        self.invalidations += dropped
        return dropped

    def _invalidate_range_indexed(self, eff_pcid: int, vpn_start: int, vpn_end: int) -> int:
        """O(victims): only this pcid's entries are ever examined, and the
        4 KiB pass walks whichever is smaller -- the range or the pcid's
        resident set. (Kept as the testable form of the inline body in
        :meth:`invalidate_range`.)"""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        dropped = 0
        vpns = self._index.get(eff_pcid)
        if vpns:
            if vpn_end - vpn_start <= len(vpns):
                victims = [v for v in range(vpn_start, vpn_end) if v in vpns]
            else:
                victims = [v for v in vpns if vpn_start <= v < vpn_end]
            for vpn in victims:
                del self._entries[(eff_pcid, vpn)]
                vpns.discard(vpn)
            if not vpns:
                del self._index[eff_pcid]
            dropped += len(victims)
        huge_vpns = self._huge_index.get(eff_pcid)
        if huge_vpns:
            huge_victims = [
                v for v in huge_vpns if v < vpn_end and v + HUGE_SPAN > vpn_start
            ]
            for vpn in huge_victims:
                del self._huge_entries[(eff_pcid, vpn)]
                huge_vpns.discard(vpn)
            if not huge_vpns:
                del self._huge_index[eff_pcid]
            dropped += len(huge_victims)
        return dropped

    def _invalidate_range_scan(self, eff_pcid: int, vpn_start: int, vpn_end: int) -> int:
        """The original linear scan over every resident entry."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        victims = [
            key
            for key in self._entries
            if key[0] == eff_pcid and vpn_start <= key[1] < vpn_end
        ]
        for key in victims:
            del self._entries[key]
        huge_victims = [
            key
            for key in self._huge_entries
            if key[0] == eff_pcid and key[1] < vpn_end and key[1] + HUGE_SPAN > vpn_start
        ]
        for key in huge_victims:
            del self._huge_entries[key]
        return len(victims) + len(huge_victims)

    def flush(self, pcid: Optional[int] = None) -> int:
        """CR3 write: drop everything (or one PCID's entries when tagged)."""
        self._state_version = next(_VERSIONS)
        self._entries_version = next(_VERSIONS)
        self.full_flushes += 1
        if pcid is None or not self.pcid_enabled:
            count = len(self._entries) + len(self._huge_entries)
            self._entries.clear()
            self._huge_entries.clear()
            self._index.clear()
            self._huge_index.clear()
            return count
        if self.use_index:
            vpns = self._index.pop(pcid, ())
            for vpn in vpns:
                del self._entries[(pcid, vpn)]
            huge_vpns = self._huge_index.pop(pcid, ())
            for vpn in huge_vpns:
                del self._huge_entries[(pcid, vpn)]
            return len(vpns) + len(huge_vpns)
        victims = [key for key in self._entries if key[0] == pcid]
        for key in victims:
            del self._entries[key]
        huge_victims = [key for key in self._huge_entries if key[0] == pcid]
        for key in huge_victims:
            del self._huge_entries[key]
        return len(victims) + len(huge_victims)

    # ---- inspection ------------------------------------------------------------

    def items(self) -> Iterable[Tuple[Tuple[int, int], TlbEntry]]:
        """All 4 KiB ((pcid, vpn), entry) pairs; for invariant checkers."""
        return list(self._entries.items())

    def huge_items(self) -> Iterable[Tuple[Tuple[int, int], TlbEntry]]:
        """All 2 MiB ((pcid, base_vpn), entry) pairs."""
        return list(self._huge_entries.items())

    def cached_vpns(self, pcid: int) -> Iterable[int]:
        eff_pcid = pcid if self.pcid_enabled else NO_PCID
        if self.use_index:
            return sorted(self._index.get(eff_pcid, ()))
        return [vpn for (p, vpn) in self._entries if p == eff_pcid]

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "full_flushes": self.full_flushes,
            "evictions": self.evictions,
            "resident": len(self._entries),
        }
