"""Last-level cache model for the Table 4 miss-ratio comparison.

Table 4 measures two opposing second-order effects:

* Linux's IPI interrupt handlers *pollute* the LLC: every handler drags its
  code/stack/data through the cache, evicting application lines that later
  miss (the paper credits LATR's miss-ratio improvements to the removed IPI
  handling).
* LATR's states *add* a small footprint -- 64 states x 68 B per core, under
  1% of the LLC -- and every sweep pulls remote cores' state lines across
  sockets.

We account both in lines and derive the relative miss-ratio change against a
per-application baseline access/miss profile. This is deliberately a model
of *deltas*, not an address-accurate cache: Table 4's signal is the sign and
rough magnitude of the change, which these two terms determine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.engine import SEC, Simulator
from ..sim.stats import StatsRegistry
from .spec import MachineSpec

CACHELINE_BYTES = 64

#: Fraction of displaced/fetched lines that convert into *extra LLC misses*
#: for the application: most lines an interrupt handler (or a state sweep)
#: drags through the cache are either never re-referenced by the app or
#: would have been evicted anyway. Calibrated so the Table 4 deltas land in
#: the paper's sub-percent band.
POLLUTION_MISS_CONVERSION = 0.005


@dataclass
class CacheProfile:
    """Per-application LLC behaviour under the Linux baseline (measured
    column of Table 4): accesses per second per core and the baseline miss
    ratio including the baseline's own IPI pollution."""

    accesses_per_sec_per_core: float
    baseline_miss_pct: float


class LlcModel:
    """Accumulates cache-disturbance events during a run."""

    def __init__(self, sim: Simulator, spec: MachineSpec, stats: StatsRegistry):
        self.sim = sim
        self.spec = spec
        self.stats = stats
        self._pollution_lines = 0
        self._state_lines = 0
        self._window_start = 0

    def start_window(self) -> None:
        self._pollution_lines = 0
        self._state_lines = 0
        self._window_start = self.sim.now

    def record_interrupt_pollution(self, lines: int) -> None:
        """An IPI handler ran, evicting ``lines`` application lines."""
        self._pollution_lines += lines
        self.stats.counter("llc.pollution_lines").add(lines)

    def record_state_traffic(self, lines: int) -> None:
        """LATR state lines written/pulled across the hierarchy."""
        self._state_lines += lines
        self.stats.counter("llc.state_lines").add(lines)

    @property
    def state_footprint_fraction(self) -> float:
        """LATR states as a fraction of total LLC (paper: <1%, <1.3%)."""
        return self.spec.latr_state_footprint_bytes / self.spec.llc_total_bytes

    def miss_ratio(self, profile: CacheProfile, active_cores: int) -> float:
        """Estimated LLC miss percentage over the current window.

        The baseline miss ratio already contains the Linux IPI pollution, so
        the disturbance terms are counted *relative to zero* here and the
        caller compares two runs of different mechanisms: the run with more
        pollution/state traffic reports the higher ratio.
        """
        elapsed = max(1, self.sim.now - self._window_start)
        accesses = profile.accesses_per_sec_per_core * active_cores * (elapsed / SEC)
        if accesses <= 0:
            return profile.baseline_miss_pct
        extra_misses = (
            self._pollution_lines + self._state_lines
        ) * POLLUTION_MISS_CONVERSION
        return profile.baseline_miss_pct + 100.0 * extra_misses / accesses

    def summary(self) -> Dict[str, float]:
        return {
            "pollution_lines": float(self._pollution_lines),
            "state_lines": float(self._state_lines),
            "state_footprint_fraction": self.state_footprint_fraction,
        }
