"""Machine assembly: spec + topology + cores + interconnect + LLC."""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Simulator
from ..sim.stats import StatsRegistry
from .cache import LlcModel
from .core import Core
from .interconnect import Interconnect
from .latency import DEFAULT_LATENCY, LatencyModel
from .spec import MachineSpec
from .tlb import Tlb
from .topology import Topology


class Machine:
    """A simulated NUMA machine ready to host a kernel."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        latency: Optional[LatencyModel] = None,
        stats: Optional[StatsRegistry] = None,
        pcid_enabled: bool = False,
        use_tlb_index: Optional[bool] = None,
        gate_latencies: Optional[bool] = None,
        use_packed_tlb: Optional[bool] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.latency = latency or DEFAULT_LATENCY
        self.stats = stats or StatsRegistry(sim, gate_latencies=gate_latencies)
        self.pcid_enabled = pcid_enabled
        self.topology = Topology(spec)
        self.cores: List[Core] = [
            Core(
                core_id=c,
                socket=spec.socket_of(c),
                sim=sim,
                tlb=Tlb(
                    spec.l1_dtlb_entries,
                    pcid_enabled=pcid_enabled,
                    use_index=use_tlb_index,
                    use_packed=use_packed_tlb,
                ),
            )
            for c in range(spec.total_cores)
        ]
        self.interconnect = Interconnect(sim, self.topology, self.latency, self.stats)
        self.llc = LlcModel(sim, spec, self.stats)

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    @property
    def n_cores(self) -> int:
        return self.spec.total_cores

    def cores_on_node(self, node: int) -> List[Core]:
        return [c for c in self.cores if c.socket == node]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Machine {self.spec.name}: {self.n_cores} cores / {self.spec.sockets} sockets>"
