"""Hardware model: machines, cores, TLBs, interconnect, caches."""

from .cache import CacheProfile, LlcModel
from .core import Core
from .interconnect import Interconnect
from .latency import DEFAULT_LATENCY, LatencyModel
from .machine import Machine
from .spec import COMMODITY_2S16C, FLEET_16S960C, LARGE_NUMA_8S120C, PRESETS, MachineSpec, preset
from .tlb import NO_PCID, Tlb, TlbEntry
from .topology import Topology

__all__ = [
    "CacheProfile",
    "COMMODITY_2S16C",
    "FLEET_16S960C",
    "Core",
    "DEFAULT_LATENCY",
    "Interconnect",
    "LARGE_NUMA_8S120C",
    "LatencyModel",
    "LlcModel",
    "Machine",
    "MachineSpec",
    "NO_PCID",
    "PRESETS",
    "preset",
    "Tlb",
    "TlbEntry",
    "Topology",
]
