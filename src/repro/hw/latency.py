"""Calibrated latency constants for the hardware and kernel cost model.

Wherever the paper reports a concrete measurement we use it directly:

* Table 5: saving a LATR state 132.3 ns, one state sweep 158.0 ns, a single
  Linux shootdown 1594.2 ns (Apache, 12 cores).
* Section 1: an IPI round takes up to 2.7 us on the 2-socket/16-core box and
  6.6 us on the 8-socket/120-core box; a full shootdown up to 6 us / 80 us.
* Section 2.1 / 6.3: the TLB shootdown is 5.8% (1 page) to 21.1% (512 pages)
  of an AutoNUMA migration.

The remaining constants (PTE writes, VMA bookkeeping, syscall entry,
interrupt entry) are standard order-of-magnitude numbers for the Haswell/
IvyBridge-EX parts in Table 3, chosen so the composite costs land on the
paper's end-to-end measurements (see tests/test_calibration.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class LatencyModel:
    """All timing constants, in nanoseconds. Index hop-arrays by socket hops."""

    # --- TLB operations (local core) ---
    tlb_invlpg_ns: int = 120            # INVLPG, single entry
    tlb_full_flush_ns: int = 450        # CR3 write + refill headstart cost
    tlb_miss_walk_ns: int = 90          # page-walk on a TLB miss (hot caches)

    # --- IPI path (paper sections 1, 2.1) ---
    #: APIC send occupancy on the initiating core, per target, by hop count.
    ipi_send_ns: Tuple[int, int, int] = (100, 260, 850)
    #: Wire+APIC delivery latency until the remote interrupt fires, by hops.
    ipi_delivery_ns: Tuple[int, int, int] = (480, 1250, 2600)
    #: Remote interrupt handler: entry/exit plus the invalidation work.
    ipi_handler_base_ns: int = 650
    #: ACK: cacheline transfer back to the initiator, by hops.
    ack_transfer_ns: Tuple[int, int, int] = (90, 280, 560)

    # --- LATR operations (paper Table 5) ---
    latr_state_write_ns: int = 132      # saving a LATR state
    latr_sweep_base_ns: int = 158       # one state-sweep pass, nothing active
    latr_sweep_per_entry_ns: int = 45   # extra per active entry examined
    #: Extra cacheline-transfer cost the first time a core reads a state
    #: written on another socket (the states travel via cache coherence).
    latr_state_pull_ns: Tuple[int, int, int] = (60, 220, 450)

    # --- Page-table / VM bookkeeping ---
    pte_clear_ns: int = 160             # clear one PTE incl. rmap touch
    pte_set_ns: int = 150
    #: Extra per-sharing-core reverse-map/refcount work during unmap of a
    #: shared page; remote sharers cost more (cacheline bounces over QPI).
    rmap_per_sharer_ns: Tuple[int, int, int] = (40, 120, 450)
    vma_op_ns: int = 700                # find/split/unlink a VMA
    page_alloc_ns: int = 280
    #: Bulk release to the per-cpu free lists (release_pages amortized).
    page_free_ns: int = 60
    page_zero_ns: int = 600             # clearing a 4 KB page on first touch
    page_copy_ns: int = 2800            # copying a 4 KB page (CoW, migration)
    #: 2 MiB operations run at streaming bandwidth, far below 512x the 4 KB
    #: cost (no per-page kernel overheads).
    huge_page_zero_ns: int = 48_000
    huge_page_copy_ns: int = 90_000

    # --- Kernel paths ---
    syscall_overhead_ns: int = 300
    page_fault_base_ns: int = 1200
    context_switch_ns: int = 1600
    #: Fixed per-migration overhead besides copy+shootdown (fault handling,
    #: isolation, mempolicy checks); calibrated to the 5.8%..21.1% range.
    migration_fixed_ns: int = 75_000
    migration_per_page_ns: int = 22_000
    #: AutoNUMA scan costs (task_numa_work bookkeeping per sampled page).
    numa_scan_per_page_ns: int = 900

    # --- Page-table placement (numaPTE replication model) ---
    #: Extra page-walk cost when the walked table's pages live on a remote
    #: node: a 4-level walk issues up to four memory reads whose cacheline
    #: fills cross the interconnect (numaPTE's motivating observation).
    #: Indexed by socket hops; 0 at hop 0 keeps the local walk exactly
    #: ``tlb_miss_walk_ns``.
    pt_walk_remote_extra_ns: Tuple[int, int, int] = (0, 360, 840)
    #: Per-entry cost of propagating a PTE update to one replica, by hops
    #: to the replica's node (a directed cacheline write + bookkeeping).
    pt_replica_update_ns: Tuple[int, int, int] = (45, 130, 250)

    # --- Two-level translation (EPT/NPT virtualization model) ---
    #: Per-step cost of a 2D walk's extra memory references. A native
    #: n-level walk issues n reads; under virtualization every guest step
    #: plus the final gPA needs a full m-level host walk, so an n-over-m
    #: walk issues n*m + n + m reads (24 for 4/4; SDM Vol 3C 28.2.2).
    ept_walk_step_ns: int = 28
    #: INVEPT-style per-vCPU host invalidation kick, by socket hops: the
    #: hypervisor must reach every core the VM runs on (the virtualized
    #: analogue of the IPI round -- this is the cost explosion).
    ept_invept_vcpu_ns: Tuple[int, int, int] = (180, 520, 1100)
    #: Per-entry host (EPT) table maintenance on invalidation.
    ept_inval_entry_ns: int = 95
    #: EPT-violation VM exit + host-table fill on first guest access.
    ept_violation_fill_ns: int = 1400
    #: HATRIC: per-entry snoop of a host-level translation update through
    #: the cache-coherence fabric (no vCPU kicks, no VM exits).
    hatric_snoop_entry_ns: int = 70

    # --- Memory hierarchy ---
    cacheline_local_ns: int = 40
    cacheline_remote_ns: Tuple[int, int, int] = (45, 130, 250)
    #: Lines an IPI interrupt handler evicts from the running task's working
    #: set (used by the LLC pollution model for Table 4).
    interrupt_pollution_lines: int = 28

    def ipi_send(self, hops: int) -> int:
        return self.ipi_send_ns[self._clamp(hops)]

    def ipi_delivery(self, hops: int) -> int:
        return self.ipi_delivery_ns[self._clamp(hops)]

    def ack_transfer(self, hops: int) -> int:
        return self.ack_transfer_ns[self._clamp(hops)]

    def rmap_per_sharer(self, hops: int) -> int:
        return self.rmap_per_sharer_ns[self._clamp(hops)]

    def latr_state_pull(self, hops: int) -> int:
        return self.latr_state_pull_ns[self._clamp(hops)]

    def cacheline(self, hops: int) -> int:
        if hops <= 0:
            return self.cacheline_local_ns
        return self.cacheline_remote_ns[self._clamp(hops)]

    def pt_walk_extra(self, hops: int) -> int:
        """Extra walk latency beyond ``tlb_miss_walk_ns`` for a table
        whose pages are ``hops`` sockets away."""
        return self.pt_walk_remote_extra_ns[self._clamp(hops)]

    def pt_replica_update(self, hops: int) -> int:
        return self.pt_replica_update_ns[self._clamp(hops)]

    def ept_invept_vcpu(self, hops: int) -> int:
        return self.ept_invept_vcpu_ns[self._clamp(hops)]

    @staticmethod
    def twod_walk_steps(guest_levels: int, host_levels: int) -> int:
        """Memory references of a 2D walk: every guest step needs a host
        walk to find the guest-table page, plus the guest steps themselves,
        plus the final gPA->hPA host walk -- n*m + n + m (24 for 4/4,
        vs n = 4 native)."""
        return guest_levels * host_levels + guest_levels + host_levels

    def twod_walk_extra(self, guest_levels: int, host_levels: int) -> int:
        """Extra ns of a 2D walk beyond the native walk already charged as
        ``tlb_miss_walk_ns`` (which covers the guest_levels references)."""
        steps = self.twod_walk_steps(guest_levels, host_levels)
        return (steps - guest_levels) * self.ept_walk_step_ns

    def ipi_handler(self, pages: int, full_flush_threshold: int) -> int:
        """Remote handler cost: entry/exit + per-page INVLPG or full flush."""
        if pages > full_flush_threshold:
            return self.ipi_handler_base_ns + self.tlb_full_flush_ns
        return self.ipi_handler_base_ns + pages * self.tlb_invlpg_ns

    def local_invalidation(self, pages: int, full_flush_threshold: int) -> int:
        """Local TLB invalidation for ``pages`` pages (Linux's 32-page rule)."""
        if pages > full_flush_threshold:
            return self.tlb_full_flush_ns
        return pages * self.tlb_invlpg_ns

    @staticmethod
    def _clamp(hops: int) -> int:
        if hops < 0:
            raise ValueError(f"negative hop count: {hops}")
        return min(hops, 2)


#: Default calibration shared by all experiments.
DEFAULT_LATENCY = LatencyModel()
