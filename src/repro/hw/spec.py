"""Machine specifications (paper Table 3).

The paper evaluates on two x86 NUMA boxes; we encode both as presets and
allow synthetic configurations for sweeps (e.g. core-count scaling in
Figures 6 and 7 uses the same box with a subset of cores).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..sim.engine import MSEC


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a simulated machine.

    Attributes mirror Table 3 of the paper plus the scheduler-tick interval
    that LATR's staleness bound is defined against.
    """

    name: str
    sockets: int
    cores_per_socket: int
    freq_ghz: float
    ram_gb: int
    llc_mb_per_socket: int
    l1_dtlb_entries: int
    l2_tlb_entries: int
    tick_interval_ns: int = MSEC
    #: Linux full-flushes the local TLB instead of issuing per-page INVLPGs
    #: beyond this many pages (tlb_single_page_flush_ceiling, paper 6.2.1).
    full_flush_threshold: int = 32
    #: LATR state queue entries per core (paper section 4.1).
    latr_states_per_core: int = 64
    #: LATR state record size in bytes (paper: 68 B).
    latr_state_bytes: int = 68

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("machine needs at least one socket and core")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def socket_of(self, core_id: int) -> int:
        """Socket index of a core; cores are numbered socket-major."""
        if not 0 <= core_id < self.total_cores:
            raise ValueError(f"core {core_id} out of range")
        return core_id // self.cores_per_socket

    @property
    def latr_state_footprint_bytes(self) -> int:
        """Total LATR state memory, paper 4.1 (136 KB for 32 cores)."""
        return self.total_cores * self.latr_states_per_core * self.latr_state_bytes

    @property
    def llc_total_bytes(self) -> int:
        return self.sockets * self.llc_mb_per_socket * 1024 * 1024

    def with_cores(self, total_cores: int) -> "MachineSpec":
        """A spec restricted to ``total_cores``, filling sockets in order.

        Used by core-count sweeps: a 6-core run on the 2-socket box keeps
        socket 0 full (8 cores on the E5) before spilling to socket 1, the
        way the paper's taskset-style runs populate cores.
        """
        if not 1 <= total_cores <= self.total_cores:
            raise ValueError(f"cannot restrict {self.name} to {total_cores} cores")
        sockets_needed = -(-total_cores // self.cores_per_socket)
        per_socket = -(-total_cores // sockets_needed)
        return replace(
            self,
            name=f"{self.name}@{total_cores}c",
            sockets=sockets_needed,
            cores_per_socket=per_socket,
        )


#: Table 3, column 1: Intel E5-2630 v3, 2 sockets x 8 cores.
COMMODITY_2S16C = MachineSpec(
    name="commodity-2s16c",
    sockets=2,
    cores_per_socket=8,
    freq_ghz=2.40,
    ram_gb=128,
    llc_mb_per_socket=20,
    l1_dtlb_entries=64,
    l2_tlb_entries=1024,
)

#: Table 3, column 2: Intel E7-8870 v2, 8 sockets x 15 cores.
LARGE_NUMA_8S120C = MachineSpec(
    name="large-numa-8s120c",
    sockets=8,
    cores_per_socket=15,
    freq_ghz=2.30,
    ram_gb=768,
    llc_mb_per_socket=30,
    l1_dtlb_entries=64,
    l2_tlb_entries=512,
)

#: Beyond Table 3: a fleet-scale rack unit for the open-loop SLO scenario
#: (ROADMAP item 3 asks for 500-1000 simulated cores). Loosely modeled on a
#: 16-socket high-core-count box; nothing in the paper constrains it, so the
#: TLB geometry matches the large NUMA machine.
FLEET_16S960C = MachineSpec(
    name="fleet-16s960c",
    sockets=16,
    cores_per_socket=60,
    freq_ghz=2.60,
    ram_gb=8192,
    llc_mb_per_socket=48,
    l1_dtlb_entries=64,
    l2_tlb_entries=512,
)

PRESETS: Dict[str, MachineSpec] = {
    COMMODITY_2S16C.name: COMMODITY_2S16C,
    LARGE_NUMA_8S120C.name: LARGE_NUMA_8S120C,
    FLEET_16S960C.name: FLEET_16S960C,
}


def preset(name: str) -> MachineSpec:
    """Look up a Table 3 preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown machine preset {name!r}; have {sorted(PRESETS)}") from None
