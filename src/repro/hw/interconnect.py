"""Interconnect: IPI delivery and cacheline-transfer timing between cores.

IPIs on x86 are unicast messages through the APIC; the paper's Figure 7
shows their cost exploding on the 8-socket box because delivery needs two
QPI hops. We model:

* a per-target *send* occupancy on the initiating core (the APIC ICR writes
  serialize), and
* a hop-dependent *delivery* latency until the remote handler starts, and
* a hop-dependent *ACK* transfer back (a cacheline write the initiator
  spins on).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..sim.engine import Signal, Simulator
from ..sim.stats import StatsRegistry
from .core import Core
from .latency import LatencyModel
from .topology import Topology


class Interconnect:
    """Delivers IPIs and times coherence traffic between cores."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        latency: LatencyModel,
        stats: StatsRegistry,
    ):
        self.sim = sim
        self.topology = topology
        self.latency = latency
        self.stats = stats

    def ipi_send_cost(self, src: Core, dst: Core) -> int:
        """Initiator-side occupancy to push one IPI toward ``dst``."""
        return self.latency.ipi_send(self.topology.core_hops(src.id, dst.id))

    def multicast_ipi(
        self,
        src: Core,
        targets: Sequence[Core],
        handler_cost_ns: int,
    ) -> Tuple[int, Signal]:
        """Send shootdown IPIs to ``targets`` and collect ACKs.

        Returns ``(send_occupancy_ns, all_acked)``: the initiating core is
        busy for ``send_occupancy_ns`` issuing the unicasts (x86 APIC has no
        flexible multicast, paper section 2.1); ``all_acked`` fires when the
        last ACK lands at the initiator, with the list of per-target ACK
        arrival times as its value.
        """
        all_acked = Signal(self.sim)
        if not targets:
            self.sim.after(0, all_acked.succeed, [])
            return 0, all_acked

        send_occupancy = 0
        remaining = [len(targets)]
        ack_times: List[int] = []
        # A 120-core shootdown runs this loop 119 times per munmap; hoist
        # the per-target registry lookups and memoize the (deterministic)
        # per-hop latency costs. Purely wall-clock: the scheduled times and
        # counter increments are unchanged.
        now = self.sim.now
        sim_at = self.sim.at
        core_hops = self.topology.core_hops
        sent_add = self.stats.counter("ipi.sent").add
        sent_hit = self.stats.rate("ipi.sent").hit
        ipi_send = self.latency.ipi_send
        ipi_delivery = self.latency.ipi_delivery
        deliver = self._deliver
        costs_by_hops: dict = {}
        src_id = src.id
        for dst in targets:
            hops = core_hops(src_id, dst.id)
            costs = costs_by_hops.get(hops)
            if costs is None:
                costs = costs_by_hops[hops] = (ipi_send(hops), ipi_delivery(hops))
            send_occupancy += costs[0]
            sent_add()
            sent_hit()
            sim_at(
                now + send_occupancy + costs[1],
                deliver,
                src,
                dst,
                hops,
                handler_cost_ns,
                remaining,
                ack_times,
                all_acked,
            )
        return send_occupancy, all_acked

    def _deliver(
        self,
        src: Core,
        dst: Core,
        hops: int,
        handler_cost_ns: int,
        remaining: List[int],
        ack_times: List[int],
        all_acked: Signal,
    ) -> None:
        handler_done = dst.deliver_interrupt(handler_cost_ns)
        self.stats.counter("ipi.handled").add()
        ack_at = handler_done + self.latency.ack_transfer(hops)
        self.sim.at(ack_at, self._ack, ack_at, remaining, ack_times, all_acked)

    def _ack(
        self,
        ack_at: int,
        remaining: List[int],
        ack_times: List[int],
        all_acked: Signal,
    ) -> None:
        ack_times.append(ack_at)
        remaining[0] -= 1
        if remaining[0] == 0:
            all_acked.succeed(list(ack_times))

    def cacheline_transfer_cost(self, src_core_id: int, dst_core_id: int) -> int:
        """Latency for one cacheline to move between two cores' caches."""
        return self.latency.cacheline(self.topology.core_hops(src_core_id, dst_core_id))

    def pt_walk_cost(self, walker_node: int, table_node: int) -> int:
        """Extra hardware-walk latency when a core on ``walker_node``
        descends a page table resident on ``table_node`` (0 when local)."""
        return self.latency.pt_walk_extra(self.topology.socket_hops(walker_node, table_node))

    def pt_replica_update_cost(self, writer_node: int, replica_node: int) -> int:
        """Per-entry cost of pushing a PTE update to one replica."""
        return self.latency.pt_replica_update(
            self.topology.socket_hops(writer_node, replica_node)
        )

    def ept_invept_cost(self, src_node: int, dst_node: int) -> int:
        """INVEPT kick from the hypervisor on ``src_node`` to one vCPU on
        ``dst_node`` (the per-core half of a host-level invalidation)."""
        return self.latency.ept_invept_vcpu(
            self.topology.socket_hops(src_node, dst_node)
        )
