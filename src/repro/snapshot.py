"""System snapshot/fork: structured copy-on-write capture of a booted kernel.

:func:`snapshot_kernel` captures every piece of mutable simulation state --
the engine's event queues (via :meth:`Simulator.fork`), RNG streams, stats,
per-core TLBs, page tables, VMAs, the frame allocator, and per-mechanism
coherence state -- as *structured copies*: containers are copied, while
immutable leaves (``Pte``, ``TlbEntry``, ``VirtRange``, LATR states' frozen
identity) are shared between the live world and the snapshot.
:func:`restore_kernel` writes the captured values back **into the same
objects**, preserving identity everywhere: bound-method callbacks, daemon
re-arm chains, cached stat objects and cross-references (a ``Task`` pointing
at its ``MmStruct``, a ``LatrState`` at its queue) all stay valid. No
``deepcopy`` is involved, and no generator ever enters a snapshot -- the
engine refuses to fork while any pending event is a live generator
continuation, so snapshots are only legal at quiescent points (op
boundaries, freshly booted systems, a drained model-checker step).

Restore invariants:

* every object reachable from the kernel at snapshot time still exists and
  is restored in place (identity-preserving);
* objects created *after* the snapshot become unreachable orphans -- their
  queue/registry slots are rewound, and their mutable hooks are detached
  where needed so a late callback cannot corrupt restored bookkeeping;
* process-global monotonic counters (mm ids, LATR state seqs, tids) are
  deliberately left monotonic: all consumers only compare them, and the
  model checker's canonical state rank-normalizes them.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from .coherence.latr import LatrCoherence
from .coherence.states import SoaLatrQueue, SoaLatrState
from .mm.pagetable import PageTable, ReplicatedPageTable
from .sim.engine import Signal, SimulationError, live_continuation


class SnapshotError(SimulationError):
    """The system is not at a snapshottable quiescent point."""


#: Global escape hatch (CLI ``--no-snapshots``): when False, every warm-boot
#: pool boots cold and the model checker backtracks by replay. Snapshots and
#: replay are bit-identical by construction; the flag exists so any suspected
#: snapshot bug can be ruled out in one run, same pattern as the timer wheel.
_SNAPSHOTS_ENABLED = True


def set_snapshots_enabled(enabled: bool) -> None:
    global _SNAPSHOTS_ENABLED
    _SNAPSHOTS_ENABLED = bool(enabled)


def snapshots_enabled() -> bool:
    return _SNAPSHOTS_ENABLED


class SystemSnapshot:
    """Opaque world state captured by :func:`snapshot_kernel`."""

    __slots__ = (
        "engine", "stats", "rng", "cores", "llc", "frames", "page_cache",
        "page_contents", "mms", "processes", "task_fields", "scheduler",
        "coherence", "autonuma", "swap", "monitor", "kernel_started",
        "ept_rmap",
    )

    def __init__(self, **fields: Any):
        for name in self.__slots__:
            setattr(self, name, fields[name])


# ---- helpers ------------------------------------------------------------------


def _check_lock_quiescent(lock) -> None:
    if lock._held or lock._waiters:
        raise SnapshotError(f"lock {lock.name!r} busy at snapshot point")


def _signal_snapshot(sig: Signal) -> Tuple[Signal, bool, Any, List]:
    return (sig, sig.triggered, sig.value, list(sig._callbacks))


def _signal_restore(snap: Tuple[Signal, bool, Any, List]) -> None:
    sig, triggered, value, callbacks = snap
    sig.triggered = triggered
    sig.value = value
    sig._callbacks = list(callbacks)


def _copy_pt_root(root: Dict) -> Dict:
    # Four levels of dicts with frozen Pte leaves: copy the spine, share
    # the leaves.
    return {
        pml4: {
            pdpt: {pd: dict(pt) for pd, pt in l3.items()}
            for pdpt, l3 in l2.items()
        }
        for pml4, l2 in root.items()
    }


def _tlb_snapshot(tlb) -> Tuple:
    # TlbEntry objects are immutable after fill, so sharing them is safe;
    # only the LRU order (the OrderedDicts) and the pcid index are copied.
    # The leading version pair keys the skip paths: versions are globally
    # unique per state (see ``repro.hw.tlb._VERSIONS``), so an unchanged
    # version means the previous snapshot tuple is still exact, and a
    # restore to the version the TLB is already at can be a no-op. Both
    # matter on the model checker's backtracking hot path.
    cached = getattr(tlb, "_snap_cache", None)
    if cached is not None and cached[0] == tlb._state_version:
        return cached
    snap = (
        tlb._state_version, tlb._entries_version,
        list(tlb._entries.items()),
        list(tlb._huge_entries.items()),
        {pcid: set(vpns) for pcid, vpns in tlb._index.items()},
        {pcid: set(vpns) for pcid, vpns in tlb._huge_index.items()},
        tlb.hits, tlb.misses, tlb.invalidations, tlb.full_flushes,
        tlb.evictions,
    )
    tlb._snap_cache = snap
    return snap


def _tlb_restore(tlb, snap: Tuple) -> None:
    if tlb._state_version == snap[0]:
        return  # nothing touched this TLB since the snapshot was taken
    (state_version, entries_version, entries, huge, index, huge_index,
     tlb.hits, tlb.misses, tlb.invalidations, tlb.full_flushes,
     tlb.evictions) = snap
    # Rebuild the container the TLB actually runs on: plain dicts in packed
    # mode (int keys/slots), OrderedDicts in the legacy representation.
    if tlb.packed:
        tlb._entries = dict(entries)
        tlb._huge_entries = dict(huge)
    else:
        tlb._entries = OrderedDict(entries)
        tlb._huge_entries = OrderedDict(huge)
    tlb._index = {pcid: set(vpns) for pcid, vpns in index.items()}
    tlb._huge_index = {pcid: set(vpns) for pcid, vpns in huge_index.items()}
    # The content now *is* the snapshot's, so rewind the versions with it
    # (safe: these version numbers were minted for exactly this content).
    tlb._state_version = state_version
    tlb._entries_version = entries_version
    tlb._snap_cache = snap


def _mm_snapshot(mm) -> Tuple:
    _check_lock_quiescent(mm.mmap_sem)
    pt = mm.page_table
    # Version-keyed (see _tlb_snapshot): unchanged page table -> reuse the
    # previous deep copy, the dominant cost of an mm snapshot.
    pt_snap = getattr(pt, "_snap_cache", None)
    if pt_snap is None or pt_snap[0] != pt._version:
        # Replica slot (numaPTE): per-node replica contents plus the
        # facade's pending-update and lifetime counters. The facade's
        # version covers all of it -- every replica mutation,
        # materialization, and pending-count drain bumps it.
        replicas = None
        if isinstance(pt, ReplicatedPageTable):
            replicas = (
                {
                    node: (r._version, _copy_pt_root(r._root), r._count,
                           dict(r._huge), r.table_pages_allocated)
                    for node, r in pt._replicas.items()
                },
                dict(pt._pending_updates),
                pt.replica_updates,
                pt.replica_materializations,
            )
        pt_snap = pt._snap_cache = (
            pt._version, _copy_pt_root(pt._root), pt._count, dict(pt._huge),
            pt.table_pages_allocated, replicas,
        )
    # Host (EPT) slot for VM tasks: None for native mms, so flat
    # snapshots are shaped exactly as before with one trailing None.
    host = mm.host_table
    host_snap = None
    if host is not None:
        host_snap = getattr(host, "_snap_cache", None)
        if host_snap is None or host_snap[0] != host._version:
            host_snap = host._snap_cache = (
                host._version, _copy_pt_root(host._root), host._count,
                dict(host._huge), host.table_pages_allocated,
                dict(host.gfn_of_pfn), host.next_gfn,
                dict(host.generation_of_gfn),
            )
    vmas = list(mm.vmas._vmas)
    return (
        pt_snap,
        (list(mm.vmas._starts), vmas,
         [(v, v.range, v.prot, v.kind, v.file_key, v.file_offset, v.huge)
          for v in vmas]),
        (mm.mmap_sem.acquisitions, mm.mmap_sem.contended_acquisitions),
        set(mm.cpumask), mm.users, mm._bump, list(mm._free_ranges),
        list(mm.lazy_vranges), list(mm.lazy_frames), mm.map_generation,
        host_snap,
    )


def _mm_restore(mm, snap: Tuple) -> None:
    (pt_snap, vma_snap, sem_counts, cpumask, users, bump, free_ranges,
     lazy_vranges, lazy_frames, map_generation, host_snap) = snap
    pt = mm.page_table
    version, root, count, huge, table_pages, replicas = pt_snap
    if pt._version != version:
        pt._root = _copy_pt_root(root)
        pt._count = count
        pt._huge = dict(huge)
        pt.table_pages_allocated = table_pages
        if replicas is not None:
            repl_snaps, pending, updates, materializations = replicas
            live = {}
            for node, r_snap in repl_snaps.items():
                r_version, r_root, r_count, r_huge, r_pages = r_snap
                replica = pt._replicas.get(node)
                if replica is None:
                    # Dropped by an earlier restore; rebuild it in place.
                    replica = PageTable()
                elif replica._version == r_version:
                    live[node] = replica
                    continue
                replica._root = _copy_pt_root(r_root)
                replica._count = r_count
                replica._huge = dict(r_huge)
                replica.table_pages_allocated = r_pages
                replica._version = r_version
                live[node] = replica
            # Replicas materialized after the snapshot are dropped.
            pt._replicas = live
            pt._pending_updates = dict(pending)
            pt.replica_updates = updates
            pt.replica_materializations = materializations
        pt._version = version
        pt._snap_cache = pt_snap
    # pt.observer is wiring, not state: leave it attached.
    starts, vmas, vma_fields = vma_snap
    mm.vmas._starts = list(starts)
    mm.vmas._vmas = list(vmas)
    for vma, vrange, prot, kind, file_key, file_offset, huge_flag in vma_fields:
        vma.range = vrange
        vma.prot = prot
        vma.kind = kind
        vma.file_key = file_key
        vma.file_offset = file_offset
        vma.huge = huge_flag
    mm.mmap_sem._held = False
    mm.mmap_sem._waiters.clear()
    mm.mmap_sem.acquisitions, mm.mmap_sem.contended_acquisitions = sem_counts
    mm.cpumask = set(cpumask)
    mm.users = users
    mm._bump = bump
    mm._free_ranges = list(free_ranges)
    mm.lazy_vranges = list(lazy_vranges)
    mm.lazy_frames = list(lazy_frames)
    mm.map_generation = map_generation
    host = mm.host_table
    if host_snap is not None and host is not None:
        (h_version, h_root, h_count, h_huge, h_pages,
         gfn_of_pfn, next_gfn, generation_of_gfn) = host_snap
        if host._version != h_version:
            host._root = _copy_pt_root(h_root)
            host._count = h_count
            host._huge = dict(h_huge)
            host.table_pages_allocated = h_pages
            host.gfn_of_pfn = dict(gfn_of_pfn)
            host.next_gfn = next_gfn
            host.generation_of_gfn = dict(generation_of_gfn)
            host._version = h_version
            host._snap_cache = host_snap


def _frames_snapshot(frames) -> Tuple:
    # Version-keyed like ``_tlb_snapshot``: unchanged allocator -> reuse the
    # previous snapshot tuple; restore to the version already live -> no-op.
    cached = getattr(frames, "_snap_cache", None)
    if cached is not None and cached[0] == frames._version:
        return cached
    snap = (
        frames._version,
        [fl.state() for fl in frames._free],
        dict(frames._refcount),
        dict(frames._generation),
        frames.total_allocs,
        frames.total_frees,
    )
    frames._snap_cache = snap
    return snap


def _frames_restore(frames, snap: Tuple) -> None:
    if frames._version == snap[0]:
        return
    version, free, refcount, generation, allocs, frees = snap
    for fl, fl_state in zip(frames._free, free):
        fl.set_state(fl_state)
    frames._refcount = dict(refcount)
    frames._generation = dict(generation)
    frames.total_allocs = allocs
    frames.total_frees = frees
    frames._version = version
    frames._snap_cache = snap


# ---- coherence mechanisms ------------------------------------------------------


def _latr_snapshot(coh: LatrCoherence) -> Tuple:
    # Every state reachable from a queue slot or a pending list gets its
    # mutable fields recorded (LatrState is an eq-dataclass, hence the
    # id-keyed dedup map instead of a set).
    states: Dict[int, Any] = {}
    for queue in coh.queues.values():
        for state in queue.all_states():
            states[id(state)] = state
    for state in coh._pending_reclaim:
        states[id(state)] = state
    for state in coh._migration_states:
        states[id(state)] = state
    state_snaps = []
    for s in states.values():
        if type(s) is SoaLatrState:
            # Raw mask/flag words (routed through the slot arrays while the
            # state is attached) plus the attachment itself; restoring them
            # as direct slot writes keeps the notifying ``active`` property
            # from firing on a rewind.
            state_snaps.append(
                ("soa", s, s._mask_get(0), s._mask_get(1), s._flags_get(),
                 s.completed_at, s.slot_idx, s.queue, s._attached,
                 _signal_snapshot(s.done))
            )
        else:
            state_snaps.append(
                ("obj", s, set(s.cpu_bitmask), s.pte_applied, set(s.pulled_by),
                 s.__dict__.get("_active_value", True), s.completed_at,
                 s.reclaimed, s.slot_idx, s.queue, _signal_snapshot(s.done))
            )
    queue_snaps = {}
    for core_id, q in coh.queues.items():
        qsnap = (list(q._slots), q._cursor, q.posts, q.full_rejections,
                 q.active_count, dict(q._active_map))
        if type(q) is SoaLatrQueue:
            # The parallel arrays travel wholesale; bytes() freezes the
            # flags bytearray so later mutation can't alias the snapshot.
            qsnap += ((
                list(q._seq_a), list(q._mask_a), list(q._pulled_a),
                bytes(q._flags_a), list(q._vpn_a), list(q._npages_a),
                list(q._posted_a),
            ),)
        queue_snaps[core_id] = qsnap
    return (
        state_snaps, queue_snaps,
        list(coh._pending_reclaim), list(coh._migration_states),
        coh._reclaimd_started, coh._active_state_count,
        coh._last_posted_seq, dict(coh._sweep_cursor),
        set(coh._active_queue_ids),
        None if coh._active_states_sorted is None
        else list(coh._active_states_sorted),
        coh.cold_sweep_extra_ns,
    )


def _latr_restore(coh: LatrCoherence, snap: Tuple) -> None:
    (state_snaps, queue_snaps, pending_reclaim, migration_states,
     reclaimd_started, active_count, last_posted_seq, sweep_cursor,
     active_queue_ids, active_sorted, cold_extra) = snap
    for row in state_snaps:
        if row[0] == "soa":
            (_, state, cpu_mask, pulled_mask, flags, completed_at,
             slot_idx, queue, attached, done_snap) = row
            # Direct slot writes: while attached the authoritative words
            # live in the queue arrays (restored wholesale below); the
            # handle copies only matter for detached states.
            state._cpu_mask = cpu_mask
            state._pulled_mask = pulled_mask
            state._flags = flags
            state.completed_at = completed_at
            state.slot_idx = slot_idx
            state.queue = queue
            state._attached = attached
        else:
            (_, state, bitmask, pte_applied, pulled_by, active, completed_at,
             reclaimed, slot_idx, queue, done_snap) = row
            state.cpu_bitmask = set(bitmask)
            state.pte_applied = pte_applied
            state.pulled_by = set(pulled_by)
            # Direct __dict__ write: the notifying property must not fire on
            # a rewind (queue/index counts are restored wholesale below).
            state.__dict__["_active_value"] = active
            state.completed_at = completed_at
            state.reclaimed = reclaimed
            state.slot_idx = slot_idx
            state.queue = queue
        _signal_restore(done_snap)
    for core_id, qsnap in queue_snaps.items():
        q = coh.queues[core_id]
        slots, cursor, posts, rejections, active_n, active_map = qsnap[:6]
        q._slots = list(slots)
        q._cursor = cursor
        q.posts = posts
        q.full_rejections = rejections
        q.active_count = active_n
        q._active_map = dict(active_map)
        if len(qsnap) > 6:
            (seq_a, mask_a, pulled_a, flags_b, vpn_a, npages_a,
             posted_a) = qsnap[6]
            q._seq_a = list(seq_a)
            q._mask_a = list(mask_a)
            q._pulled_a = list(pulled_a)
            q._flags_a = bytearray(flags_b)
            q._vpn_a = list(vpn_a)
            q._npages_a = list(npages_a)
            q._posted_a = list(posted_a)
    coh._pending_reclaim = list(pending_reclaim)
    coh._migration_states = list(migration_states)
    coh._reclaimd_started = reclaimd_started
    coh._active_state_count = active_count
    coh._last_posted_seq = last_posted_seq
    coh._sweep_cursor = dict(sweep_cursor)
    coh._active_queue_ids = set(active_queue_ids)
    coh._active_states_sorted = (
        None if active_sorted is None else list(active_sorted)
    )
    coh.cold_sweep_extra_ns = cold_extra


def _coherence_snapshot(coh) -> Tuple[str, Any]:
    if isinstance(coh, LatrCoherence):
        return ("latr", _latr_snapshot(coh))
    if hasattr(coh, "_sharers"):  # ABIS
        return ("sharers", {k: set(v) for k, v in coh._sharers.items()})
    if hasattr(coh, "_directory"):  # DiDi
        return ("directory", {k: set(v) for k, v in coh._directory.items()})
    # Linux / Barrelfish / UNITD keep no cross-operation state.
    return ("stateless", None)


def _coherence_restore(coh, snap: Tuple[str, Any]) -> None:
    kind, payload = snap
    if kind == "latr":
        _latr_restore(coh, payload)
    elif kind == "sharers":
        coh._sharers = {k: set(v) for k, v in payload.items()}
    elif kind == "directory":
        coh._directory = {k: set(v) for k, v in payload.items()}


# ---- the system-level pair -----------------------------------------------------


def snapshot_kernel(kernel) -> SystemSnapshot:
    """Capture a restorable snapshot of a booted kernel and its machine.

    Raises :class:`SnapshotError` when the system is not quiescent: a held
    lock, a pending generator continuation (the engine's own refusal), or
    an installed service this layer does not model (tracer, KSM,
    compaction, khugepaged)."""
    for attr in ("tracer", "ksm", "compactor", "khugepaged"):
        if getattr(kernel, attr) is not None:
            raise SnapshotError(f"cannot snapshot with {attr} installed")
    for lock in kernel.scheduler._cpu_locks.values():
        _check_lock_quiescent(lock)
    engine = kernel.sim.fork()  # refuses live generator continuations
    machine = kernel.machine
    autonuma = kernel.autonuma
    swap = kernel.swap
    monitor = kernel.invariant_monitor
    return SystemSnapshot(
        engine=engine,
        stats=kernel.stats.snapshot(),
        rng=kernel.rng.snapshot(),
        cores=[
            (core.current_task, core.lazy_tlb_mode, core.needs_flush_on_wake,
             core._pending_interrupt_ns, core._handler_busy_until,
             core.interrupts_received, core.interrupt_ns_total,
             core.busy_ns_total, _tlb_snapshot(core.tlb))
            for core in machine.cores
        ],
        llc=(machine.llc._pollution_lines, machine.llc._state_lines,
             machine.llc._window_start),
        frames=_frames_snapshot(kernel.frames),
        page_cache=(dict(kernel.page_cache._pages), kernel.page_cache.hits,
                    kernel.page_cache.fills),
        page_contents=dict(kernel.page_contents),
        mms={pcid: (mm, _mm_snapshot(mm))
             for pcid, mm in kernel.mm_registry.items()},
        processes=[(proc, list(proc.tasks)) for proc in kernel.processes],
        task_fields=[
            (task, task.state, task.sim_process)
            for proc in kernel.processes for task in proc.tasks
        ],
        scheduler=(
            kernel.scheduler._started,
            None if kernel.scheduler.tick_offsets is None
            else dict(kernel.scheduler.tick_offsets),
            {cid: (lock.acquisitions, lock.contended_acquisitions)
             for cid, lock in kernel.scheduler._cpu_locks.items()},
        ),
        coherence=_coherence_snapshot(kernel.coherence),
        autonuma=None if autonuma is None else (
            dict(autonuma._fault_history), list(autonuma._registered),
            dict(autonuma._cursors), dict(autonuma._round_robin),
        ),
        swap=None if swap is None else (swap._next_slot,
                                        dict(swap._used_slots)),
        monitor=None if monitor is None else (
            list(monitor.violations), monitor.checks_run,
            monitor.notifications, monitor._saturated,
        ),
        kernel_started=kernel._started,
        # Host (EPT) reverse map: {} for flat kernels, so flat snapshots
        # carry no extra state beyond the empty sentinel.
        ept_rmap={pfn: dict(mms) for pfn, mms in kernel._ept_rmap.items()},
    )


def restore_kernel(kernel, snap: SystemSnapshot) -> None:
    """Rewind ``kernel`` (and its machine/engine) to ``snap``, in place."""
    kernel.sim.restore(snap.engine)
    kernel.stats.restore(snap.stats)
    kernel.rng.restore(snap.rng)
    machine = kernel.machine
    for core, (task, lazy, needs_flush, pending_irq, busy_until, irq_n,
               irq_ns, busy_ns, tlb_snap) in zip(machine.cores, snap.cores):
        core.current_task = task
        core.lazy_tlb_mode = lazy
        core.needs_flush_on_wake = needs_flush
        core._pending_interrupt_ns = pending_irq
        core._handler_busy_until = busy_until
        core.interrupts_received = irq_n
        core.interrupt_ns_total = irq_ns
        core.busy_ns_total = busy_ns
        _tlb_restore(core.tlb, tlb_snap)
    (machine.llc._pollution_lines, machine.llc._state_lines,
     machine.llc._window_start) = snap.llc
    _frames_restore(kernel.frames, snap.frames)
    pages, hits, fills = snap.page_cache
    kernel.page_cache._pages = dict(pages)
    kernel.page_cache.hits = hits
    kernel.page_cache.fills = fills
    kernel.page_contents.clear()
    kernel.page_contents.update(snap.page_contents)
    kernel.mm_registry.clear()
    for pcid, (mm, mm_snap) in snap.mms.items():
        kernel.mm_registry[pcid] = mm
        _mm_restore(mm, mm_snap)
    kernel.processes[:] = [proc for proc, _tasks in snap.processes]
    for proc, tasks in snap.processes:
        proc.tasks[:] = tasks
    for task, state, sim_process in snap.task_fields:
        task.state = state
        task.sim_process = sim_process
    started, tick_offsets, lock_counts = snap.scheduler
    scheduler = kernel.scheduler
    scheduler._started = started
    scheduler.tick_offsets = (
        None if tick_offsets is None else dict(tick_offsets)
    )
    for cid, (acqs, contended) in lock_counts.items():
        lock = scheduler._cpu_locks[cid]
        lock._held = False
        lock._waiters.clear()
        lock.acquisitions = acqs
        lock.contended_acquisitions = contended
    _coherence_restore(kernel.coherence, snap.coherence)
    if snap.autonuma is not None:
        fault_history, registered, cursors, round_robin = snap.autonuma
        service = kernel.autonuma
        service._fault_history = dict(fault_history)
        service._registered = list(registered)
        service._cursors = dict(cursors)
        service._round_robin = dict(round_robin)
    if snap.swap is not None:
        kernel.swap._next_slot, used = snap.swap
        kernel.swap._used_slots = dict(used)
    if snap.monitor is not None:
        violations, checks_run, notifications, saturated = snap.monitor
        monitor = kernel.invariant_monitor
        monitor.violations = list(violations)
        monitor.checks_run = checks_run
        monitor.notifications = notifications
        monitor._saturated = saturated
    kernel._started = snap.kernel_started
    kernel._ept_rmap = {pfn: dict(mms) for pfn, mms in snap.ept_rmap.items()}


# ---- warm-boot pooling --------------------------------------------------------


def check_reusable(kernel) -> None:
    """Raise :class:`SnapshotError` unless the live world can safely be
    restored *over*.

    A held lock means some parked process still references it: when the
    restore orphans that process, its eventual teardown (``finally:
    lock.release()``) would fire against the restored world and corrupt it.
    Likewise a pending live generator continuation would be left dangling.
    Both conditions mean the previous run did not end quiescent, so the
    caller must boot cold instead of reusing."""
    sim = kernel.sim
    if sim._running:
        raise SnapshotError("cannot restore over a running simulator")
    for lock in kernel.scheduler._cpu_locks.values():
        _check_lock_quiescent(lock)
    for mm in kernel.mm_registry.values():
        _check_lock_quiescent(mm.mmap_sem)
    for handle in sim._resident_handles():
        if live_continuation(handle):
            raise SnapshotError(f"live continuation pending: {handle!r}")


class BootPool:
    """Process-local warm-boot cache.

    ``acquire(key, build)`` boots via ``build()`` the first time a key is
    seen, snapshots the freshly-booted world, and on every later request
    with the same key restores that snapshot in place instead of
    rebuilding -- turning repeated identical boots (fuzz shrink loops,
    experiment sweeps) into O(state) restores. Reuse is gated by
    :func:`check_reusable`: a world the previous user left non-quiescent is
    dropped and the key boots cold again. Unsnapshottable boots (tracer
    installed, continuation pending) are simply not pooled.
    """

    #: Booted systems kept alive per process (LRU beyond this).
    MAX_ENTRIES = 8

    def __init__(self):
        self._entries: "OrderedDict[Any, Tuple[Any, SystemSnapshot]]" = OrderedDict()
        self.boots = 0
        self.restores = 0
        self.fallbacks = 0

    def acquire(self, key: Any, build: Callable[[], Any]) -> Any:
        """Return a system (anything with a ``.kernel``) booted with the
        parameters ``key`` stands for, warm-restored when possible."""
        entry = self._entries.get(key)
        if entry is not None:
            system, snap = entry
            try:
                check_reusable(system.kernel)
                restore_kernel(system.kernel, snap)
            except SimulationError:
                del self._entries[key]
                self.fallbacks += 1
            else:
                self._entries.move_to_end(key)
                self.restores += 1
                return system
        system = build()
        try:
            snap = snapshot_kernel(system.kernel)
        except SnapshotError:
            self.fallbacks += 1
            return system
        self._entries[key] = (system, snap)
        self._entries.move_to_end(key)
        while len(self._entries) > self.MAX_ENTRIES:
            self._entries.popitem(last=False)
        self.boots += 1
        return system
