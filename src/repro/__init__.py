"""repro: a full-system simulation reproduction of "LATR: Lazy Translation
Coherence" (Kumar, Maass, et al., ASPLOS 2018).

The package layers:

* :mod:`repro.sim` -- discrete-event engine,
* :mod:`repro.hw` -- NUMA machines, cores, TLBs, IPIs, caches,
* :mod:`repro.mm` -- frames, page tables, VMAs, address spaces,
* :mod:`repro.kernel` -- scheduler, syscalls, page faults, daemons,
* :mod:`repro.coherence` -- the paper's LATR mechanism plus the Linux,
  ABIS, and Barrelfish comparators,
* :mod:`repro.workloads` -- microbenchmarks, Apache, PARSEC and NUMA
  application models,
* :mod:`repro.experiments` -- one runner per paper table/figure.

Quickstart::

    from repro import build_system
    system = build_system("latr", machine="commodity-2s16c")
    # system.kernel, system.sim, system.machine are ready to use
"""

from dataclasses import dataclass
from typing import Optional

from .coherence import MECHANISMS, LatrCoherence, LinuxShootdown, make_mechanism
from .hw import COMMODITY_2S16C, FLEET_16S960C, LARGE_NUMA_8S120C, Machine, MachineSpec, preset
from .kernel import Kernel
from .sim import Simulator

__version__ = "1.0.0"


@dataclass
class System:
    """A booted simulated system (convenience bundle)."""

    sim: Simulator
    machine: Machine
    kernel: Kernel

    @property
    def stats(self):
        return self.kernel.stats

    @property
    def syscalls(self):
        return self.kernel.syscalls

    def snapshot(self):
        """Capture a restorable world snapshot (see :mod:`repro.snapshot`).

        Only legal at quiescent points: no running event loop, no pending
        generator continuations, no held locks."""
        from .snapshot import snapshot_kernel

        return snapshot_kernel(self.kernel)

    def restore(self, snap) -> None:
        """Rewind engine + kernel + mm state to ``snap``, in place."""
        from .snapshot import restore_kernel

        restore_kernel(self.kernel, snap)


def build_system(
    mechanism: str = "latr",
    machine: str = "commodity-2s16c",
    cores: Optional[int] = None,
    pcid: bool = False,
    seed: int = 1,
    frames_per_node: Optional[int] = None,
    use_timer_wheel: Optional[bool] = None,
    use_tlb_index: Optional[bool] = None,
    gate_latencies: Optional[bool] = None,
    use_batched_faults: Optional[bool] = None,
    use_pt_replication: Optional[bool] = None,
    use_packed_tlb: Optional[bool] = None,
    use_frame_slabs: Optional[bool] = None,
    use_virtualization: Optional[bool] = None,
    **mechanism_kwargs,
) -> System:
    """Build and boot a simulated machine running one coherence mechanism.

    Args:
        mechanism: "linux", "latr", "abis", or "barrelfish".
        machine: a Table 3 preset name ("commodity-2s16c", "large-numa-8s120c").
        cores: optionally restrict the machine to this many cores.
        pcid: enable PCID-tagged TLBs (paper section 4.5).
        seed: deterministic RNG seed for workloads.
        frames_per_node: physical memory size override (frames).
        use_timer_wheel: engine escape hatch -- False routes every event
            through the plain heap instead of the timer wheel (default on).
        use_tlb_index: TLB escape hatch -- False keeps the linear-scan
            invalidation paths (default on).
        gate_latencies: stats escape hatch -- False keeps the historical
            record-from-t=0 latency recorders instead of gating them on
            the measurement window (default gated).
        use_batched_faults: syscall escape hatch -- False routes
            ``touch_pages`` through the per-page generic access path
            instead of the batched fault handler (default batched).
        use_pt_replication: NUMA page-table placement modelling
            (numaPTE) -- None asks the mechanism (only "numapte" wants
            it); True charges hop-aware walk latency (and, under the
            numapte policy, replicates tables per node); False keeps the
            flat single-table model bit-identically.
        use_packed_tlb: TLB representation escape hatch -- False keeps
            the tuple-keyed ``TlbEntry`` object model instead of the
            packed int-slot layout (default packed).
        use_frame_slabs: frame allocator escape hatch -- False frees
            frames one ``put`` at a time instead of through the batched
            slab path (default slabs).
        use_virtualization: two-level (EPT/NPT) translation -- True makes
            processes VM tasks with gPA->hPA host tables, 2D walk costs,
            and host-level invalidation on free (policy chosen by the
            mechanism's ``host_invalidation`` attribute); False/None keeps
            the flat single-level model byte-identically.
        mechanism_kwargs: forwarded to the mechanism constructor (e.g.
            ``queue_depth=`` for LATR ablations, ``use_soa_states=`` for
            the LATR queue representation).
    """
    spec = preset(machine) if isinstance(machine, str) else machine
    if cores is not None:
        spec = spec.with_cores(cores)
    sim = Simulator(use_timer_wheel=use_timer_wheel)
    mech = make_mechanism(mechanism, **mechanism_kwargs)
    hw = Machine(
        sim,
        spec,
        pcid_enabled=pcid,
        use_tlb_index=use_tlb_index,
        gate_latencies=gate_latencies,
        use_packed_tlb=use_packed_tlb,
    )
    kwargs = {}
    if frames_per_node is not None:
        kwargs["frames_per_node"] = frames_per_node
    if use_batched_faults is not None:
        kwargs["use_batched_faults"] = use_batched_faults
    if use_pt_replication is not None:
        kwargs["use_pt_replication"] = use_pt_replication
    if use_frame_slabs is not None:
        kwargs["use_frame_slabs"] = use_frame_slabs
    if use_virtualization is not None:
        kwargs["use_virtualization"] = use_virtualization
    kernel = Kernel(hw, mech, seed=seed, **kwargs)
    kernel.start()
    return System(sim=sim, machine=hw, kernel=kernel)


#: Process-local pool behind :func:`warm_build_system` (lazy).
_BOOT_POOL = None


def warm_build_system(mechanism: str = "latr", **kwargs) -> System:
    """:func:`build_system` with warm-boot reuse.

    Identical boot parameters within one process restore a post-boot
    snapshot in place instead of rebooting (see
    :class:`repro.snapshot.BootPool`); results are bit-identical to cold
    boots. Falls back to :func:`build_system` when snapshots are globally
    disabled or the previous user left the world non-quiescent.
    """
    from .snapshot import BootPool, snapshots_enabled

    if not snapshots_enabled():
        return build_system(mechanism, **kwargs)
    global _BOOT_POOL
    if _BOOT_POOL is None:
        _BOOT_POOL = BootPool()
    key = (mechanism, tuple(sorted((k, repr(v)) for k, v in kwargs.items())))
    return _BOOT_POOL.acquire(key, lambda: build_system(mechanism, **kwargs))


__all__ = [
    "COMMODITY_2S16C",
    "FLEET_16S960C",
    "warm_build_system",
    "Kernel",
    "LARGE_NUMA_8S120C",
    "LatrCoherence",
    "LinuxShootdown",
    "Machine",
    "MachineSpec",
    "MECHANISMS",
    "Simulator",
    "System",
    "build_system",
    "make_mechanism",
    "preset",
    "__version__",
]
