"""Arrival processes for open-loop workloads.

A closed-loop workload (Apache under wrk) issues the next request only
after the previous one completes, so the server can never be *behind* --
queueing delay is bounded by the connection count and the tail stays
tame even at saturation.  The data-center regime the paper's section 1
motivates is the opposite: requests arrive on their own clock
(open loop), and once offered load crosses capacity the backlog -- and
with it the p99/p999 -- grows without bound.  These generators supply
that clock.

Both processes draw from a caller-provided ``random.Random`` (one of
``kernel.rng``'s named streams), so runs are deterministic per seed and
adding a new consumer never perturbs the draws other consumers see.

* :class:`PoissonArrivals` -- memoryless arrivals at a fixed rate:
  exponential gaps, the M/G/k baseline.
* :class:`MarkovModulatedArrivals` -- a two-state Markov-modulated
  Poisson process (MMPP): the rate switches between a base state and a
  burst state, with exponentially distributed dwell times in each.
  Bursty traffic is what actually drives tails in fleet traces; a
  Poisson stream at the same mean rate understates the p999.
"""

from __future__ import annotations

import random

from .engine import MSEC, SEC


class ArrivalProcess:
    """Interface: a deterministic stream of inter-arrival gaps (ns)."""

    def next_gap_ns(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def gaps(self, n: int):
        """Draw ``n`` gaps at once (dispatchers batch their RNG work)."""
        next_gap = self.next_gap_ns
        return [next_gap() for _ in range(n)]

    @property
    def mean_rate_per_sec(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrival gaps at ``rate_per_sec``."""

    def __init__(self, rng: random.Random, rate_per_sec: float):
        if rate_per_sec <= 0:
            raise ValueError(f"arrival rate must be positive: {rate_per_sec}")
        self._rng = rng
        self.rate_per_sec = float(rate_per_sec)
        self._mean_gap_ns = SEC / self.rate_per_sec

    def next_gap_ns(self) -> int:
        # expovariate(1) * mean keeps the draw count independent of the
        # rate, so sweeping offered load replays the same uniforms.
        return int(self._rng.expovariate(1.0) * self._mean_gap_ns)

    @property
    def mean_rate_per_sec(self) -> float:
        return self.rate_per_sec


class MarkovModulatedArrivals(ArrivalProcess):
    """Two-state MMPP: Poisson at ``base_rate`` or ``base_rate * burst_factor``.

    State dwell times are exponential with the given means.  The process
    tracks how much simulated time its emitted gaps have consumed and
    switches state when the current dwell budget is exhausted; a gap that
    straddles the switch is re-scaled for the portion drawn in each state,
    which keeps the modulation exact in distribution without the caller
    ever seeing the state machine.
    """

    def __init__(
        self,
        rng: random.Random,
        base_rate_per_sec: float,
        burst_factor: float = 4.0,
        base_dwell_ms: float = 8.0,
        burst_dwell_ms: float = 2.0,
    ):
        if base_rate_per_sec <= 0:
            raise ValueError(f"arrival rate must be positive: {base_rate_per_sec}")
        if burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1: {burst_factor}")
        if base_dwell_ms <= 0 or burst_dwell_ms <= 0:
            raise ValueError("dwell times must be positive")
        self._rng = rng
        self.base_rate_per_sec = float(base_rate_per_sec)
        self.burst_factor = float(burst_factor)
        self._dwell_ns = (base_dwell_ms * MSEC, burst_dwell_ms * MSEC)
        #: 0 = base state, 1 = burst state.
        self._state = 0
        self._dwell_left_ns = rng.expovariate(1.0) * self._dwell_ns[0]

    def _state_rate(self) -> float:
        if self._state:
            return self.base_rate_per_sec * self.burst_factor
        return self.base_rate_per_sec

    def next_gap_ns(self) -> int:
        gap = 0.0
        # Unit-exponential "work" left for this arrival; each state burns
        # it at its own rate (this is the standard MMPP thinning).
        work = self._rng.expovariate(1.0)
        while True:
            mean_gap_ns = SEC / self._state_rate()
            needed_ns = work * mean_gap_ns
            if needed_ns <= self._dwell_left_ns:
                self._dwell_left_ns -= needed_ns
                gap += needed_ns
                return int(gap)
            # Dwell expires first: consume it, switch state, keep the
            # residual exponential work (memorylessness makes this exact).
            gap += self._dwell_left_ns
            work -= self._dwell_left_ns / mean_gap_ns
            self._state ^= 1
            self._dwell_left_ns = (
                self._rng.expovariate(1.0) * self._dwell_ns[self._state]
            )

    @property
    def mean_rate_per_sec(self) -> float:
        """Long-run average rate (dwell-weighted across the two states)."""
        base_dwell, burst_dwell = self._dwell_ns
        total = base_dwell + burst_dwell
        return self.base_rate_per_sec * (
            base_dwell / total + self.burst_factor * burst_dwell / total
        )


def make_arrivals(
    kind: str,
    rng: random.Random,
    rate_per_sec: float,
    burst_factor: float = 4.0,
    base_dwell_ms: float = 8.0,
    burst_dwell_ms: float = 2.0,
) -> ArrivalProcess:
    """Factory keyed by workload-config strings ("poisson" / "bursty").

    For ``bursty`` the requested ``rate_per_sec`` is the *long-run mean*
    offered load -- the base rate is solved so the dwell-weighted average
    lands on it, which keeps Poisson and bursty rows of an offered-load
    sweep directly comparable.
    """
    if kind == "poisson":
        return PoissonArrivals(rng, rate_per_sec)
    if kind == "bursty":
        total = base_dwell_ms + burst_dwell_ms
        mean_factor = (base_dwell_ms + burst_factor * burst_dwell_ms) / total
        return MarkovModulatedArrivals(
            rng,
            rate_per_sec / mean_factor,
            burst_factor=burst_factor,
            base_dwell_ms=base_dwell_ms,
            burst_dwell_ms=burst_dwell_ms,
        )
    raise ValueError(f"unknown arrival process {kind!r}; have poisson, bursty")
