"""Measurement machinery: counters, latency recorders and rate windows.

Experiments read everything they report from these objects, so each
simulated run produces one :class:`StatsRegistry` that the experiment
harness turns into table rows.
"""

from __future__ import annotations

import math
from itertools import count
from typing import Dict, List, Optional, Tuple

from .engine import SEC, Simulator

#: Never-reused version mint shared by every LatencyRecorder: a version
#: number is issued for exactly one sample-list content, and a restore only
#: rewinds the version together with installing exactly that content, so
#: equal versions imply identical samples (the same contract as
#: ``repro.hw.tlb._VERSIONS``). This is what lets ``restore`` skip
#: untouched recorders on the model checker's backtracking hot path.
_VERSIONS = count(1)


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class _SampleList(list):
    """A list that bumps its owning recorder's version on every mutation.

    ``LatencyRecorder.percentile`` caches the sorted view keyed on that
    version, so *any* mutation path -- ``record()``, direct appends from
    tests, or same-length in-place edits -- invalidates the cache. A bare
    length comparison cannot see the last of those.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "LatencyRecorder", iterable=()):
        super().__init__(iterable)
        self._owner = owner

    def _bump(self) -> None:
        self._owner._version = next(_VERSIONS)

    def append(self, item):
        super().append(item)
        self._bump()

    def extend(self, iterable):
        super().extend(iterable)
        self._bump()

    def insert(self, index, item):
        super().insert(index, item)
        self._bump()

    def pop(self, index=-1):
        value = super().pop(index)
        self._bump()
        return value

    def remove(self, item):
        super().remove(item)
        self._bump()

    def clear(self):
        super().clear()
        self._bump()

    def sort(self, **kwargs):
        super().sort(**kwargs)
        self._bump()

    def reverse(self):
        super().reverse()
        self._bump()

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self._bump()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._bump()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._bump()
        return result

    def __imul__(self, factor):
        result = super().__imul__(factor)
        self._bump()
        return result


class LatencyRecorder:
    """Collects latency samples (ns) and reports summary statistics."""

    def __init__(self, name: str):
        self.name = name
        self._version = next(_VERSIONS)
        self._samples: _SampleList = _SampleList(self)
        self._sorted: Optional[List[int]] = None
        self._sorted_version = -1

    @property
    def samples(self) -> List[int]:
        return self._samples

    @samples.setter
    def samples(self, values) -> None:
        # Re-wrap wholesale assignment so mutation tracking survives it.
        self._samples = _SampleList(self, values)
        self._version = next(_VERSIONS)

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency sample on {self.name!r}: {latency_ns}")
        self._samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> int:
        return sum(self.samples)

    @property
    def minimum(self) -> int:
        return min(self.samples) if self.samples else 0

    @property
    def maximum(self) -> int:
        return max(self.samples) if self.samples else 0

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, pct in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        # Tail-latency experiments ask for several percentiles per recorder;
        # sort once and reuse until any mutation of ``samples`` bumps the
        # version (record(), direct appends, or same-length in-place edits).
        if self._sorted is None or self._sorted_version != self._version:
            self._sorted = sorted(self._samples)
            self._sorted_version = self._version
        ordered = self._sorted
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (pct / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    # ---- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> Tuple[Tuple[int, ...], int]:
        return (tuple(self._samples), self._version)

    def restore(self, snap: Tuple[Tuple[int, ...], int]) -> None:
        samples, version = snap
        if self._version == version:
            # Versions are never reused (module-level mint), so an equal
            # version means the samples are already exactly the snapshot's.
            return
        self._samples = _SampleList(self, samples)
        self._version = version
        # Invalidate the sorted cache: it may be keyed on a version from a
        # divergent history.
        self._sorted = None
        self._sorted_version = -1


class RateWindow:
    """Counts events against the simulation clock to report per-second rates."""

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self.events = 0
        self._window_start: Optional[int] = None
        self._window_end: Optional[int] = None

    def start_window(self) -> None:
        """Begin the measurement window at the current simulation time."""
        self._window_start = self.sim.now
        self.events = 0

    def stop_window(self) -> None:
        self._window_end = self.sim.now

    def hit(self, count: int = 1) -> None:
        if self._window_start is not None and self._window_end is None:
            self.events += count

    def per_second(self) -> float:
        """Event rate over the (closed or still-open) window."""
        if self._window_start is None:
            return 0.0
        end = self._window_end if self._window_end is not None else self.sim.now
        elapsed = end - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.events * (SEC / elapsed)


class StatsRegistry:
    """Owns all counters/recorders for one simulated machine run."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._rates: Dict[str, RateWindow] = {}
        self._windows_active = False

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def latency(self, name: str) -> LatencyRecorder:
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(name)
        return self._latencies[name]

    def rate(self, name: str) -> RateWindow:
        if name not in self._rates:
            self._rates[name] = RateWindow(name, self.sim)
            if self._windows_active:
                # A measurement window is open: new rates join it so that
                # lazily-created rates (first hit after warmup) still count.
                self._rates[name].start_window()
        return self._rates[name]

    def start_all_windows(self) -> None:
        self._windows_active = True
        for window in self._rates.values():
            window.start_window()

    def stop_all_windows(self) -> None:
        self._windows_active = False
        for window in self._rates.values():
            window.stop_window()

    def counters_snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    # ---- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Capture every counter/recorder/rate value (structured copy)."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "latencies": {
                name: rec.snapshot() for name, rec in self._latencies.items()
            },
            "rates": {
                name: (r.events, r._window_start, r._window_end)
                for name, r in self._rates.items()
            },
            "windows_active": self._windows_active,
        }

    def restore(self, snap: Dict[str, object]) -> None:
        """Restore to ``snap``, reusing surviving objects (callers cache
        counter/recorder references at boot, so identity must be preserved)
        and dropping entries created after the snapshot was taken."""
        # Entries are only ever created (never removed outside restore) and a
        # snapshot always restores into the registry it was taken from, so the
        # live key set is a superset of the snapshot's: equal sizes mean equal
        # keys and the deletion scans can be skipped (model-checker hot path).
        # When the sizes match, so do the key sets *and their order* (both
        # dicts grew by the same insertions), so zipping values skips the
        # per-name hashing entirely.
        counters = snap["counters"]
        live_counters = self._counters
        if len(live_counters) == len(counters):
            for counter, value in zip(live_counters.values(), counters.values()):
                counter.value = value
        else:
            for name in list(live_counters):
                if name not in counters:
                    del live_counters[name]
            for name, value in counters.items():
                live_counters[name].value = value
        latencies = snap["latencies"]
        live_latencies = self._latencies
        if len(live_latencies) == len(latencies):
            for rec, rec_snap in zip(live_latencies.values(), latencies.values()):
                rec.restore(rec_snap)
        else:
            for name in list(live_latencies):
                if name not in latencies:
                    del live_latencies[name]
            for name, rec_snap in latencies.items():
                live_latencies[name].restore(rec_snap)
        rates = snap["rates"]
        live_rates = self._rates
        if len(live_rates) == len(rates):
            for rate, (events, start, end) in zip(live_rates.values(), rates.values()):
                rate.events = events
                rate._window_start = start
                rate._window_end = end
        else:
            for name in list(live_rates):
                if name not in rates:
                    del live_rates[name]
            for name, (events, start, end) in rates.items():
                rate = live_rates.get(name)
                if rate is None:
                    rate = live_rates[name] = RateWindow(name, self.sim)
                rate.events = events
                rate._window_start = start
                rate._window_end = end
        self._windows_active = snap["windows_active"]

    def summary(self) -> Dict[str, object]:
        """A flat dict used by experiment reports and debugging dumps."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            out[f"count.{name}"] = counter.value
        for name, rec in sorted(self._latencies.items()):
            out[f"lat.{name}.mean_ns"] = rec.mean
            out[f"lat.{name}.count"] = rec.count
        for name, rate in sorted(self._rates.items()):
            out[f"rate.{name}.per_sec"] = rate.per_second()
        return out


def weighted_mean(pairs: List[Tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs; 0.0 for empty/zero-weight input."""
    total_weight = sum(weight for _, weight in pairs)
    if total_weight == 0:
        return 0.0
    return sum(value * weight for value, weight in pairs) / total_weight
