"""Measurement machinery: counters, latency recorders and rate windows.

Experiments read everything they report from these objects, so each
simulated run produces one :class:`StatsRegistry` that the experiment
harness turns into table rows.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from .engine import SEC, Simulator


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class LatencyRecorder:
    """Collects latency samples (ns) and reports summary statistics."""

    def __init__(self, name: str):
        self.name = name
        self.samples: List[int] = []
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency sample on {self.name!r}: {latency_ns}")
        self.samples.append(latency_ns)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> int:
        return sum(self.samples)

    @property
    def minimum(self) -> int:
        return min(self.samples) if self.samples else 0

    @property
    def maximum(self) -> int:
        return max(self.samples) if self.samples else 0

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, pct in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        # Tail-latency experiments ask for several percentiles per recorder;
        # sort once and reuse until the next record() invalidates. The length
        # guard catches direct appends to ``samples`` (tests do this).
        if self._sorted is None or len(self._sorted) != len(self.samples):
            self._sorted = sorted(self.samples)
        ordered = self._sorted
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (pct / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))


class RateWindow:
    """Counts events against the simulation clock to report per-second rates."""

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self.events = 0
        self._window_start: Optional[int] = None
        self._window_end: Optional[int] = None

    def start_window(self) -> None:
        """Begin the measurement window at the current simulation time."""
        self._window_start = self.sim.now
        self.events = 0

    def stop_window(self) -> None:
        self._window_end = self.sim.now

    def hit(self, count: int = 1) -> None:
        if self._window_start is not None and self._window_end is None:
            self.events += count

    def per_second(self) -> float:
        """Event rate over the (closed or still-open) window."""
        if self._window_start is None:
            return 0.0
        end = self._window_end if self._window_end is not None else self.sim.now
        elapsed = end - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.events * (SEC / elapsed)


class StatsRegistry:
    """Owns all counters/recorders for one simulated machine run."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._rates: Dict[str, RateWindow] = {}
        self._windows_active = False

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def latency(self, name: str) -> LatencyRecorder:
        if name not in self._latencies:
            self._latencies[name] = LatencyRecorder(name)
        return self._latencies[name]

    def rate(self, name: str) -> RateWindow:
        if name not in self._rates:
            self._rates[name] = RateWindow(name, self.sim)
            if self._windows_active:
                # A measurement window is open: new rates join it so that
                # lazily-created rates (first hit after warmup) still count.
                self._rates[name].start_window()
        return self._rates[name]

    def start_all_windows(self) -> None:
        self._windows_active = True
        for window in self._rates.values():
            window.start_window()

    def stop_all_windows(self) -> None:
        self._windows_active = False
        for window in self._rates.values():
            window.stop_window()

    def counters_snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def summary(self) -> Dict[str, object]:
        """A flat dict used by experiment reports and debugging dumps."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            out[f"count.{name}"] = counter.value
        for name, rec in sorted(self._latencies.items()):
            out[f"lat.{name}.mean_ns"] = rec.mean
            out[f"lat.{name}.count"] = rec.count
        for name, rate in sorted(self._rates.items()):
            out[f"rate.{name}.per_sec"] = rate.per_second()
        return out


def weighted_mean(pairs: List[Tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs; 0.0 for empty/zero-weight input."""
    total_weight = sum(weight for _, weight in pairs)
    if total_weight == 0:
        return 0.0
    return sum(value * weight for value, weight in pairs) / total_weight
