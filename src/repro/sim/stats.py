"""Measurement machinery: counters, latency recorders and rate windows.

Experiments read everything they report from these objects, so each
simulated run produces one :class:`StatsRegistry` that the experiment
harness turns into table rows.
"""

from __future__ import annotations

import math
from itertools import count
from typing import Dict, List, Optional, Tuple

from .engine import SEC, Simulator

#: Never-reused version mint shared by every LatencyRecorder and
#: QuantileRecorder: a version number is issued for exactly one recorder
#: state, and a restore only rewinds the version together with installing
#: exactly that state, so equal versions imply identical state (the same
#: contract as ``repro.hw.tlb._VERSIONS``). This is what lets ``restore``
#: skip untouched recorders on the model checker's backtracking hot path.
_VERSIONS = count(1)

#: Recorder window states. A gated recorder accepts samples while FREE
#: (no measurement window yet -- workloads that never open one keep the
#: old record-everything behaviour) and while OPEN; opening the window
#: discards warmup samples, closing it drops everything after.
_WIN_FREE, _WIN_OPEN, _WIN_CLOSED = 0, 1, 2

#: Process-wide default for whether registries gate latency/quantile
#: recorders on the measurement window. ``--legacy-latency-stats`` flips
#: this off so old (warmup-polluted) tables can be reproduced for A/B.
_GATE_LATENCIES_DEFAULT = True


def set_latency_gating(enabled: bool) -> None:
    """Escape hatch: registries built after this call gate (or don't gate)
    latency recorders on the measurement window."""
    global _GATE_LATENCIES_DEFAULT
    _GATE_LATENCIES_DEFAULT = bool(enabled)


def latency_gating_enabled() -> bool:
    return _GATE_LATENCIES_DEFAULT


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class _SampleList(list):
    """A list that bumps its owning recorder's version on every mutation.

    ``LatencyRecorder.percentile`` caches the sorted view keyed on that
    version, so *any* mutation path -- ``record()``, direct appends from
    tests, or same-length in-place edits -- invalidates the cache. A bare
    length comparison cannot see the last of those.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "LatencyRecorder", iterable=()):
        super().__init__(iterable)
        self._owner = owner

    def _bump(self) -> None:
        self._owner._version = next(_VERSIONS)

    def append(self, item):
        super().append(item)
        self._bump()

    def extend(self, iterable):
        super().extend(iterable)
        self._bump()

    def insert(self, index, item):
        super().insert(index, item)
        self._bump()

    def pop(self, index=-1):
        value = super().pop(index)
        self._bump()
        return value

    def remove(self, item):
        super().remove(item)
        self._bump()

    def clear(self):
        super().clear()
        self._bump()

    def sort(self, **kwargs):
        super().sort(**kwargs)
        self._bump()

    def reverse(self):
        super().reverse()
        self._bump()

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self._bump()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._bump()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._bump()
        return result

    def __imul__(self, factor):
        result = super().__imul__(factor)
        self._bump()
        return result


class LatencyRecorder:
    """Collects latency samples (ns) and reports summary statistics.

    When ``gated`` (the registry decides at creation time), the recorder
    participates in the measurement window that ``RateWindow`` already
    honours: ``start_window`` discards warmup samples, ``stop_window``
    drops everything recorded after.  Ungated recorders ignore both calls
    and keep the historical record-everything behaviour.
    """

    def __init__(self, name: str, gated: bool = False):
        self.name = name
        self.gated = gated
        self._window_state = _WIN_FREE
        self._version = next(_VERSIONS)
        self._samples: _SampleList = _SampleList(self)
        self._sorted: Optional[List[int]] = None
        self._sorted_version = -1

    def start_window(self) -> None:
        """Begin the measurement window: forget warmup samples."""
        if not self.gated:
            return
        self._window_state = _WIN_OPEN
        # clear() bumps the version, covering the state change too.
        self._samples.clear()

    def stop_window(self) -> None:
        """Close the window: subsequent samples are dropped."""
        if not self.gated:
            return
        self._window_state = _WIN_CLOSED
        self._version = next(_VERSIONS)

    @property
    def samples(self) -> List[int]:
        return self._samples

    @samples.setter
    def samples(self, values) -> None:
        # Re-wrap wholesale assignment so mutation tracking survives it.
        self._samples = _SampleList(self, values)
        self._version = next(_VERSIONS)

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency sample on {self.name!r}: {latency_ns}")
        if self._window_state == _WIN_CLOSED:
            return
        self._samples.append(latency_ns)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def total(self) -> int:
        return sum(self.samples)

    @property
    def minimum(self) -> int:
        return min(self.samples) if self.samples else 0

    @property
    def maximum(self) -> int:
        return max(self.samples) if self.samples else 0

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, pct in [0, 100]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        # Tail-latency experiments ask for several percentiles per recorder;
        # sort once and reuse until any mutation of ``samples`` bumps the
        # version (record(), direct appends, or same-length in-place edits).
        if self._sorted is None or self._sorted_version != self._version:
            self._sorted = sorted(self._samples)
            self._sorted_version = self._version
        ordered = self._sorted
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (pct / 100.0) * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return float(ordered[lo])
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    # ---- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> Tuple[Tuple[int, ...], int, int]:
        return (tuple(self._samples), self._version, self._window_state)

    def restore(self, snap: Tuple[Tuple[int, ...], int, int]) -> None:
        samples, version, window_state = snap
        if self._version == version:
            # Versions are never reused (module-level mint), so an equal
            # version means the recorder state is already exactly the
            # snapshot's (every state transition mints a fresh version).
            return
        self._samples = _SampleList(self, samples)
        self._version = version
        self._window_state = window_state
        # Invalidate the sorted cache: it may be keyed on a version from a
        # divergent history.
        self._sorted = None
        self._sorted_version = -1


class QuantileRecorder:
    """Bounded streaming quantile estimator over non-negative integers (ns).

    ``LatencyRecorder`` keeps every sample, which is fine for thousands of
    requests but not for open-loop runs that record millions.  This
    recorder keeps a fixed log-spaced histogram instead (HdrHistogram-style
    indexing): values below ``2**SUB_BITS`` get exact unit bins, larger
    values share ``2**SUB_BITS`` linear sub-buckets per power of two, so
    any reported percentile is within a relative half-bin error of
    ``2**-(SUB_BITS + 1)`` (~1.6% at the default 5 sub-bucket bits) while
    memory stays O(log(max) * 2**SUB_BITS) regardless of sample count.

    Window gating and the snapshot/restore version-mint contract match
    :class:`LatencyRecorder` exactly.
    """

    #: log2 of the number of linear sub-buckets per power of two.
    SUB_BITS = 5

    __slots__ = (
        "name",
        "gated",
        "_window_state",
        "_version",
        "_bins",
        "_count",
        "_total",
        "_min",
        "_max",
    )

    def __init__(self, name: str, gated: bool = False):
        self.name = name
        self.gated = gated
        self._window_state = _WIN_FREE
        self._version = next(_VERSIONS)
        self._reset()

    def _reset(self) -> None:
        self._bins: Dict[int, int] = {}
        self._count = 0
        self._total = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    # ---- windowing ------------------------------------------------------------

    def start_window(self) -> None:
        if not self.gated:
            return
        self._window_state = _WIN_OPEN
        self._reset()
        self._version = next(_VERSIONS)

    def stop_window(self) -> None:
        if not self.gated:
            return
        self._window_state = _WIN_CLOSED
        self._version = next(_VERSIONS)

    # ---- recording ------------------------------------------------------------

    @staticmethod
    def _bin_index(value: int) -> int:
        """Histogram bin for ``value``; monotonic in ``value``."""
        sub_bits = QuantileRecorder.SUB_BITS
        if value < (1 << sub_bits):
            return value
        exp = value.bit_length() - 1
        # Top (SUB_BITS + 1) bits of the value: in [2**SUB_BITS, 2**(SUB_BITS+1)).
        sub = value >> (exp - sub_bits)
        return ((exp - sub_bits) << sub_bits) + sub

    @staticmethod
    def _bin_rep(index: int) -> int:
        """Midpoint of the value range covered by bin ``index``."""
        sub_bits = QuantileRecorder.SUB_BITS
        if index < (1 << sub_bits):
            return index
        shift = (index >> sub_bits) - 1
        sub = (index & ((1 << sub_bits) - 1)) | (1 << sub_bits)
        lo = sub << shift
        return lo + ((1 << shift) >> 1)

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency sample on {self.name!r}: {latency_ns}")
        if self._window_state == _WIN_CLOSED:
            return
        bins = self._bins
        idx = self._bin_index(latency_ns)
        bins[idx] = bins.get(idx, 0) + 1
        self._count += 1
        self._total += latency_ns
        if self._min is None or latency_ns < self._min:
            self._min = latency_ns
        if self._max is None or latency_ns > self._max:
            self._max = latency_ns
        self._version = next(_VERSIONS)

    # ---- reporting ------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def minimum(self) -> int:
        return self._min if self._min is not None else 0

    @property
    def maximum(self) -> int:
        return self._max if self._max is not None else 0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile, exact within the bin's half-width."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if not self._count:
            return 0.0
        rank = max(1, math.ceil((pct / 100.0) * self._count))
        seen = 0
        for idx in sorted(self._bins):
            seen += self._bins[idx]
            if seen >= rank:
                # Clamp to the observed extremes so p0/p100 are exact and
                # a sparse top bin cannot report beyond the true maximum.
                return float(min(max(self._bin_rep(idx), self._min), self._max))
        return float(self._max)  # pragma: no cover - rank <= count always hits

    # ---- snapshot/restore -----------------------------------------------------

    def snapshot(self):
        return (
            tuple(sorted(self._bins.items())),
            self._count,
            self._total,
            self._min,
            self._max,
            self._window_state,
            self._version,
        )

    def restore(self, snap) -> None:
        bins, count, total, lo, hi, window_state, version = snap
        if self._version == version:
            # Same mint contract as LatencyRecorder: every mutation and
            # window transition mints a fresh version, so equality means
            # the state already matches the snapshot.
            return
        self._bins = dict(bins)
        self._count = count
        self._total = total
        self._min = lo
        self._max = hi
        self._window_state = window_state
        self._version = version


class RateWindow:
    """Counts events against the simulation clock to report per-second rates."""

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self.events = 0
        self._window_start: Optional[int] = None
        self._window_end: Optional[int] = None

    def start_window(self) -> None:
        """Begin the measurement window at the current simulation time."""
        self._window_start = self.sim.now
        self.events = 0

    def stop_window(self) -> None:
        self._window_end = self.sim.now

    def hit(self, count: int = 1) -> None:
        if self._window_start is not None and self._window_end is None:
            self.events += count

    def per_second(self) -> float:
        """Event rate over the (closed or still-open) window."""
        if self._window_start is None:
            return 0.0
        end = self._window_end if self._window_end is not None else self.sim.now
        elapsed = end - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.events * (SEC / elapsed)


class StatsRegistry:
    """Owns all counters/recorders for one simulated machine run.

    ``gate_latencies`` decides whether latency/quantile recorders honour
    the measurement window (the fixed behaviour) or record from t=0 (the
    historical behaviour, kept behind ``set_latency_gating``/the
    ``--legacy-latency-stats`` CLI flag for A/B comparisons). ``None``
    defers to the process-wide default.
    """

    def __init__(self, sim: Simulator, gate_latencies: Optional[bool] = None):
        self.sim = sim
        if gate_latencies is None:
            gate_latencies = _GATE_LATENCIES_DEFAULT
        self.gate_latencies = bool(gate_latencies)
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._quantiles: Dict[str, QuantileRecorder] = {}
        self._rates: Dict[str, RateWindow] = {}
        self._windows_active = False

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def latency(self, name: str) -> LatencyRecorder:
        if name not in self._latencies:
            rec = self._latencies[name] = LatencyRecorder(
                name, gated=self.gate_latencies
            )
            if self._windows_active:
                # A measurement window is open: recorders created after
                # warmup (first sample inside the window) join it directly.
                rec.start_window()
        return self._latencies[name]

    def quantile(self, name: str) -> QuantileRecorder:
        if name not in self._quantiles:
            rec = self._quantiles[name] = QuantileRecorder(
                name, gated=self.gate_latencies
            )
            if self._windows_active:
                rec.start_window()
        return self._quantiles[name]

    def rate(self, name: str) -> RateWindow:
        if name not in self._rates:
            self._rates[name] = RateWindow(name, self.sim)
            if self._windows_active:
                # A measurement window is open: new rates join it so that
                # lazily-created rates (first hit after warmup) still count.
                self._rates[name].start_window()
        return self._rates[name]

    def start_all_windows(self) -> None:
        self._windows_active = True
        for window in self._rates.values():
            window.start_window()
        for rec in self._latencies.values():
            rec.start_window()
        for qrec in self._quantiles.values():
            qrec.start_window()

    def stop_all_windows(self) -> None:
        self._windows_active = False
        for window in self._rates.values():
            window.stop_window()
        for rec in self._latencies.values():
            rec.stop_window()
        for qrec in self._quantiles.values():
            qrec.stop_window()

    def counters_snapshot(self) -> Dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    # ---- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Capture every counter/recorder/rate value (structured copy)."""
        return {
            "counters": {name: c.value for name, c in self._counters.items()},
            "latencies": {
                name: rec.snapshot() for name, rec in self._latencies.items()
            },
            "quantiles": {
                name: rec.snapshot() for name, rec in self._quantiles.items()
            },
            "rates": {
                name: (r.events, r._window_start, r._window_end)
                for name, r in self._rates.items()
            },
            "windows_active": self._windows_active,
        }

    def restore(self, snap: Dict[str, object]) -> None:
        """Restore to ``snap``, reusing surviving objects (callers cache
        counter/recorder references at boot, so identity must be preserved)
        and dropping entries created after the snapshot was taken."""
        # Entries are only ever created (never removed outside restore) and a
        # snapshot always restores into the registry it was taken from, so the
        # live key set is a superset of the snapshot's: equal sizes mean equal
        # keys and the deletion scans can be skipped (model-checker hot path).
        # When the sizes match, so do the key sets *and their order* (both
        # dicts grew by the same insertions), so zipping values skips the
        # per-name hashing entirely.
        counters = snap["counters"]
        live_counters = self._counters
        if len(live_counters) == len(counters):
            for counter, value in zip(live_counters.values(), counters.values()):
                counter.value = value
        else:
            for name in list(live_counters):
                if name not in counters:
                    del live_counters[name]
            for name, value in counters.items():
                live_counters[name].value = value
        latencies = snap["latencies"]
        live_latencies = self._latencies
        if len(live_latencies) == len(latencies):
            for rec, rec_snap in zip(live_latencies.values(), latencies.values()):
                rec.restore(rec_snap)
        else:
            for name in list(live_latencies):
                if name not in latencies:
                    del live_latencies[name]
            for name, rec_snap in latencies.items():
                live_latencies[name].restore(rec_snap)
        quantiles = snap["quantiles"]
        live_quantiles = self._quantiles
        if len(live_quantiles) == len(quantiles):
            for rec, rec_snap in zip(live_quantiles.values(), quantiles.values()):
                rec.restore(rec_snap)
        else:
            for name in list(live_quantiles):
                if name not in quantiles:
                    del live_quantiles[name]
            for name, rec_snap in quantiles.items():
                live_quantiles[name].restore(rec_snap)
        rates = snap["rates"]
        live_rates = self._rates
        if len(live_rates) == len(rates):
            for rate, (events, start, end) in zip(live_rates.values(), rates.values()):
                rate.events = events
                rate._window_start = start
                rate._window_end = end
        else:
            for name in list(live_rates):
                if name not in rates:
                    del live_rates[name]
            for name, (events, start, end) in rates.items():
                rate = live_rates.get(name)
                if rate is None:
                    rate = live_rates[name] = RateWindow(name, self.sim)
                rate.events = events
                rate._window_start = start
                rate._window_end = end
        self._windows_active = snap["windows_active"]

    def summary(self) -> Dict[str, object]:
        """A flat dict used by experiment reports and debugging dumps."""
        out: Dict[str, object] = {}
        for name, counter in sorted(self._counters.items()):
            out[f"count.{name}"] = counter.value
        for name, rec in sorted(self._latencies.items()):
            out[f"lat.{name}.mean_ns"] = rec.mean
            out[f"lat.{name}.count"] = rec.count
        for name, qrec in sorted(self._quantiles.items()):
            out[f"quant.{name}.mean_ns"] = qrec.mean
            out[f"quant.{name}.count"] = qrec.count
            out[f"quant.{name}.p99_ns"] = qrec.percentile(99.0)
        for name, rate in sorted(self._rates.items()):
            out[f"rate.{name}.per_sec"] = rate.per_second()
        return out


def weighted_mean(pairs: List[Tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs; 0.0 for empty/zero-weight input."""
    total_weight = sum(weight for _, weight in pairs)
    if total_weight == 0:
        return 0.0
    return sum(value * weight for value, weight in pairs) / total_weight
