"""Deterministic random streams.

Each consumer (workload, daemon, core) gets its own named stream derived
from the run seed, so adding a new consumer never perturbs the draws seen
by existing ones -- a requirement for the paired Linux-vs-LATR comparisons
in the experiment harness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of independent, reproducibly-seeded ``random.Random``s."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngStreams":
        """Derive a child factory, e.g. per-process inside one run."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))
