"""Deterministic random streams.

Each consumer (workload, daemon, core) gets its own named stream derived
from the run seed, so adding a new consumer never perturbs the draws seen
by existing ones -- a requirement for the paired Linux-vs-LATR comparisons
in the experiment harness.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of independent, reproducibly-seeded ``random.Random``s."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngStreams":
        """Derive a child factory, e.g. per-process inside one run."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

    # ---- snapshot/restore -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Capture every stream's Mersenne state (no generator objects)."""
        return {name: rng.getstate() for name, rng in self._streams.items()}

    def restore(self, snap: Dict[str, object]) -> None:
        """Rewind surviving streams in place; drop streams created after the
        snapshot so their eventual re-creation redraws the same sequence."""
        for name in list(self._streams):
            if name not in snap:
                del self._streams[name]
        for name, state in snap.items():
            self.stream(name).setstate(state)
