"""Discrete-event simulation substrate."""

from .engine import (
    MSEC,
    SEC,
    USEC,
    AllOf,
    EventHandle,
    Process,
    Signal,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Channel, Lock, Semaphore
from .rng import RngStreams
from .stats import Counter, LatencyRecorder, RateWindow, StatsRegistry
from .trace import TraceEvent, Tracer

__all__ = [
    "AllOf",
    "Channel",
    "Counter",
    "EventHandle",
    "LatencyRecorder",
    "Lock",
    "MSEC",
    "Process",
    "RateWindow",
    "RngStreams",
    "SEC",
    "Semaphore",
    "Signal",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "USEC",
]
