"""Structured event tracing.

Attach a :class:`Tracer` to a kernel (``kernel.tracer = Tracer(sim)``) and
the coherence paths emit timestamped events (state posts, sweeps, IPI
rounds, reclamations). Tracing is opt-in: with no tracer attached the
mechanisms pay a single ``None`` check.

Events are plain tuples in a bounded ring buffer -- cheap enough to leave
on for experiment-length runs and convenient to filter/merge:

    tracer = Tracer(system.sim)
    system.kernel.tracer = tracer
    ... run ...
    for event in tracer.query(category="latr"):
        print(tracer.format(event))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional

from .engine import Simulator


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence."""

    time_ns: int
    category: str   # "shootdown", "latr", "ipi", "reclaim", ...
    name: str       # "state.post", "sweep", "round.start", ...
    core: Optional[int] = None
    detail: str = ""


class Tracer:
    """A bounded in-memory event log."""

    def __init__(self, sim: Simulator, capacity: int = 100_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._emitted = 0

    def emit(self, category: str, name: str, core: Optional[int] = None, detail: str = "") -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(self.sim.now, category, name, core=core, detail=detail)
        )
        self._emitted += 1

    def __len__(self) -> int:
        return len(self._events)

    @property
    def emitted(self) -> int:
        return self._emitted

    def query(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        core: Optional[int] = None,
        since_ns: Optional[int] = None,
    ) -> Iterator[TraceEvent]:
        """Events matching every given filter, in time order."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            if core is not None and event.core != core:
                continue
            if since_ns is not None and event.time_ns < since_ns:
                continue
            yield event

    def counts(self) -> Dict[str, int]:
        """Event counts per '<category>.<name>'."""
        out: Dict[str, int] = {}
        for event in self._events:
            key = f"{event.category}.{event.name}"
            out[key] = out.get(key, 0) + 1
        return out

    @staticmethod
    def format(event: TraceEvent) -> str:
        core = f" core={event.core}" if event.core is not None else ""
        detail = f"  {event.detail}" if event.detail else ""
        return f"[{event.time_ns / 1e6:10.4f} ms] {event.category}.{event.name}{core}{detail}"

    def dump(self, limit: int = 200, **filters) -> str:
        lines = []
        for i, event in enumerate(self.query(**filters)):
            if i >= limit:
                lines.append(f"... (+{len(self) - limit} more)")
                break
            lines.append(self.format(event))
        return "\n".join(lines)
