"""Synchronization primitives for simulation processes.

These model the kernel-side synchronization the paper leans on:

* :class:`Lock` models sleeping mutexes/semaphores such as ``mmap_sem``,
  which LATR holds across an AutoNUMA migration until every core has swept
  its state (paper section 4.4).
* :class:`Semaphore` generalizes to counted resources.
* :class:`Channel` models message-passing between cores, used by the
  Barrelfish-style comparator mechanism.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Signal, SimulationError, Simulator


class Lock:
    """A FIFO mutex. ``yield lock.acquire()`` inside a process; then release()."""

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self._held = False
        self._waiters: Deque[Signal] = deque()
        #: total acquisitions, for contention accounting in experiments
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._held

    def acquire(self) -> Signal:
        """Return a signal that fires when the lock is granted to the caller."""
        sig = Signal(self.sim)
        if not self._held:
            self._held = True
            self.acquisitions += 1
            sig.succeed(self)
        else:
            self.contended_acquisitions += 1
            self._waiters.append(sig)
        return sig

    def release(self) -> None:
        if not self._held:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        if self._waiters:
            nxt = self._waiters.popleft()
            self.acquisitions += 1
            # Hand-off stays held; wake the next waiter at t+0 to preserve
            # deterministic event ordering.
            self.sim.after(0, nxt.succeed, self)
        else:
            self._held = False


class Semaphore:
    """A counted semaphore with FIFO wakeup."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "sem"):
        if capacity < 1:
            raise SimulationError("semaphore capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Signal] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Signal:
        sig = Signal(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            sig.succeed(self)
        else:
            self._waiters.append(sig)
        return sig

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle semaphore {self.name!r}")
        if self._waiters:
            nxt = self._waiters.popleft()
            self.sim.after(0, nxt.succeed, self)
        else:
            self._in_use -= 1


class Channel:
    """An unbounded FIFO message channel between processes.

    ``put`` never blocks; ``get`` returns a signal that fires with the next
    message (immediately if one is queued). Used to model the per-core
    message queues of message-passing shootdown designs (Barrelfish).
    """

    def __init__(self, sim: Simulator, name: str = "chan"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self.put_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.put_count += 1
        if self._getters:
            getter = self._getters.popleft()
            self.sim.after(0, getter.succeed, item)
        else:
            self._items.append(item)

    def get(self) -> Signal:
        sig = Signal(self.sim)
        if self._items:
            sig.succeed(self._items.popleft())
        else:
            self._getters.append(sig)
        return sig

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            return self._items.popleft()
        return None
