"""Discrete-event simulation engine.

The engine is the substrate for the whole reproduction: hardware timing
(IPIs, TLB invalidations, cacheline transfers), kernel activity (scheduler
ticks, context switches, background daemons) and workloads all run as events
or generator-based processes on a single :class:`Simulator`.

Time is modelled as integer nanoseconds, which keeps event ordering exact and
reproducible (no floating-point drift over long runs).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

#: One microsecond / millisecond / second in simulation time units (ns).
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (negative delays, re-triggering)."""


class EventHandle:
    """A cancellable handle for a scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if it already fired)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} fn={getattr(self.fn, '__name__', self.fn)} {state}>"


class Signal:
    """A one-shot waitable event.

    Processes wait on a Signal by yielding it; plain callbacks can subscribe
    via :meth:`add_callback`. A Signal fires exactly once with a value.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Signal"], None]] = []

    def succeed(self, value: Any = None) -> "Signal":
        """Fire the signal, delivering ``value`` to all waiters."""
        if self.triggered:
            raise SimulationError("Signal already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, cb: Callable[["Signal"], None]) -> None:
        """Invoke ``cb(self)`` when the signal fires (immediately if fired)."""
        if self.triggered:
            cb(self)
        else:
            self._callbacks.append(cb)


class Timeout:
    """Yielded by a process to sleep for ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = int(delay)


class AllOf:
    """Yielded by a process to wait for several waitables at once.

    The process resumes once every child has fired; the sent value is the
    list of child values in the order given.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)


class Process:
    """A generator-based coroutine running on the simulator.

    The generator may yield:

    * :class:`Timeout` -- resume after a delay,
    * :class:`Signal` -- resume when it fires (resumed with its value),
    * :class:`Process` -- resume when the child process finishes,
    * :class:`AllOf` -- resume when all children fire.

    The generator's return value becomes :attr:`value` and the ``done``
    signal fires with it.
    """

    __slots__ = ("sim", "gen", "done", "value", "name", "_alive")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.done = Signal(sim)
        self.value: Any = None
        self.name = name or getattr(gen, "__name__", "process")
        self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    def add_callback(self, cb: Callable[[Signal], None]) -> None:
        """Waitable protocol: completion is signalled through ``done``."""
        self.done.add_callback(cb)

    def _step(self, send_value: Any = None) -> None:
        if not self._alive:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.value = stop.value
            self.done.succeed(stop.value)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.sim.after(yielded.delay, self._step, None)
        elif isinstance(yielded, (Signal, Process)):
            yielded.add_callback(lambda sig: self._step(sig.value))
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded.children)
        else:
            raise SimulationError(f"process {self.name!r} yielded unsupported {yielded!r}")

    def _wait_all(self, children: List[Any]) -> None:
        gathered = _gather(self.sim, children, self.name)
        gathered.add_callback(lambda sig: self._step(sig.value))

    def interrupt(self) -> None:
        """Kill the process; its ``done`` signal fires with ``None``."""
        if self._alive:
            self._alive = False
            self.gen.close()
            if not self.done.triggered:
                self.done.succeed(None)


def _gather(sim: "Simulator", children: Iterable[Any], owner: str = "") -> Signal:
    """A signal firing once every child has; its value is the list of child
    values in the order given. Nested :class:`AllOf` children gather
    recursively, so their value is itself a (possibly nested) list."""
    children = list(children)
    out = Signal(sim)
    if not children:
        sim.after(0, out.succeed, [])
        return out
    remaining = [len(children)]
    values: List[Any] = [None] * len(children)

    def make_cb(i: int) -> Callable[[Signal], None]:
        def cb(sig: Signal) -> None:
            values[i] = sig.value
            remaining[0] -= 1
            if remaining[0] == 0:
                out.succeed(values)

        return cb

    for i, child in enumerate(children):
        if isinstance(child, Timeout):
            done = Signal(sim)
            sim.after(child.delay, done.succeed, None)
            child = done
        elif isinstance(child, AllOf):
            child = _gather(sim, child.children, owner)
        elif not isinstance(child, (Signal, Process)):
            raise SimulationError(
                f"process {owner!r}: AllOf child {child!r} is not waitable"
            )
        child.add_callback(make_cb(i))
    return out


class Simulator:
    """The event loop: a time-ordered heap of callbacks plus process support."""

    #: Events executed across all Simulator instances in this process; the
    #: benchmark harness snapshots it around a timed run to report events/sec
    #: even when the run builds several machines internally.
    total_events_executed = 0

    def __init__(self):
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._now = 0
        self._running = False
        #: Events executed by this instance (monotonic, never reset).
        self.events_executed = 0

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def at(self, time: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        handle = EventHandle(int(time), self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def after(self, delay: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + int(delay), fn, *args)

    def signal(self) -> Signal:
        """Create a fresh one-shot signal bound to this simulator."""
        return Signal(self)

    def timeout_signal(self, delay: int, value: Any = None) -> Signal:
        """A signal that fires automatically after ``delay`` ns."""
        sig = Signal(self)
        self.after(delay, sig.succeed, value)
        return sig

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a process from a generator; it takes its first step at t+0."""
        proc = Process(self, gen, name)
        self.after(0, proc._step, None)
        return proc

    def step(self) -> bool:
        """Run the next pending event. Returns False if the heap is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.fn(*handle.args)
            self.events_executed += 1
            Simulator.total_events_executed += 1
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains or ``until`` (absolute ns) passes.

        Returns the number of events executed. When ``until`` is given the
        clock is advanced to exactly ``until`` if the heap drained of events
        at or before ``until``, so rate computations over a fixed window stay
        well-defined. If a ``max_events`` break leaves such events pending,
        the clock stays at the last executed event -- force-advancing would
        make the next :meth:`step` move time backwards.
        """
        executed = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            next_time = self._next_event_time()
            if next_time is None or next_time > until:
                self._now = until
        return executed

    def _next_event_time(self) -> Optional[int]:
        """Time of the earliest pending (non-cancelled) event, or None."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            return head.time
        return None

    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for handle in self._heap if not handle.cancelled)
