"""Discrete-event simulation engine.

The engine is the substrate for the whole reproduction: hardware timing
(IPIs, TLB invalidations, cacheline transfers), kernel activity (scheduler
ticks, context switches, background daemons) and workloads all run as events
or generator-based processes on a single :class:`Simulator`.

Time is modelled as integer nanoseconds, which keeps event ordering exact and
reproducible (no floating-point drift over long runs).

Internally the simulator keeps near-future events in a timer wheel
(:data:`WHEEL_SLOTS` fixed-width buckets of :data:`WHEEL_SLOT_NS` each,
covering ~2.1 ms -- comfortably past the 1 ms scheduler tick) and lets
far-future events overflow to a binary heap. Event ordering is *identical*
to a pure heap: everything executes strictly by ``(time, seq)``, with ``seq``
allocated in schedule order. ``Simulator(use_timer_wheel=False)`` routes all
events through the heap instead, which the differential tests use to prove
the wheel changes nothing observable.
"""

from __future__ import annotations

import heapq
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, List, Optional

#: One microsecond / millisecond / second in simulation time units (ns).
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

#: Timer-wheel geometry: 512 slots of 4096 ns cover ~2.1 ms, so scheduler
#: ticks, context-switch traffic and execution quanta all stay in the wheel;
#: only genuinely far-future events (multi-ms daemon periods) hit the heap.
WHEEL_SLOT_NS = 1 << 12
WHEEL_SLOTS = 1 << 9
WHEEL_SPAN_NS = WHEEL_SLOT_NS * WHEEL_SLOTS

#: Buckets shorter than this are never compacted -- lazy pop handles them.
_COMPACT_MIN = 8

#: Default for ``Simulator(use_timer_wheel=...)`` when left unspecified.
DEFAULT_USE_TIMER_WHEEL = True


class SimulationError(RuntimeError):
    """Raised for illegal uses of the engine (negative delays, re-triggering)."""


class EventHandle:
    """A cancellable handle for a scheduled callback.

    Periodic handles (created by :meth:`Simulator.every`) carry a non-None
    ``interval`` and are re-armed in place after each firing instead of being
    re-allocated; ``cancel()`` stops the series.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "interval", "_sim",
                 "_bucket", "_scheduled")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable,
        args: tuple,
        sim: "Optional[Simulator]" = None,
        interval: Optional[int] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.interval = interval
        self._sim = sim
        #: Wheel-bucket index while parked in a bucket, else -1.
        self._bucket = -1
        #: True while resident in a wheel/heap structure (awaiting execution).
        self._scheduled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (no-op if it already fired).

        For periodic handles this ends the series. The handle stays in its
        wheel bucket / heap and is dropped lazily; a bucket that becomes
        >50% cancelled is compacted so long-lived simulations don't leak
        slots to dead timers.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._scheduled and self._sim is not None:
            self._sim._note_cancelled(self)

    def __lt__(self, other: "EventHandle") -> bool:
        # Tuple-free (time, seq) comparison: this runs on every heap
        # sift in the event loop, and the two tuple allocations dominate
        # the comparison itself.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        kind = "periodic " if self.interval is not None else ""
        return f"<{kind}EventHandle t={self.time} fn={getattr(self.fn, '__name__', self.fn)} {state}>"


class Signal:
    """A one-shot waitable event.

    Processes wait on a Signal by yielding it; plain callbacks can subscribe
    via :meth:`add_callback`. A Signal fires exactly once with a value.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Signal"], None]] = []

    def succeed(self, value: Any = None) -> "Signal":
        """Fire the signal, delivering ``value`` to all waiters."""
        if self.triggered:
            raise SimulationError("Signal already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, cb: Callable[["Signal"], None]) -> None:
        """Invoke ``cb(self)`` when the signal fires (immediately if fired)."""
        if self.triggered:
            cb(self)
        else:
            self._callbacks.append(cb)


class Timeout:
    """Yielded by a process to sleep for ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = int(delay)


class AllOf:
    """Yielded by a process to wait for several waitables at once.

    The process resumes once every child has fired; the sent value is the
    list of child values in the order given.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)


class Process:
    """A generator-based coroutine running on the simulator.

    The generator may yield:

    * :class:`Timeout` -- resume after a delay,
    * :class:`Signal` -- resume when it fires (resumed with its value),
    * :class:`Process` -- resume when the child process finishes,
    * :class:`AllOf` -- resume when all children fire.

    The generator's return value becomes :attr:`value` and the ``done``
    signal fires with it.
    """

    __slots__ = ("sim", "gen", "done", "value", "name", "_alive")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self.gen = gen
        self.done = Signal(sim)
        self.value: Any = None
        self.name = name or getattr(gen, "__name__", "process")
        self._alive = True

    @property
    def alive(self) -> bool:
        return self._alive

    def add_callback(self, cb: Callable[[Signal], None]) -> None:
        """Waitable protocol: completion is signalled through ``done``."""
        self.done.add_callback(cb)

    def _step(self, send_value: Any = None) -> None:
        if not self._alive:
            return
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.value = stop.value
            self.done.succeed(stop.value)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.sim.after(yielded.delay, self._step, None)
        elif isinstance(yielded, (Signal, Process)):
            yielded.add_callback(lambda sig: self._step(sig.value))
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded.children)
        else:
            raise SimulationError(f"process {self.name!r} yielded unsupported {yielded!r}")

    def _wait_all(self, children: List[Any]) -> None:
        gathered = _gather(self.sim, children, self.name)
        gathered.add_callback(lambda sig: self._step(sig.value))

    def interrupt(self) -> None:
        """Kill the process; its ``done`` signal fires with ``None``."""
        if self._alive:
            self._alive = False
            self.gen.close()
            if not self.done.triggered:
                self.done.succeed(None)


def _gather(sim: "Simulator", children: Iterable[Any], owner: str = "") -> Signal:
    """A signal firing once every child has; its value is the list of child
    values in the order given. Nested :class:`AllOf` children gather
    recursively, so their value is itself a (possibly nested) list."""
    children = list(children)
    out = Signal(sim)
    if not children:
        sim.after(0, out.succeed, [])
        return out
    remaining = [len(children)]
    values: List[Any] = [None] * len(children)

    def make_cb(i: int) -> Callable[[Signal], None]:
        def cb(sig: Signal) -> None:
            values[i] = sig.value
            remaining[0] -= 1
            if remaining[0] == 0:
                out.succeed(values)

        return cb

    for i, child in enumerate(children):
        if isinstance(child, Timeout):
            done = Signal(sim)
            sim.after(child.delay, done.succeed, None)
            child = done
        elif isinstance(child, AllOf):
            child = _gather(sim, child.children, owner)
        elif not isinstance(child, (Signal, Process)):
            raise SimulationError(
                f"process {owner!r}: AllOf child {child!r} is not waitable"
            )
        child.add_callback(make_cb(i))
    return out


class Simulator:
    """The event loop: a timer wheel + overflow heap of callbacks, plus
    process support. Execution order is strict ``(time, seq)`` regardless of
    which structure holds an event."""

    #: Events executed across all Simulator instances in this process; the
    #: benchmark harness snapshots it around a timed run to report events/sec
    #: even when the run builds several machines internally.
    total_events_executed = 0

    def __init__(
        self,
        use_timer_wheel: Optional[bool] = None,
        choice_hook: Optional[Callable[[List[EventHandle]], Optional[int]]] = None,
    ):
        if use_timer_wheel is None:
            use_timer_wheel = DEFAULT_USE_TIMER_WHEEL
        #: Controllable dispatch: when set, every dispatch first gathers the
        #: *ready set* -- all pending events due at the earliest timestamp --
        #: and calls ``choice_hook(ready)``; the hook returns the index of the
        #: event to run (or None for the default, lowest-seq, choice). The
        #: model checker uses this to observe and pin same-instant races.
        #: Forces heap mode: the ready set must be extractable exactly.
        self.choice_hook = choice_hook
        if choice_hook is not None:
            use_timer_wheel = False
        self._use_wheel = bool(use_timer_wheel)
        self._seq = 0
        self._now = 0
        self._running = False
        #: Scheduled, non-cancelled events (kept exact so pending() is O(1)).
        self._pending_live = 0
        #: Far-future events (>= the wheel horizon), or *all* events when the
        #: wheel is disabled: a binary heap ordered by (time, seq).
        self._overflow: List[EventHandle] = []
        # Wheel state: _current is a heap holding the active slot (plus any
        # event scheduled earlier than one slot past the cursor); _buckets
        # are append-only FIFO lists heapified when their slot activates.
        self._current: List[EventHandle] = []
        if self._use_wheel:
            self._buckets: List[List[EventHandle]] = [[] for _ in range(WHEEL_SLOTS)]
            self._bucket_dead: List[int] = [0] * WHEEL_SLOTS
        else:
            self._buckets = []
            self._bucket_dead = []
        self._cursor_slot = 0
        self._cursor_time = 0
        #: Handles resident in _current + _buckets (cancelled ones included
        #: until lazily dropped or compacted).
        self._wheel_count = 0
        #: Events executed by this instance (monotonic, never reset).
        self.events_executed = 0
        #: Set to a list to record (time, seq) of every executed event --
        #: the differential tests use it to prove wheel-vs-heap identity.
        self.order_log: Optional[List] = None

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling

    def at(self, time: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self._now}")
        handle = EventHandle(int(time), self._seq, fn, args, self)
        self._seq += 1
        handle._scheduled = True
        self._pending_live += 1
        self._place(handle)
        return handle

    def after(self, delay: int, fn: Callable, *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + int(delay), fn, *args)

    def every(
        self,
        interval: int,
        fn: Callable,
        *args: Any,
        start: Optional[int] = None,
    ) -> EventHandle:
        """Register a periodic event: ``fn(*args)`` fires every ``interval``
        ns, reusing one handle instead of allocating a Timeout + EventHandle
        per firing. The first firing is ``start`` ns from now (default:
        ``interval``).

        If ``fn`` returns a generator, it is run as a process starting
        synchronously at the firing time, and the next firing is scheduled
        ``interval`` ns after the *body completes* -- exactly the cadence of
        the classic ``while True: yield Timeout(p); <body>`` daemon loop.
        Plain callbacks re-fire every ``interval`` ns with no drift.

        Returns the reusable handle; :meth:`EventHandle.cancel` stops the
        series (including between firings).
        """
        if interval <= 0:
            raise SimulationError(f"non-positive period: {interval}")
        delay = interval if start is None else start
        if delay < 0:
            raise SimulationError(f"negative start: {start}")
        handle = EventHandle(
            self._now + int(delay), self._seq, fn, args, self, int(interval)
        )
        self._seq += 1
        handle._scheduled = True
        self._pending_live += 1
        self._place(handle)
        return handle

    def _rearm(self, handle: EventHandle) -> None:
        """Re-queue a periodic handle for its next firing (fresh seq, so
        ordering against freshly-scheduled events matches the old
        Timeout-per-tick daemons exactly)."""
        if handle.cancelled:
            return
        time = handle.time = self._now + handle.interval
        handle.seq = self._seq
        self._seq += 1
        handle._scheduled = True
        self._pending_live += 1
        # _place() inlined -- periodic re-arms happen once per executed tick
        # across every daemon, and the in-horizon bucket append is the
        # overwhelmingly common case.
        if self._use_wheel and time < self._cursor_time + WHEEL_SPAN_NS:
            if time < self._cursor_time + WHEEL_SLOT_NS:
                handle._bucket = -1
                heapq.heappush(self._current, handle)
            else:
                bucket = (time // WHEEL_SLOT_NS) % WHEEL_SLOTS
                handle._bucket = bucket
                self._buckets[bucket].append(handle)
            self._wheel_count += 1
        else:
            handle._bucket = -1
            heapq.heappush(self._overflow, handle)

    def _place(self, handle: EventHandle) -> None:
        """Insert into the wheel or the overflow heap by time (structural
        insert only -- callers maintain the pending/scheduled accounting)."""
        if not self._use_wheel:
            heapq.heappush(self._overflow, handle)
            return
        time = handle.time
        if time < self._cursor_time + WHEEL_SLOT_NS:
            # Due within (or before) the active slot: keep exact heap order.
            handle._bucket = -1
            heapq.heappush(self._current, handle)
            self._wheel_count += 1
        elif time < self._cursor_time + WHEEL_SPAN_NS:
            bucket = (time // WHEEL_SLOT_NS) % WHEEL_SLOTS
            handle._bucket = bucket
            self._buckets[bucket].append(handle)
            self._wheel_count += 1
        else:
            handle._bucket = -1
            heapq.heappush(self._overflow, handle)

    # ------------------------------------------------------------------
    # cancellation bookkeeping

    def _note_cancelled(self, handle: EventHandle) -> None:
        """Called by EventHandle.cancel() while the handle is still queued:
        fix the live count and compact the bucket if mostly dead."""
        self._pending_live -= 1
        bucket_idx = handle._bucket
        if bucket_idx < 0:
            return  # in _current or _overflow: lazily dropped on pop
        dead = self._bucket_dead[bucket_idx] + 1
        bucket = self._buckets[bucket_idx]
        if dead * 2 > len(bucket) and len(bucket) >= _COMPACT_MIN:
            live = [h for h in bucket if not h.cancelled]
            for h in bucket:
                if h.cancelled:
                    h._bucket = -1
                    h._scheduled = False
            self._wheel_count -= len(bucket) - len(live)
            self._buckets[bucket_idx] = live
            self._bucket_dead[bucket_idx] = 0
        else:
            self._bucket_dead[bucket_idx] = dead

    # ------------------------------------------------------------------
    # wheel advancement

    def _advance_wheel(self) -> None:
        """Advance the cursor (only legal with _current empty and events in
        the wheel) until a populated bucket activates, migrating overflow
        events as they enter the horizon along the way."""
        buckets = self._buckets
        overflow = self._overflow
        cursor_slot = self._cursor_slot
        cursor_time = self._cursor_time
        while True:
            cursor_slot = (cursor_slot + 1) % WHEEL_SLOTS
            cursor_time += WHEEL_SLOT_NS
            self._cursor_slot = cursor_slot
            self._cursor_time = cursor_time
            if overflow and overflow[0].time < cursor_time + WHEEL_SPAN_NS:
                horizon = cursor_time + WHEEL_SPAN_NS
                while overflow and overflow[0].time < horizon:
                    migrated = heapq.heappop(overflow)
                    if migrated.cancelled:
                        migrated._scheduled = False
                        continue
                    self._place(migrated)
            bucket = buckets[cursor_slot]
            if bucket:
                buckets[cursor_slot] = []
                self._bucket_dead[cursor_slot] = 0
                for h in bucket:
                    h._bucket = -1
                heapq.heapify(bucket)
                self._current = bucket
                return

    def _jump_wheel(self, time: int) -> None:
        """With the wheel empty, teleport the cursor to ``time``'s slot and
        pull newly-in-horizon overflow events into the wheel."""
        self._cursor_time = (time // WHEEL_SLOT_NS) * WHEEL_SLOT_NS
        self._cursor_slot = (time // WHEEL_SLOT_NS) % WHEEL_SLOTS
        overflow = self._overflow
        horizon = self._cursor_time + WHEEL_SPAN_NS
        while overflow and overflow[0].time < horizon:
            migrated = heapq.heappop(overflow)
            if migrated.cancelled:
                migrated._scheduled = False
                continue
            self._place(migrated)

    # ------------------------------------------------------------------
    # event loop

    def _peek_next(self) -> Optional[EventHandle]:
        """The earliest pending non-cancelled event (cancelled heads are
        dropped lazily on the way), or None if the simulator is drained."""
        if not self._use_wheel:
            overflow = self._overflow
            while overflow:
                head = overflow[0]
                if head.cancelled:
                    heapq.heappop(overflow)
                    head._scheduled = False
                    continue
                return head
            return None
        while True:
            current = self._current
            while current:
                head = current[0]
                if head.cancelled:
                    heapq.heappop(current)
                    self._wheel_count -= 1
                    head._scheduled = False
                    continue
                return head
            if self._wheel_count:
                self._advance_wheel()
                continue
            overflow = self._overflow
            while overflow and overflow[0].cancelled:
                dropped = heapq.heappop(overflow)
                dropped._scheduled = False
            if not overflow:
                return None
            self._jump_wheel(overflow[0].time)

    def _pop_ready_set(self, until: Optional[int] = None) -> Optional[List[EventHandle]]:
        """Pop every pending event due at the earliest timestamp, in
        ``(time, seq)`` order (heap mode only -- the choice hook forces it).
        Returns None when drained or when the head is past ``until``. The
        popped handles stay marked scheduled; :meth:`_dispatch_choice`
        re-queues the ones that are not chosen."""
        head = self._peek_next()
        if head is None or (until is not None and head.time > until):
            return None
        time = head.time
        ready: List[EventHandle] = []
        overflow = self._overflow
        while overflow and overflow[0].time == time:
            handle = heapq.heappop(overflow)
            if handle.cancelled:
                handle._scheduled = False
                continue
            ready.append(handle)
        return ready

    def _dispatch_choice(self, until: Optional[int] = None) -> Optional[EventHandle]:
        """Gather the ready set, let :attr:`choice_hook` pick, re-queue the
        rest, and return the chosen handle ready for execution."""
        ready = self._pop_ready_set(until)
        if not ready:
            return None
        choice = self.choice_hook(ready)
        idx = 0 if choice is None else int(choice)
        if not 0 <= idx < len(ready):
            raise SimulationError(
                f"choice_hook returned {choice!r} for a ready set of {len(ready)}"
            )
        chosen = ready[idx]
        for handle in ready:
            if handle is not chosen:
                heapq.heappush(self._overflow, handle)
        chosen._scheduled = False
        self._pending_live -= 1
        return chosen

    def _run_with_choice_hook(
        self, until: Optional[int], max_events: Optional[int]
    ) -> int:
        """The run() loop under a choice hook: one ready-set dispatch per
        event (no wheel fast path -- exactness over speed)."""
        executed = 0
        self._running = True
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                head = self._dispatch_choice(until)
                if head is None:
                    break
                self._execute(head)
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            next_time = self._next_event_time()
            if next_time is None or next_time > until:
                self._now = until
        return executed

    def _pop_next(self) -> EventHandle:
        """Remove and return the event _peek_next() just reported."""
        if self._use_wheel and self._current:
            handle = heapq.heappop(self._current)
            self._wheel_count -= 1
        else:
            handle = heapq.heappop(self._overflow)
        handle._scheduled = False
        self._pending_live -= 1
        return handle

    def _execute(self, handle: EventHandle) -> None:
        self._now = handle.time
        if handle.interval is None:
            handle.fn(*handle.args)
        else:
            result = handle.fn(*handle.args)
            if type(result) is GeneratorType:
                # Generator-flavoured periodic: run the body as a process
                # starting *now* (synchronously, like the old daemon loops'
                # inline `yield from body`), then re-arm once it completes.
                proc = Process(self, result)
                proc._step(None)
                proc.done.add_callback(lambda _sig, h=handle: self._rearm(h))
            else:
                self._rearm(handle)
        self.events_executed += 1
        Simulator.total_events_executed += 1
        if self.order_log is not None:
            self.order_log.append((handle.time, handle.seq))

    def signal(self) -> Signal:
        """Create a fresh one-shot signal bound to this simulator."""
        return Signal(self)

    def timeout_signal(self, delay: int, value: Any = None) -> Signal:
        """A signal that fires automatically after ``delay`` ns."""
        sig = Signal(self)
        self.after(delay, sig.succeed, value)
        return sig

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a process from a generator; it takes its first step at t+0."""
        proc = Process(self, gen, name)
        self.after(0, proc._step, None)
        return proc

    def step(self) -> bool:
        """Run the next pending event. Returns False if the engine drained."""
        if self.choice_hook is not None:
            head = self._dispatch_choice()
            if head is None:
                return False
            self._execute(head)
            return True
        if self._peek_next() is None:
            return False
        self._execute(self._pop_next())
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the engine drains or ``until`` (absolute ns)
        passes.

        Returns the number of events executed. When ``until`` is given the
        clock is advanced to exactly ``until`` if the engine drained of
        events at or before ``until``, so rate computations over a fixed
        window stay well-defined. If a ``max_events`` break leaves such
        events pending, the clock stays at the last executed event --
        force-advancing would make the next :meth:`step` move time backwards.
        """
        if self.choice_hook is not None:
            return self._run_with_choice_hook(until, max_events)
        executed = 0
        self._running = True
        # The body below is _pop_next() + _execute() inlined: one event is
        # dispatched per iteration and this loop is the single hottest frame
        # in every benchmark, so the per-event method-call overhead is worth
        # trading away. step() keeps the readable composed form.
        peek = self._peek_next
        pop = heapq.heappop
        use_wheel = self._use_wheel
        rearm = self._rearm
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                # Fast path: a live head at the front of the active slot.
                # Everything else (cancelled heads, wheel advance, overflow
                # refill, heap-only mode) funnels through _peek_next().
                current = self._current
                if use_wheel and current and not current[0].cancelled:
                    head = current[0]
                else:
                    head = peek()
                if head is None:
                    break
                time = head.time
                if until is not None and time > until:
                    break
                if use_wheel and self._current:
                    pop(self._current)
                    self._wheel_count -= 1
                else:
                    pop(self._overflow)
                head._scheduled = False
                self._pending_live -= 1
                self._now = time
                if head.interval is None:
                    head.fn(*head.args)
                else:
                    result = head.fn(*head.args)
                    if type(result) is GeneratorType:
                        proc = Process(self, result)
                        proc._step(None)
                        proc.done.add_callback(
                            lambda _sig, h=head: rearm(h)
                        )
                    else:
                        rearm(head)
                executed += 1
                order_log = self.order_log
                if order_log is not None:
                    order_log.append((time, head.seq))
        finally:
            self._running = False
            self.events_executed += executed
            Simulator.total_events_executed += executed
        if until is not None and self._now < until:
            next_time = self._next_event_time()
            if next_time is None or next_time > until:
                self._now = until
        return executed

    def _next_event_time(self) -> Optional[int]:
        """Time of the earliest pending (non-cancelled) event, or None."""
        head = self._peek_next()
        return head.time if head is not None else None

    def pending(self) -> int:
        """Number of scheduled, non-cancelled events (O(1))."""
        return self._pending_live

    # ------------------------------------------------------------------
    # snapshot / restore

    def _resident_handles(self) -> Iterable[EventHandle]:
        """Every handle currently parked in a queue structure (cancelled
        ones included until their lazy drop)."""
        yield from self._current
        yield from self._overflow
        for bucket in self._buckets:
            if bucket:
                yield from bucket

    def fork(self) -> "EngineSnapshot":
        """Capture a restorable snapshot of the event queues.

        Handles are *shared* with the snapshot, not copied: their mutable
        fields (time/seq/cancelled/placement) are recorded so ``restore()``
        can rewrite them in place, preserving identity -- callbacks, daemon
        re-arm chains and cached references all keep pointing at the same
        objects. ``fn``/``args``/``interval`` never mutate after creation
        and are not recorded.

        Refuses mid-run and refuses when any pending event is a live
        generator continuation (a bound method of a :class:`Process` or
        :class:`Signal`): a suspended generator frame cannot be copied, so
        snapshots are only legal at quiescent points where every pending
        event is a plain callback (periodic daemon ticks, timers).
        """
        if self._running:
            raise SimulationError("cannot fork a running simulator")
        for handle in self._resident_handles():
            if live_continuation(handle):
                raise SimulationError(
                    f"cannot fork with live generator continuation pending: "
                    f"{handle!r}"
                )
        return EngineSnapshot(
            seq=self._seq,
            now=self._now,
            pending_live=self._pending_live,
            cursor_slot=self._cursor_slot,
            cursor_time=self._cursor_time,
            wheel_count=self._wheel_count,
            events_executed=self.events_executed,
            order_len=len(self.order_log) if self.order_log is not None else None,
            current=list(self._current),
            overflow=list(self._overflow),
            buckets={
                i: list(b) for i, b in enumerate(self._buckets) if b
            },
            bucket_dead=list(self._bucket_dead),
            handle_fields=[
                (h, h.time, h.seq, h.cancelled, h._bucket, h._scheduled)
                for h in self._resident_handles()
            ],
        )

    def restore(self, snap: "EngineSnapshot") -> None:
        """Rewind the event queues to a snapshot taken by :meth:`fork`.

        Restore order matters: (1) orphan every currently-resident handle so
        post-fork events cannot corrupt the accounting via a later
        ``cancel()``; (2) rewrite the recorded fields of every snapshotted
        handle (healing post-fork execution, re-arms, cancellation and
        bucket compaction); (3) reinstall the queue structure copies;
        (4) scalars; (5) truncate the order log.
        """
        if self._running:
            raise SimulationError("cannot restore a running simulator")
        for handle in self._resident_handles():
            handle._scheduled = False
            handle._bucket = -1
        for handle, time, seq, cancelled, bucket, scheduled in snap.handle_fields:
            handle.time = time
            handle.seq = seq
            handle.cancelled = cancelled
            handle._bucket = bucket
            handle._scheduled = scheduled
        # The list copies preserved heap order, so no re-heapify is needed.
        self._current = list(snap.current)
        self._overflow = list(snap.overflow)
        if self._use_wheel:
            buckets = self._buckets
            for i, bucket in enumerate(buckets):
                if bucket:
                    buckets[i] = []
            for i, saved in snap.buckets.items():
                buckets[i] = list(saved)
            self._bucket_dead = list(snap.bucket_dead)
        self._seq = snap.seq
        self._now = snap.now
        self._pending_live = snap.pending_live
        self._cursor_slot = snap.cursor_slot
        self._cursor_time = snap.cursor_time
        self._wheel_count = snap.wheel_count
        self.events_executed = snap.events_executed
        if self.order_log is not None and snap.order_len is not None:
            del self.order_log[snap.order_len:]


def live_continuation(handle: EventHandle) -> bool:
    """True if executing (or dropping) ``handle`` would touch a suspended
    generator: its callback belongs to a live :class:`Process` or to a
    :class:`Signal`, or such an object rides in its args. A *dead*
    process's ``_step`` handle is a harmless no-op and does not count."""
    if handle.cancelled:
        return False
    owner = getattr(handle.fn, "__self__", None)
    if isinstance(owner, Signal) or (isinstance(owner, Process) and owner.alive):
        return True
    return any(
        isinstance(arg, Signal) or (isinstance(arg, Process) and arg.alive)
        for arg in handle.args
    )


class EngineSnapshot:
    """Opaque engine state captured by :meth:`Simulator.fork`."""

    __slots__ = (
        "seq", "now", "pending_live", "cursor_slot", "cursor_time",
        "wheel_count", "events_executed", "order_len", "current",
        "overflow", "buckets", "bucket_dead", "handle_fields",
    )

    def __init__(self, **fields: Any):
        for name in self.__slots__:
            setattr(self, name, fields[name])
