"""Transparent huge pages: khugepaged-style collapse (paper section 7).

The paper lists THP as unsupported by the LATR prototype but sketches the
extension: "the LATR states could be extended with an additional flag to
support a lazy TLB shootdown for transparent huge pages", and compaction
(which THP depends on) uses the same migration-class laziness as AutoNUMA.
This module implements that extension:

* :class:`Khugepaged` scans registered processes for 2 MiB-aligned,
  fully-4 KiB-populated anonymous ranges and *collapses* them: allocate a
  contiguous 2 MiB block (running compaction first if fragmented), copy
  the 512 pages, replace the PTEs with one PD-level entry.
* The PTE replacement is a migration-class operation: under LATR it is
  deferred into a state (whose 512-page range makes every sweep take the
  batched full-flush path) and the old frames are freed only after every
  core has invalidated -- the reuse invariant holds for huge collapses
  exactly as for 4 KiB frees.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from ..mm.addr import HUGE_PAGE_PAGES, VirtRange, is_huge_aligned
from ..mm.frames import FrameAllocatorError
from ..mm.pte import Pte, make_huge_pte
from ..mm.vma import VmaKind
from ..sim.engine import MSEC, Timeout
from .task import KProcess

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class Khugepaged:
    """Background THP collapse daemon."""

    def __init__(
        self,
        kernel: "Kernel",
        scan_period_ns: int = 20 * MSEC,
        max_collapses_per_round: int = 4,
        daemon_core_id: int = 0,
    ):
        self.kernel = kernel
        self.scan_period_ns = scan_period_ns
        self.max_collapses_per_round = max_collapses_per_round
        self.daemon_core_id = daemon_core_id
        self._registered: List[KProcess] = []
        self._started = False

    @classmethod
    def install(cls, kernel: "Kernel", **kwargs) -> "Khugepaged":
        daemon = cls(kernel, **kwargs)
        kernel.khugepaged = daemon
        return daemon

    def register(self, process: KProcess) -> None:
        self._registered.append(process)
        if not self._started:
            self._started = True
            # Periodic generator body: next round starts scan_period_ns
            # after the previous one completes (classic daemon cadence).
            self.kernel.sim.every(self.scan_period_ns, self.scan_once)

    # ---- candidate discovery ----------------------------------------------------

    def collapse_candidates(self, process: KProcess) -> List[int]:
        """2 MiB-aligned base vpns whose 512 pages are all plain 4 KiB anon
        mappings inside one VMA."""
        mm = process.mm
        candidates = []
        for vma in mm.vmas:
            if vma.kind is not VmaKind.ANON or vma.huge:
                continue
            base = vma.range.vpn_start
            # Align up to the first huge boundary inside the VMA.
            if not is_huge_aligned(base):
                base = (base // HUGE_PAGE_PAGES + 1) * HUGE_PAGE_PAGES
            while base + HUGE_PAGE_PAGES <= vma.range.vpn_end:
                if self._collapsible(mm, base):
                    candidates.append(base)
                base += HUGE_PAGE_PAGES
        return candidates

    @staticmethod
    def _collapsible(mm, base_vpn: int) -> bool:
        for vpn in range(base_vpn, base_vpn + HUGE_PAGE_PAGES):
            pte = mm.page_table.walk(vpn)
            if pte is None or not pte.present or pte.cow or pte.huge:
                return False
        return True

    # ---- the collapse -------------------------------------------------------------

    def scan_once(self) -> Generator:
        collapsed = 0
        for process in list(self._registered):
            for base_vpn in self.collapse_candidates(process):
                if collapsed >= self.max_collapses_per_round:
                    return
                ok = yield from self.collapse(process, base_vpn)
                if ok:
                    collapsed += 1

    def collapse(self, process: KProcess, base_vpn: int) -> Generator:
        """Collapse one 2 MiB range; returns True on success."""
        kernel = self.kernel
        lat = kernel.machine.latency
        core = kernel.machine.core(self.daemon_core_id)
        mm = process.mm
        vrange = VirtRange.from_pages(base_vpn, HUGE_PAGE_PAGES)

        # Allocate (and possibly compact) *before* taking mmap_sem:
        # compaction's relocations take the same semaphore.
        first = mm.page_table.walk(base_vpn)
        if first is None or not first.present:
            return False
        node = kernel.frames.node_of(first.pfn)
        base_pfn = yield from self._grab_contiguous(core, node)
        if base_pfn is None:
            kernel.stats.counter("thp.collapse_failed_fragmentation").add()
            return False

        yield mm.mmap_sem.acquire()
        try:
            if not self._collapsible(mm, base_vpn):
                kernel.release_frames(range(base_pfn, base_pfn + HUGE_PAGE_PAGES))
                return False

            old_pfns = [
                mm.page_table.walk(vpn).pfn
                for vpn in vrange.vpns()
            ]
            yield from core.execute(lat.huge_page_copy_ns)
            replaced = {"ok": False}

            def apply_change(mm=mm, vrange=vrange, base_pfn=base_pfn, replaced=replaced) -> None:
                # Re-check: the range must still be fully mapped 4 KiB.
                for vpn in vrange.vpns():
                    pte = mm.page_table.walk(vpn)
                    if pte is None or not pte.present or pte.huge or pte.cow:
                        return
                for vpn in vrange.vpns():
                    mm.page_table.clear_pte(vpn)
                mm.page_table.set_huge_pte(vrange.vpn_start, make_huge_pte(base_pfn))
                replaced["ok"] = True

            done = yield from kernel.coherence.migration_unmap(
                core, mm, vrange, apply_change
            )
            # Replica fan-out of the 512 clears + 1 huge install (numaPTE);
            # 0 and no extra yield when replication is off.
            replica_work = kernel.drain_replica_work(core, mm)
            if replica_work:
                yield from core.execute(replica_work)
        finally:
            mm.mmap_sem.release()

        kernel.sim.spawn(
            self._free_after(done, old_pfns, base_pfn, replaced), name="thp-free"
        )
        kernel.stats.counter("thp.collapses").add()
        return True

    def _grab_contiguous(self, core, node: int) -> Generator:
        """Allocate 512 contiguous frames, compacting once if fragmented."""
        kernel = self.kernel
        try:
            base = kernel.frames.alloc_contiguous(HUGE_PAGE_PAGES, node=node)
            yield from core.execute(kernel.machine.latency.page_alloc_ns * 8)
            return base
        except FrameAllocatorError:
            pass
        compactor = kernel.compactor
        if compactor is None:
            return None
        kernel.stats.counter("thp.compactions_triggered").add()
        yield from compactor.compact_node(node, max_pages=2 * HUGE_PAGE_PAGES)
        # The evacuated frames only become reusable once every TLB entry
        # for them is gone -- under LATR that is up to two tick intervals
        # (the same reuse invariant as any lazy free). Retry after that.
        tick = kernel.machine.spec.tick_interval_ns
        yield Timeout(5 * tick // 2)
        try:
            base = kernel.frames.alloc_contiguous(HUGE_PAGE_PAGES, node=node)
            return base
        except FrameAllocatorError:
            return None

    def _free_after(self, done, old_pfns: List[int], base_pfn: int, replaced) -> Generator:
        yield done
        if replaced["ok"]:
            # The 512 old frames are only reusable now: every TLB entry for
            # the collapsed range has been invalidated.
            self.kernel.release_frames(old_pfns)
            self.kernel.stats.counter("thp.frames_freed").add(len(old_pfns))
        else:
            self.kernel.release_frames(
                range(base_pfn, base_pfn + HUGE_PAGE_PAGES)
            )
