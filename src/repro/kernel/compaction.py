"""Memory compaction: defragmenting migration (paper Table 1, section 7).

Compaction relocates movable pages to coalesce free physical memory (the
prerequisite for huge-page allocation). Each relocation is a migration-
class operation: unmap (lazily under LATR), copy, remap, and free the old
frame only after every TLB entry for it is gone.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Tuple

from ..mm.addr import VirtRange
from ..mm.pte import Pte
from .task import KProcess

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class Compactor:
    """On-demand compaction runs (no background loop; tests/benches drive it)."""

    def __init__(self, kernel: "Kernel", daemon_core_id: int = 0):
        self.kernel = kernel
        self.daemon_core_id = daemon_core_id
        self._registered: List[KProcess] = []

    @classmethod
    def install(cls, kernel: "Kernel", **kwargs) -> "Compactor":
        compactor = cls(kernel, **kwargs)
        kernel.compactor = compactor
        return compactor

    def register(self, process: KProcess) -> None:
        self._registered.append(process)

    def movable_pages(self, node: int) -> List[Tuple[KProcess, int, Pte]]:
        """Anon, non-CoW pages resident on ``node`` (the movable set)."""
        out = []
        for process in self._registered:
            for vpn, pte in process.mm.page_table.all_entries():
                if not pte.present or pte.cow or pte.huge:
                    continue
                if self.kernel.frames.node_of(pte.pfn) == node:
                    out.append((process, vpn, pte))
        return out

    def pick_target_block(self, node: int, block_frames: int = 512):
        """The aligned PFN block cheapest to evacuate: every allocated
        frame in it must be movable; prefer the fewest occupied frames.

        Returns (block_range, movable_in_block) or (None, []).
        """
        frames = self.kernel.frames
        movable_by_pfn = {
            pte.pfn: (process, vpn, pte) for process, vpn, pte in self.movable_pages(node)
        }
        base_lo = node * frames.frames_per_node
        best = None
        best_movable = []
        for base in range(base_lo, base_lo + frames.frames_per_node, block_frames):
            block = range(base, base + block_frames)
            occupied = [pfn for pfn in block if frames.is_allocated(pfn)]
            if not occupied:
                continue  # already free (nothing to gain)
            if any(pfn not in movable_by_pfn for pfn in occupied):
                continue  # pinned page (page cache, kernel) blocks the block
            if best is None or len(occupied) < len(best_movable):
                best = block
                best_movable = occupied
        if best is None:
            return None, []
        return best, [movable_by_pfn[pfn] for pfn in best_movable]

    def compact_node(self, node: int, max_pages: int) -> Generator:
        """Defragment: evacuate the cheapest aligned 2 MiB block on
        ``node`` (up to ``max_pages`` relocations); returns the count.

        Each relocation is a migration-class unmap -- lazy under LATR."""
        kernel = self.kernel
        lat = kernel.machine.latency
        core = kernel.machine.core(self.daemon_core_id)
        block, victims = self.pick_target_block(node)
        if block is None:
            kernel.stats.counter("compaction.no_block").add()
            return 0
        moved = 0
        for process, vpn, pte in victims[:max_pages]:
            mm = process.mm
            yield mm.mmap_sem.acquire()
            try:
                current = mm.page_table.walk(vpn)
                if current is None or not current.present or current.pfn != pte.pfn:
                    continue
                old_pfn = current.pfn
                try:
                    new_pfn = kernel.frames.alloc(node, exclude=block)
                except Exception:
                    break  # out of space outside the block; stop this round
                yield from core.execute(lat.page_alloc_ns + lat.page_copy_ns)
                tag = kernel.page_contents.get(old_pfn)
                if tag is not None:
                    kernel.page_contents[new_pfn] = tag
                replaced = {"ok": False}

                def apply_change(mm=mm, vpn=vpn, old=old_pfn, new=new_pfn, replaced=replaced) -> None:
                    live = mm.page_table.walk(vpn)
                    if live is None or not live.present or live.pfn != old:
                        return
                    mm.page_table.set_pte(vpn, Pte(pfn=new, flags=live.flags))
                    replaced["ok"] = True

                vrange = VirtRange.from_pages(vpn, 1)
                done = yield from kernel.coherence.migration_unmap(
                    core, mm, vrange, apply_change
                )
            finally:
                mm.mmap_sem.release()
            kernel.sim.spawn(
                self._free_after(done, old_pfn, new_pfn, replaced), name="compact-free"
            )
            moved += 1
        kernel.stats.counter("compaction.pages_moved").add(moved)
        return moved

    def _free_after(self, done, old_pfn: int, new_pfn: int, replaced) -> Generator:
        yield done
        if replaced["ok"]:
            self.kernel.release_frames([old_pfn])
        else:
            self.kernel.release_frames([new_pfn])
