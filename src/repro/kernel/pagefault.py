"""Page-fault handling: demand paging, page cache, CoW, NUMA hints, swap.

The handler charges realistic costs and keeps the TLB model honest: every
resolved fault installs a translation tagged with the frame's *generation*,
which the invariant checker uses to prove LATR never lets a core translate
through a recycled frame.

Simplification (documented in DESIGN.md): faults take ``mmap_sem``
exclusively rather than shared. This preserves the orderings the paper's
correctness argument needs (fault vs. unmap, fault vs. AutoNUMA unmap,
section 4.4) at the cost of some parallelism that both compared mechanisms
lose equally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..hw.tlb import TlbEntry
from ..mm.addr import addr_of, vpn_of
from ..mm.fault import FaultKind, FaultResult
from ..mm.mmstruct import MmStruct
from ..mm.pte import Pte, PteFlags, make_present_pte
from ..mm.vma import Prot, Vma, VmaKind
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: Page-cache miss "I/O" cost: reading a 4 KB block from a warm NVMe/buffer
#: layer. The paper's Apache experiment serves a fully cached file, so this
#: only shows up for first touches.
PAGE_IO_NS = 9_000


class PageFaultHandler:
    """do_page_fault() analogue."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel

    def handle(
        self,
        task: Task,
        core,
        vaddr: int,
        write: bool,
        sem_held: bool = False,
    ) -> Generator:
        """Resolve a fault; returns a :class:`FaultResult`.

        ``sem_held`` lets callers already under ``mmap_sem`` (the AutoNUMA
        migration path) reuse the handler without self-deadlock.
        """
        kernel = self.kernel
        lat = kernel.machine.latency
        mm = task.mm
        vpn = vpn_of(vaddr)
        stats = kernel.stats

        stats.counter("faults.total").add()
        yield from core.execute(lat.page_fault_base_ns)

        if not sem_held:
            yield mm.mmap_sem.acquire()
        try:
            result = yield from self.resolve_locked(task, core, vaddr, write)
        finally:
            if not sem_held:
                mm.mmap_sem.release()

        if result.kind is FaultKind.SEGFAULT:
            return result
        if result.pfn is not None:
            yield from self._install_translation(task, core, vpn, result.pfn, write)
        stats.counter(f"faults.{result.kind.value}").add()
        return result

    def resolve_locked(self, task, core, vaddr: int, write: bool) -> Generator:
        """The under-``mmap_sem`` half of :meth:`handle`: find the VMA and
        dispatch to the right fault flavour. Exposed so the batched
        ``touch_pages`` path can delegate pages that turn out not to be
        plain anonymous demand faults without re-charging the fault entry
        cost (the caller owns ``mmap_sem``, the entry accounting, the TLB
        install, and the per-kind counter)."""
        mm = task.mm
        vpn = vpn_of(vaddr)
        stats = self.kernel.stats
        vma = mm.vmas.find(vaddr)
        if vma is None or (write and not (vma.prot & Prot.WRITE)):
            stats.counter("faults.segfault").add()
            return FaultResult(FaultKind.SEGFAULT, vpn)

        pte = mm.page_table.walk(vpn)
        if pte is None:
            result = yield from self._demand_fault(task, core, vma, vpn, write)
        elif pte.swapped:
            result = yield from self._swap_in(task, core, vpn, pte)
        elif pte.numa_hint:
            result = yield from self._numa_hint_fault(task, core, vpn, pte)
        elif pte.cow and write:
            result = yield from self._cow_break(task, core, vpn, pte)
        elif pte.present:
            stats.counter("faults.spurious").add()
            result = FaultResult(FaultKind.SPURIOUS, vpn, pfn=pte.pfn)
        else:
            stats.counter("faults.segfault").add()
            result = FaultResult(FaultKind.SEGFAULT, vpn)
        return result

    # ---- fault flavours ----------------------------------------------------------

    def _demand_fault(self, task, core, vma: Vma, vpn: int, write: bool) -> Generator:
        kernel = self.kernel
        lat = kernel.machine.latency
        node = core.socket
        if vma.huge:
            result = yield from self._huge_fault(task, core, vma, vpn, write)
            if result is not None:
                return result
            # Fragmented memory: fall through to a 4 KiB mapping (THP
            # fallback) via the normal anonymous path below.
        if vma.kind is VmaKind.FILE:
            page_index = vma.file_offset // 4096 + (vpn - vma.range.vpn_start)
            pfn, cached = kernel.page_cache.get_or_fill(vma.file_key, page_index, node)
            kernel.frames.get(pfn)  # the mapping's reference
            cost = lat.page_alloc_ns if not cached else 0
            if not cached:
                cost += PAGE_IO_NS
            yield from core.execute(cost + lat.pte_set_ns)
            # File pages are shared through the cache: map read-only and
            # break CoW on write (private file mapping semantics).
            pte = make_present_pte(pfn, writable=False, cow=bool(vma.prot & Prot.WRITE))
            kind = FaultKind.MINOR_FILE if cached else FaultKind.MAJOR_FILE
        else:
            pfn = kernel.frames.alloc(node)
            yield from core.execute(lat.page_alloc_ns + lat.page_zero_ns + lat.pte_set_ns)
            pte = make_present_pte(pfn, writable=bool(vma.prot & Prot.WRITE))
            kind = FaultKind.MINOR_ANON
        task.mm.page_table.set_pte(vpn, pte)
        if pte.cow and write:
            return (yield from self._cow_break(task, core, vpn, pte))
        return FaultResult(kind, vpn, pfn=pfn)

    def _huge_fault(self, task, core, vma: Vma, vpn: int, write: bool) -> Generator:
        """Try to satisfy the fault with one 2 MiB mapping; None on
        fragmentation (caller falls back to 4 KiB)."""
        from ..mm.addr import HUGE_PAGE_PAGES, VirtRange, huge_base_vpn
        from ..mm.frames import FrameAllocatorError
        from ..mm.pte import make_huge_pte

        kernel = self.kernel
        lat = kernel.machine.latency
        mm = task.mm
        base_vpn = huge_base_vpn(vpn)
        # Some of the 512 pages may already have 4 KiB mappings (earlier
        # fallback faults); those block a PD-level entry.
        huge_range = VirtRange.from_pages(base_vpn, HUGE_PAGE_PAGES)
        if any(True for _ in mm.page_table.entries_in_range(huge_range)):
            return None
        try:
            base_pfn = kernel.frames.alloc_contiguous(HUGE_PAGE_PAGES, node=core.socket)
        except FrameAllocatorError:
            kernel.stats.counter("thp.alloc_fallbacks").add()
            return None
        yield from core.execute(lat.huge_page_zero_ns + lat.pte_set_ns)
        mm.page_table.set_huge_pte(
            base_vpn, make_huge_pte(base_pfn, writable=bool(vma.prot & Prot.WRITE))
        )
        kernel.stats.counter("faults.huge").add()
        return FaultResult(FaultKind.MINOR_ANON, base_vpn, pfn=base_pfn)

    def _swap_in(self, task, core, vpn: int, pte: Pte) -> Generator:
        kernel = self.kernel
        lat = kernel.machine.latency
        swap = getattr(kernel, "swap", None)
        if swap is None:
            raise RuntimeError("swap PTE found but no swap device attached")
        pfn = yield from swap.swap_in(core, pte.swap_slot)
        task.mm.page_table.set_pte(vpn, make_present_pte(pfn, writable=True))
        yield from core.execute(lat.pte_set_ns)
        return FaultResult(FaultKind.SWAP_IN, vpn, pfn=pfn)

    def _numa_hint_fault(self, task, core, vpn: int, pte: Pte) -> Generator:
        """AutoNUMA sampling fault (paper sections 2.1, 4.3)."""
        kernel = self.kernel
        autonuma = getattr(kernel, "autonuma", None)
        if autonuma is not None:
            return (yield from autonuma.handle_hint_fault(task, core, vpn, pte))
        # No AutoNUMA service: just clear the hint.
        task.mm.page_table.update_pte(vpn, pte.clear_numa_hint())
        yield from core.execute(kernel.machine.latency.pte_set_ns)
        return FaultResult(FaultKind.NUMA_HINT, vpn, pfn=pte.pfn)

    def _cow_break(self, task, core, vpn: int, pte: Pte) -> Generator:
        """Copy-on-write: ownership change, synchronous shootdown (Table 1)."""
        from ..coherence.base import ShootdownReason
        from ..mm.addr import VirtRange

        kernel = self.kernel
        lat = kernel.machine.latency
        mm = task.mm
        old_pfn = pte.pfn
        if kernel.frames.refcount(old_pfn) == 1:
            # Sole owner: just restore write permission, still flush other
            # cores' read-only entries for this page.
            new_pte = pte.with_flags(add=PteFlags.WRITE, drop=PteFlags.COW)
            mm.page_table.update_pte(vpn, new_pte)
            yield from core.execute(lat.pte_set_ns)
            new_pfn = old_pfn
        else:
            new_pfn = kernel.frames.alloc(core.socket)
            yield from core.execute(
                lat.page_alloc_ns + lat.page_copy_ns + lat.pte_set_ns
            )
            tag = kernel.page_contents.get(old_pfn)
            if tag is not None:
                kernel.page_contents[new_pfn] = tag
            mm.page_table.set_pte(vpn, make_present_pte(new_pfn, writable=True))
            old_freed = kernel.frames.put(old_pfn)
            if old_freed and kernel.use_virtualization:
                # The shared original actually freed: its host (EPT)
                # translations are stale now (flat runs: dead branch).
                kernel._ept_detach(old_pfn)
        vrange = VirtRange.from_pages(vpn, 1)
        yield from kernel.coherence.shootdown_sync(core, mm, vrange, ShootdownReason.COW)
        return FaultResult(FaultKind.COW_BREAK, vpn, pfn=new_pfn)

    # ---- TLB install ----------------------------------------------------------------

    def _install_translation(self, task, core, vpn: int, pfn: int, write: bool) -> Generator:
        from ..mm.addr import huge_base_vpn

        kernel = self.kernel
        mm = task.mm
        # The hardware re-walk descends the walking core's local replica
        # (numaPTE) or pays the hop distance to the shared table's node;
        # with replication modelling off both are the flat walk as before.
        pte, walk_extra = kernel.pt_hw_walk(core, mm, vpn)
        if pte is None or not pte.present:
            # The mapping changed under us (lazy unmap landed); nothing to cache.
            yield from core.execute(0)
            return
        if pte.huge:
            core.tlb.fill_huge(
                mm.pcid,
                huge_base_vpn(vpn),
                TlbEntry(
                    pfn=pte.pfn,
                    writable=pte.writable,
                    generation=kernel.frames.generation(pte.pfn),
                    debug_mm_id=mm.mm_id,
                ),
            )
        else:
            core.tlb.fill_new(
                mm.pcid,
                vpn,
                pte.pfn,
                pte.writable,
                kernel.frames.generation(pte.pfn),
                mm.mm_id,
            )
        extra = kernel.coherence.on_tlb_fill(core, mm, vpn)
        # Any replica fan-out the fault's PTE writes accumulated is charged
        # here, on the faulting core (0 when replication is off), as is the
        # EPT-violation fill for a VM task's first access to this frame
        # (0 when flat).
        extra += kernel.drain_replica_work(core, mm)
        extra += kernel.ept_fill(mm, pte.pfn)
        yield from core.execute(kernel.machine.latency.tlb_miss_walk_ns + walk_extra + extra)
