"""Page swap: migration-class lazy unmap (paper Table 1, section 3).

The paper sketches the lazy flavour: "with an LRU-based page swapping
algorithm, the page table unmap and swap operation can be performed lazily
after the last core has invalidated the TLB entry". That is exactly what
:meth:`SwapDevice.swap_out_pages` does -- the unmap goes through
``migration_unmap`` (one LATR state / one IPI round) and the disk write +
frame free run in a finisher that waits on the unmap's completion signal,
so the frame outlives every TLB entry pointing at it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from ..mm.addr import VirtRange
from ..mm.mmstruct import MmStruct
from ..mm.pte import make_swap_pte
from .task import Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: "Disk" latencies: a fast SSD swap device (the paper's motivation also
#: covers RDMA-backed disaggregated memory, which would be faster still).
SWAP_WRITE_NS = 25_000
SWAP_READ_NS = 40_000


class SwapDevice:
    """Swap backend + the swap-out/in paths."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        #: Next swap-slot id (a plain int so snapshots can capture it).
        self._next_slot = 1
        self._used_slots: Dict[int, bool] = {}
        kernel.swap = self

    @classmethod
    def install(cls, kernel: "Kernel") -> "SwapDevice":
        return cls(kernel)

    def allocate_slot(self) -> int:
        slot = self._next_slot
        self._next_slot += 1
        self._used_slots[slot] = True
        return slot

    def free_slot(self, slot: int) -> None:
        self._used_slots.pop(slot, None)

    @property
    def slots_in_use(self) -> int:
        return len(self._used_slots)

    # ---- swap out -------------------------------------------------------------------

    def swap_out_pages(self, task: Task, core, vrange: VirtRange) -> Generator:
        """Swap out the present anon pages of ``vrange``; returns the count.

        The PTE change (present -> swap entry) goes through the coherence
        mechanism's migration path; the write-back and frame free are gated
        on its completion.
        """
        kernel = self.kernel
        mm = task.mm
        yield mm.mmap_sem.acquire()
        try:
            victims: List[Tuple[int, int, int]] = []  # (vpn, pfn, slot)
            for vpn in vrange.vpns():
                pte = mm.page_table.walk(vpn)
                if pte is None or not pte.present or pte.cow or pte.huge:
                    continue
                victims.append((vpn, pte.pfn, self.allocate_slot()))
            if not victims:
                return 0

            applied: Dict[int, bool] = {}

            def apply_change(mm=mm, victims=tuple(victims), applied=applied) -> None:
                for vpn, pfn, slot in victims:
                    pte = mm.page_table.walk(vpn)
                    # A racing munmap may have cleared (and lazily freed)
                    # the page already; only swap still-matching mappings.
                    if pte is not None and pte.present and pte.pfn == pfn:
                        mm.page_table.set_pte(vpn, make_swap_pte(slot))
                        applied[vpn] = True

            done = yield from kernel.coherence.migration_unmap(
                core, mm, vrange, apply_change
            )
            # Swap-out PTE rewrites fan out to any page-table replicas;
            # charged here (0 and no extra yield when replication is off).
            replica_work = kernel.drain_replica_work(core, mm)
            if replica_work:
                yield from core.execute(replica_work)
        finally:
            mm.mmap_sem.release()

        kernel.sim.spawn(
            self._finish_swap_out(core, victims, applied, done), name="swap-finisher"
        )
        kernel.stats.counter("swap.outs").add(len(victims))
        return len(victims)

    def _finish_swap_out(self, core, victims, applied, done) -> Generator:
        """After every core invalidated: write pages out, free the frames."""
        kernel = self.kernel
        yield done
        for vpn, pfn, slot in victims:
            if not applied.get(vpn):
                self.free_slot(slot)
                continue
            # The device write displaces CPU time on the initiating core
            # only marginally (DMA); charge the setup cost.
            core.steal_time(1_000)
            yield from self._device_delay(SWAP_WRITE_NS)
            kernel.release_frames([pfn])
            kernel.stats.counter("swap.writes").add()

    # ---- swap in ---------------------------------------------------------------------

    def swap_in(self, core, slot: int) -> Generator:
        """Fault-path swap-in; returns the fresh pfn."""
        kernel = self.kernel
        pfn = kernel.frames.alloc(core.socket)
        yield from core.execute(kernel.machine.latency.page_alloc_ns)
        yield from self._device_delay(SWAP_READ_NS)
        self.free_slot(slot)
        kernel.stats.counter("swap.ins").add()
        return pfn

    @staticmethod
    def _device_delay(ns: int) -> Generator:
        from ..sim.engine import Timeout

        yield Timeout(ns)
