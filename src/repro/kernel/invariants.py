"""Runtime invariant checkers for the paper's correctness argument.

These walk the entire simulated machine state and return a list of
violation strings (empty == healthy). Tests and long-running experiments
call them at quiescent points; the property-based suites call them after
every randomized operation batch.

Checked invariants (DESIGN.md section 6):

1. *Reuse-after-invalidate*: every TLB entry's frame is still allocated and
   has the same free-generation it had when the entry was installed -- i.e.
   no core can translate through a frame that was freed (and possibly
   handed to someone else) since.
2. *Refcount accounting*: each allocated frame's refcount equals the number
   of references we can enumerate (PTE mappings, page-cache residency,
   lazy-list pins).
3. *Virtual reuse*: no VMA overlaps a lazily-freed virtual range.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


def check_tlb_frame_safety(kernel: "Kernel") -> List[str]:
    """Invariant 1: no TLB entry points at a freed or recycled frame."""
    violations = []
    for core in kernel.machine.cores:
        entries = list(core.tlb.items()) + [
            (key, entry) for key, entry in core.tlb.huge_items()
        ]
        for (pcid, vpn), entry in entries:
            if not kernel.frames.is_allocated(entry.pfn):
                violations.append(
                    f"core {core.id}: TLB entry vpn={vpn:#x} pcid={pcid} "
                    f"maps FREED frame {entry.pfn}"
                )
            elif kernel.frames.generation(entry.pfn) != entry.generation:
                violations.append(
                    f"core {core.id}: TLB entry vpn={vpn:#x} pcid={pcid} "
                    f"maps RECYCLED frame {entry.pfn} "
                    f"(gen {entry.generation} -> {kernel.frames.generation(entry.pfn)})"
                )
    return violations


def check_frame_refcounts(kernel: "Kernel") -> List[str]:
    """Invariant 2: enumerable references match the allocator's refcounts.

    Transient slack is possible mid-operation (a fault between alloc and
    set_pte), so call this at quiescent points only.
    """
    from ..mm.addr import HUGE_PAGE_PAGES

    expected: Dict[int, int] = defaultdict(int)
    for mm in kernel.mm_registry.values():
        for _vpn, pte in mm.page_table.all_entries():
            if pte.swapped:
                continue
            if pte.huge:
                for offset in range(HUGE_PAGE_PAGES):
                    expected[pte.pfn + offset] += 1
            else:
                expected[pte.pfn] += 1
        for pfn in mm.lazy_frames:
            expected[pfn] += 1
    for pfn in kernel.page_cache._pages.values():
        expected[pfn] += 1

    violations = []
    for pfn, want in expected.items():
        have = kernel.frames.refcount(pfn)
        if have != want:
            violations.append(f"frame {pfn}: refcount {have}, enumerated {want}")
    return violations


def check_lazy_vrange_isolation(kernel: "Kernel") -> List[str]:
    """Invariant 3: lazily-freed virtual ranges are not re-mapped."""
    violations = []
    for mm in kernel.mm_registry.values():
        for lazy in mm.lazy_vranges:
            for vma in mm.vmas.overlapping(lazy):
                violations.append(
                    f"{mm.name}: vma {vma.range} overlaps lazy range {lazy}"
                )
    return violations


def check_replica_coherence(kernel: "Kernel") -> List[str]:
    """numaPTE invariant: every materialized page-table replica mirrors the
    canonical table exactly (same 4 KiB entries, same huge entries).

    Replica fan-out is applied synchronously with the canonical mutation
    (only the *cost* is deferred into pending-update counts), so there is no
    legal slack: this holds at every instant and is continuous-safe.
    """
    violations = []
    for mm in kernel.mm_registry.values():
        pt = mm.page_table
        replicas = getattr(pt, "_replicas", None)
        if not replicas:
            continue
        canonical = dict(pt.all_entries())
        for node, replica in sorted(replicas.items()):
            mirrored = dict(replica.all_entries())
            if mirrored == canonical:
                continue
            missing = canonical.keys() - mirrored.keys()
            extra = mirrored.keys() - canonical.keys()
            stale = [
                vpn for vpn in canonical.keys() & mirrored.keys()
                if canonical[vpn] != mirrored[vpn]
            ]
            detail = []
            if missing:
                detail.append(f"{len(missing)} missing (e.g. {min(missing):#x})")
            if extra:
                detail.append(f"{len(extra)} extra (e.g. {min(extra):#x})")
            if stale:
                detail.append(f"{len(stale)} stale (e.g. {min(stale):#x})")
            violations.append(
                f"{mm.name}: node-{node} replica diverged from canonical "
                f"table: {', '.join(detail)}"
            )
    return violations


def check_ept_coherence(kernel: "Kernel") -> List[str]:
    """Two-level translation invariant: no host (EPT) entry outlives its
    frame. A stale host entry is the virtualized twin of invariant 1 --
    a guest walk would compose through it into a frame that was freed
    (and possibly handed to another VM) since the entry was installed.

    Host entries are demand-populated with the frame's free-generation
    and must be detached the instant the frame actually frees, so this
    holds at every instant and is continuous-safe.
    """
    violations = []
    for mm in kernel.mm_registry.values():
        host = mm.host_table
        if host is None:
            continue
        for pfn, gfn in host.gfn_of_pfn.items():
            if not kernel.frames.is_allocated(pfn):
                violations.append(
                    f"{mm.name}: host (EPT) entry gfn={gfn:#x} maps FREED "
                    f"frame {pfn}"
                )
            elif kernel.frames.generation(pfn) != host.generation_of_gfn.get(gfn):
                violations.append(
                    f"{mm.name}: host (EPT) entry gfn={gfn:#x} maps RECYCLED "
                    f"frame {pfn} (gen {host.generation_of_gfn.get(gfn)} -> "
                    f"{kernel.frames.generation(pfn)})"
                )
    return violations


def check_no_stale_entries_for(kernel: "Kernel", mm, vrange) -> List[str]:
    """Bounded-staleness helper: assert no core still caches a translation
    for ``vrange`` (call after the staleness bound elapsed)."""
    violations = []
    for core in kernel.machine.cores:
        for (pcid, vpn), entry in core.tlb.items():
            if entry.debug_mm_id != mm.mm_id:
                continue
            if vrange.vpn_start <= vpn < vrange.vpn_end:
                violations.append(
                    f"core {core.id}: stale entry for {mm.name} vpn={vpn:#x}"
                )
    return violations


def check_all(kernel: "Kernel") -> List[str]:
    """Run every quiescent-point invariant."""
    return (
        check_tlb_frame_safety(kernel)
        + check_frame_refcounts(kernel)
        + check_lazy_vrange_isolation(kernel)
        + check_replica_coherence(kernel)
        + check_ept_coherence(kernel)
    )
