"""Tasks and processes.

A :class:`KProcess` owns one address space (MmStruct); its :class:`Task`s
are threads sharing it, each pinned to a home core (the experiments pin
threads the way the paper's benchmarks do, and it keeps the timing model
honest: a task's CPU consumption lands on exactly one core).
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, List, Optional

from ..mm.mmstruct import MmStruct

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Process as SimProcess


class TaskState(enum.Enum):
    NEW = "new"
    RUNNING = "running"
    DONE = "done"


_tids = itertools.count(1)


class Task:
    """One kernel thread."""

    def __init__(self, name: str, mm: MmStruct, home_core_id: int):
        self.tid = next(_tids)
        self.name = name
        self.mm = mm
        self.home_core_id = home_core_id
        self.state = TaskState.NEW
        self.sim_process: Optional["SimProcess"] = None
        mm.users += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Task {self.name} tid={self.tid} core={self.home_core_id}>"


class KProcess:
    """A user process: an address space plus its threads."""

    def __init__(self, name: str, mm: MmStruct):
        self.name = name
        self.mm = mm
        self.tasks: List[Task] = []

    def add_thread(self, name: str, home_core_id: int) -> Task:
        task = Task(f"{self.name}/{name}", self.mm, home_core_id)
        self.tasks.append(task)
        return task

    def core_ids(self) -> List[int]:
        return sorted({t.home_core_id for t in self.tasks})

    def __repr__(self) -> str:  # pragma: no cover
        return f"<KProcess {self.name} threads={len(self.tasks)}>"
