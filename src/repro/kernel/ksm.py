"""KSM-style deduplication: migration-class shootdowns (paper Table 1).

Pages with identical contents (workloads tag frame contents through
``kernel.set_page_content``) are merged onto one canonical frame; the
duplicates' PTEs are rewritten to the canonical frame as read-only CoW
mappings. Rewriting a live PTE is a migration-class operation: under LATR
the rewrite is deferred into a state and the duplicate frame is freed only
after every core invalidated (the completion signal), exactly the paper's
dedup row.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Generator, List, Tuple

from ..mm.addr import VirtRange
from ..mm.pte import Pte, PteFlags
from .task import KProcess

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class KsmDaemon:
    """Background dedup scanner."""

    def __init__(self, kernel: "Kernel", scan_period_ns: int = 50_000_000, daemon_core_id: int = 0):
        self.kernel = kernel
        self.scan_period_ns = scan_period_ns
        self.daemon_core_id = daemon_core_id
        self._registered: List[KProcess] = []
        self._started = False

    @classmethod
    def install(cls, kernel: "Kernel", **kwargs) -> "KsmDaemon":
        daemon = cls(kernel, **kwargs)
        kernel.ksm = daemon
        return daemon

    def register(self, process: KProcess) -> None:
        self._registered.append(process)
        if not self._started:
            self._started = True
            # Periodic generator body: next round starts scan_period_ns
            # after the previous one completes (classic daemon cadence).
            self.kernel.sim.every(self.scan_period_ns, self.scan_once)

    # ---- one scan round -------------------------------------------------------------

    def scan_once(self) -> Generator:
        """Group tagged pages by content and merge duplicates."""
        kernel = self.kernel
        core = kernel.machine.core(self.daemon_core_id)
        groups: Dict[str, List[Tuple[KProcess, int, Pte]]] = defaultdict(list)
        examined = 0
        for process in self._registered:
            for vpn, pte in list(process.mm.page_table.all_entries()):
                if not pte.present or pte.cow or pte.huge:
                    continue
                tag = kernel.page_contents.get(pte.pfn)
                examined += 1
                if tag is not None:
                    groups[tag].append((process, vpn, pte))
        core.steal_time(examined * 250)  # content hashing per page
        kernel.stats.counter("ksm.pages_scanned").add(examined)

        for tag, entries in groups.items():
            distinct_pfns = {pte.pfn for _, _, pte in entries}
            if len(distinct_pfns) < 2:
                continue
            canonical = min(distinct_pfns)
            for process, vpn, pte in entries:
                if pte.pfn == canonical:
                    yield from self._protect_canonical(core, process, vpn, canonical)
                    continue
                yield from self._merge_one(core, process, vpn, pte.pfn, canonical)

    def _protect_canonical(self, core, process: KProcess, vpn: int, canonical: int) -> Generator:
        """Write-protect the canonical mapping itself.

        This is an *ownership* change (Table 1's CoW row): a stale writable
        TLB entry would let a core keep writing a now-shared page, so the
        shootdown must be synchronous even under LATR.
        """
        from ..coherence.base import ShootdownReason

        kernel = self.kernel
        mm = process.mm
        yield mm.mmap_sem.acquire()
        try:
            current = mm.page_table.walk(vpn)
            if current is None or not current.present or current.cow or current.pfn != canonical:
                return
            mm.page_table.update_pte(
                vpn, current.with_flags(add=PteFlags.COW, drop=PteFlags.WRITE)
            )
            vrange = VirtRange.from_pages(vpn, 1)
            yield from kernel.coherence.shootdown_sync(
                core, mm, vrange, ShootdownReason.COW
            )
        finally:
            mm.mmap_sem.release()

    def _merge_one(self, core, process: KProcess, vpn: int, old_pfn: int, canonical: int) -> Generator:
        kernel = self.kernel
        mm = process.mm
        yield mm.mmap_sem.acquire()
        try:
            current = mm.page_table.walk(vpn)
            if current is None or not current.present or current.pfn != old_pfn:
                return  # raced with the application
            kernel.frames.get(canonical)
            replaced = {"ok": False}

            def apply_change(mm=mm, vpn=vpn, old_pfn=old_pfn, canonical=canonical) -> None:
                pte = mm.page_table.walk(vpn)
                # The application may have unmapped or CoW-broken the page
                # between posting and the sweep; only swap a still-matching
                # mapping (KSM re-checks under lock the same way).
                if pte is None or not pte.present or pte.pfn != old_pfn:
                    return
                merged = Pte(
                    pfn=canonical,
                    flags=(pte.flags | PteFlags.COW) & ~PteFlags.WRITE,
                )
                mm.page_table.set_pte(vpn, merged)
                replaced["ok"] = True

            vrange = VirtRange.from_pages(vpn, 1)
            done = yield from kernel.coherence.migration_unmap(
                core, mm, vrange, apply_change
            )
        finally:
            mm.mmap_sem.release()
        kernel.sim.spawn(
            self._free_after(done, old_pfn, canonical, replaced), name="ksm-free"
        )
        kernel.stats.counter("ksm.pages_merged").add()

    def _free_after(self, done, old_pfn: int, canonical: int, replaced) -> Generator:
        yield done
        if replaced["ok"]:
            # The duplicate's mapping reference moved to the canonical frame.
            self.kernel.release_frames([old_pfn])
            self.kernel.stats.counter("ksm.frames_freed").add()
        else:
            # Merge aborted: give back the canonical reference we took.
            self.kernel.release_frames([canonical])
