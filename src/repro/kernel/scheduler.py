"""Scheduler: per-core ticks, context switches, idle (lazy-TLB) state.

LATR's staleness bound comes from here: every *running* core receives a
scheduler tick each ``tick_interval`` (1 ms), and the coherence mechanism's
``on_tick`` hook fires then. Tick phases are deterministically staggered
across cores -- the paper's reclamation rule (wait *two* intervals) exists
precisely because ticks are not synchronized.

Idle cores are tickless (paper section 7): they neither sweep nor receive
shootdown IPIs; a full TLB flush on wake restores safety.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional

from ..sim.resources import Lock
from .task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class Scheduler:
    """Owns core occupancy and drives periodic coherence work."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        machine = kernel.machine
        self.tick_interval = machine.spec.tick_interval_ns
        #: Serializes task execution per core (cooperative multiplexing at
        #: request/operation granularity).
        self._cpu_locks: Dict[int, Lock] = {
            core.id: Lock(kernel.sim, name=f"cpu{core.id}") for core in machine.cores
        }
        #: Optional per-core tick-phase override (core id -> offset ns within
        #: the tick interval). The coherence fuzzer randomizes these; when
        #: unset, phases are deterministically staggered.
        self.tick_offsets: Optional[Dict[int, int]] = None
        self._started = False

    # ---- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Register one periodic tick per core, with staggered phases."""
        if self._started:
            return
        self._started = True
        self._ticks = self.kernel.stats.counter("sched.ticks")
        self._ticks_idle_skipped = self.kernel.stats.counter("sched.ticks_idle_skipped")
        # Cache the object, not the bound method: tests (and tracing
        # wrappers) monkeypatch ``coherence.on_tick`` after start().
        self._coherence = self.kernel.coherence
        n = self.kernel.machine.n_cores
        for core in self.kernel.machine.cores:
            offset = (core.id * self.tick_interval) // max(1, n)
            if self.tick_offsets is not None:
                offset = self.tick_offsets.get(core.id, offset) % self.tick_interval
            # First tick at the stagger offset, then every interval: every
            # core ticks within one interval of any instant, which is the
            # staleness bound LATR's reclamation delay is derived from.
            self.kernel.sim.every(self.tick_interval, self._tick, core, start=offset)

    def _tick(self, core) -> None:
        self._ticks.value += 1
        if core.idle and core.lazy_tlb_mode:
            # Tickless idle: no sweep, no tick work.
            self._ticks_idle_skipped.value += 1
        else:
            self._coherence.on_tick(core)

    # ---- placement --------------------------------------------------------------

    def place(self, task: Task, core=None) -> None:
        """Initial (or migration) placement of a task onto its home core."""
        core = core if core is not None else self.kernel.machine.core(task.home_core_id)
        task.state = TaskState.RUNNING
        if core.idle:
            core.exit_idle(task)
        else:
            core.current_task = task
        task.mm.mark_running_on(core.id)

    def task_exit(self, task: Task) -> None:
        task.state = TaskState.DONE
        core = self.kernel.machine.core(task.home_core_id)
        if core.current_task is task:
            core.enter_idle()

    # ---- cooperative multiplexing -------------------------------------------------

    def run_on(self, core, task: Task, body: Generator) -> Generator:
        """Run ``body`` on ``core`` as ``task``, serializing against other
        tasks of that core and charging a context switch when the core's
        resident task changes.

        Usage: ``result = yield from scheduler.run_on(core, task, gen)``.
        """
        lock = self._cpu_locks[core.id]
        yield lock.acquire()
        try:
            yield from self._maybe_switch(core, task)
            result = yield from body
            return result
        finally:
            lock.release()

    def _maybe_switch(self, core, task: Task) -> Generator:
        previous = core.current_task
        if previous is task:
            return
        old_mm = previous.mm if previous is not None else None
        if core.idle:
            core.exit_idle(task)
        core.current_task = task
        task.mm.mark_running_on(core.id)
        if previous is not None:
            self.kernel.stats.counter("sched.context_switches").add()
            if old_mm is not task.mm:
                if not self.kernel.machine.pcid_enabled:
                    # Without PCIDs the switch flushes everything; the old
                    # mm can drop this core from its cpumask.
                    core.tlb.flush()
                    if old_mm is not None:
                        old_mm.clear_cpu(core.id)
            self.kernel.coherence.on_context_switch(core, old_mm, task.mm)
            yield from core.execute(self.kernel.machine.latency.context_switch_ns)
        else:
            yield from core.execute(0)

    def synthetic_context_switch(self, core) -> None:
        """Account a context switch that isn't modelled as a task change
        (workload profiles with known switch rates, e.g. canneal)."""
        self.kernel.stats.counter("sched.context_switches").add()
        core.steal_time(self.kernel.machine.latency.context_switch_ns)
        current_mm = core.current_task.mm if core.current_task else None
        self.kernel.coherence.on_context_switch(core, current_mm, current_mm)

    def cpu_lock(self, core_id: int) -> Lock:
        return self._cpu_locks[core_id]
