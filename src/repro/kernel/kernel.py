"""Kernel facade: wires machine, memory, scheduler, and coherence together.

A :class:`Kernel` is one bootable simulated system. Experiments construct
one per (machine, mechanism) pair, create processes/threads through it, and
read results from ``kernel.stats``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..coherence.base import TLBCoherence
from ..hw.machine import Machine
from ..mm.frames import FrameAllocator
from ..mm.mmstruct import MmStruct
from ..mm.pagecache import PageCache
from ..sim.engine import Simulator
from ..sim.rng import RngStreams
from .scheduler import Scheduler
from .task import KProcess, Task

#: Default physical memory per NUMA node, in frames (256 MiB); workloads
#: are sized well below this so allocation never becomes the bottleneck
#: unless an experiment wants it to (the swap tests shrink it).
DEFAULT_FRAMES_PER_NODE = 65_536


class Kernel:
    """The simulated operating system."""

    def __init__(
        self,
        machine: Machine,
        coherence: TLBCoherence,
        frames_per_node: int = DEFAULT_FRAMES_PER_NODE,
        seed: int = 1,
        use_batched_faults: Optional[bool] = None,
    ):
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.stats = machine.stats
        self.coherence = coherence
        #: Escape hatch for the flat touch_pages fault path (default on);
        #: False routes every touch through the generic per-page handler.
        self.use_batched_faults = True if use_batched_faults is None else use_batched_faults
        self.frames = FrameAllocator(machine.spec.sockets, frames_per_node)
        self.page_cache = PageCache(self.frames)
        self.scheduler = Scheduler(self)
        self.rng = RngStreams(seed)
        #: pcid -> MmStruct, for invariant checkers and PCID handling.
        self.mm_registry: Dict[int, MmStruct] = {}
        self.processes: List[KProcess] = []
        #: pfn -> content tag, maintained by workloads that want KSM/dedup
        #: to find identical pages.
        self.page_contents: Dict[int, str] = {}
        #: Optional services, installed via their .install(kernel) hooks.
        self.autonuma = None
        self.swap = None
        self.ksm = None
        self.compactor = None
        self.khugepaged = None
        #: Optional structured event tracer (repro.sim.trace.Tracer).
        self.tracer = None
        #: Optional continuous invariant monitor (repro.verify.InvariantMonitor):
        #: when attached, the coherence/mm paths call ``notify`` after every
        #: sweep, reclaim, IPI round, PTE change, and frame free.
        self.invariant_monitor = None

        coherence.attach(self)

        # Import here to avoid a cycle (these modules need Kernel for typing).
        from .pagefault import PageFaultHandler
        from .syscalls import Syscalls

        self.fault_handler = PageFaultHandler(self)
        self.syscalls = Syscalls(self)

        self._started = False

    # ---- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Boot: start scheduler ticks and mechanism background threads."""
        if self._started:
            return
        self._started = True
        self.scheduler.start()
        self.coherence.start()

    # ---- processes -------------------------------------------------------------

    def create_process(self, name: str) -> KProcess:
        mm = MmStruct(self.sim, name=name)
        self.mm_registry[mm.pcid] = mm
        proc = KProcess(name, mm)
        self.processes.append(proc)
        if self.invariant_monitor is not None:
            self.invariant_monitor.watch_mm(mm)
        return proc

    def spawn_thread(self, process: KProcess, name: str, core_id: int) -> Task:
        """Create a thread pinned to ``core_id`` and place it."""
        task = process.add_thread(name, core_id)
        self.scheduler.place(task)
        return task

    def mm_of_pcid(self, pcid: int) -> Optional[MmStruct]:
        return self.mm_registry.get(pcid)

    # ---- memory services ----------------------------------------------------------

    def release_frames(self, pfns: Iterable[int]) -> None:
        """Drop the mapping reference of each frame (frees at refcount 0)."""
        any_freed = False
        for pfn in pfns:
            freed = self.frames.put(pfn)
            if freed:
                any_freed = True
                self.page_contents.pop(pfn, None)
        if any_freed and self.invariant_monitor is not None:
            # The instant a frame returns to the allocator is exactly when a
            # still-cached translation becomes a use-after-free window.
            self.invariant_monitor.notify("frame.free")

    def set_page_content(self, pfn: int, tag: str) -> None:
        """Workload hook: tag a frame's contents (drives KSM dedup)."""
        self.page_contents[pfn] = tag

    # ---- convenience ----------------------------------------------------------------

    def core_of(self, task: Task):
        return self.machine.core(task.home_core_id)

    def run(self, until: int) -> None:
        """Advance the simulation to absolute time ``until`` (ns)."""
        self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Kernel {self.machine.spec.name} mechanism={self.coherence.name} "
            f"procs={len(self.processes)}>"
        )
