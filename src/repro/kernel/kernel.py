"""Kernel facade: wires machine, memory, scheduler, and coherence together.

A :class:`Kernel` is one bootable simulated system. Experiments construct
one per (machine, mechanism) pair, create processes/threads through it, and
read results from ``kernel.stats``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..coherence.base import TLBCoherence
from ..hw.machine import Machine
from ..mm.frames import FrameAllocator
from ..mm.mmstruct import MmStruct
from ..mm.pagecache import PageCache
from ..mm.pagetable import LEVELS, ReplicatedPageTable
from ..mm.pte import PteFlags
from ..sim.engine import Simulator
from ..sim.rng import RngStreams
from .scheduler import Scheduler
from .task import KProcess, Task

#: Default physical memory per NUMA node, in frames (256 MiB); workloads
#: are sized well below this so allocation never becomes the bottleneck
#: unless an experiment wants it to (the swap tests shrink it).
DEFAULT_FRAMES_PER_NODE = 65_536


class Kernel:
    """The simulated operating system."""

    def __init__(
        self,
        machine: Machine,
        coherence: TLBCoherence,
        frames_per_node: int = DEFAULT_FRAMES_PER_NODE,
        seed: int = 1,
        use_batched_faults: Optional[bool] = None,
        use_pt_replication: Optional[bool] = None,
        use_frame_slabs: Optional[bool] = None,
        use_virtualization: Optional[bool] = None,
    ):
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.stats = machine.stats
        self.coherence = coherence
        #: Escape hatch for the flat touch_pages fault path (default on);
        #: False routes every touch through the generic per-page handler.
        self.use_batched_faults = True if use_batched_faults is None else use_batched_faults
        #: NUMA-aware page-table placement modelling (numaPTE). ``None``
        #: asks the mechanism (only numaPTE wants it); off preserves
        #: today's flat single-table behavior bit-identically. When on,
        #: hardware walks charge hop-aware latency for remote tables and,
        #: if the mechanism replicates (``wants_pt_replicas``), every mm
        #: gets one page-table replica per node behind the facade.
        self.use_pt_replication = (
            coherence.wants_pt_replicas if use_pt_replication is None else use_pt_replication
        )
        self.pt_replicas_enabled = self.use_pt_replication and coherence.wants_pt_replicas
        #: Node the single shared table (or the canonical replica) lives on.
        self.pt_home_node = 0
        #: (writer_node, replica_node) -> per-entry update cost ns memo.
        self._pt_update_costs: Dict[tuple, int] = {}
        #: Two-level (EPT/NPT) translation: processes become VM tasks whose
        #: guest tables sit over a gPA->hPA host table, hardware walks pay
        #: 2D step costs, and guest-visible frees additionally invalidate
        #: the host level. Off (the default) is byte-identical to the flat
        #: model: no host tables exist, every added charge is 0, and no
        #: virt counter is ever touched.
        self.use_virtualization = bool(use_virtualization)
        #: pfn -> {mm_id: MmStruct} reverse map of host-table (EPT) entries,
        #: so a frame free can find every host translation to invalidate.
        #: Insertion-ordered for determinism.
        self._ept_rmap: Dict[int, Dict[int, MmStruct]] = {}
        #: Extra ns a 2D walk adds over the native walk (4-level over
        #: 4-level unless a hugepage short-circuits a level).
        self._twod_extra = machine.latency.twod_walk_extra(LEVELS, LEVELS)
        self._twod_extra_huge = machine.latency.twod_walk_extra(LEVELS - 1, LEVELS)
        self.frames = FrameAllocator(
            machine.spec.sockets, frames_per_node, use_slabs=use_frame_slabs
        )
        self.page_cache = PageCache(self.frames)
        if self.use_virtualization:
            # An eviction that actually frees a cached frame must drop its
            # host (EPT) translations too; flat runs leave the hook unset.
            self.page_cache.on_free = self._ept_detach
        self.scheduler = Scheduler(self)
        self.rng = RngStreams(seed)
        #: pcid -> MmStruct, for invariant checkers and PCID handling.
        self.mm_registry: Dict[int, MmStruct] = {}
        self.processes: List[KProcess] = []
        #: pfn -> content tag, maintained by workloads that want KSM/dedup
        #: to find identical pages.
        self.page_contents: Dict[int, str] = {}
        #: Optional services, installed via their .install(kernel) hooks.
        self.autonuma = None
        self.swap = None
        self.ksm = None
        self.compactor = None
        self.khugepaged = None
        #: Optional structured event tracer (repro.sim.trace.Tracer).
        self.tracer = None
        #: Optional continuous invariant monitor (repro.verify.InvariantMonitor):
        #: when attached, the coherence/mm paths call ``notify`` after every
        #: sweep, reclaim, IPI round, PTE change, and frame free.
        self.invariant_monitor = None

        coherence.attach(self)

        # Import here to avoid a cycle (these modules need Kernel for typing).
        from .pagefault import PageFaultHandler
        from .syscalls import Syscalls

        self.fault_handler = PageFaultHandler(self)
        self.syscalls = Syscalls(self)

        self._started = False

    # ---- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Boot: start scheduler ticks and mechanism background threads."""
        if self._started:
            return
        self._started = True
        self.scheduler.start()
        self.coherence.start()

    # ---- processes -------------------------------------------------------------

    def create_process(self, name: str, virtualized: Optional[bool] = None) -> KProcess:
        if virtualized is None:
            virtualized = self.use_virtualization
        mm = MmStruct(
            self.sim,
            name=name,
            pt_nodes=self.machine.spec.sockets if self.pt_replicas_enabled else None,
            pt_home_node=self.pt_home_node,
            virtualized=virtualized,
        )
        self.mm_registry[mm.pcid] = mm
        proc = KProcess(name, mm)
        self.processes.append(proc)
        if self.invariant_monitor is not None:
            self.invariant_monitor.watch_mm(mm)
        return proc

    def spawn_thread(self, process: KProcess, name: str, core_id: int) -> Task:
        """Create a thread pinned to ``core_id`` and place it."""
        task = process.add_thread(name, core_id)
        self.scheduler.place(task)
        return task

    def mm_of_pcid(self, pcid: int) -> Optional[MmStruct]:
        return self.mm_registry.get(pcid)

    # ---- memory services ----------------------------------------------------------

    def release_frames(self, pfns: Iterable[int]) -> None:
        """Drop the mapping reference of each frame (frees at refcount 0)."""
        if self.frames.use_slabs:
            freed_pfns = self.frames.free_batch(pfns)
            any_freed = bool(freed_pfns)
            page_contents = self.page_contents
            for pfn in freed_pfns:
                page_contents.pop(pfn, None)
        else:
            any_freed = False
            freed_pfns = []
            for pfn in pfns:
                freed = self.frames.put(pfn)
                if freed:
                    any_freed = True
                    freed_pfns.append(pfn)
                    self.page_contents.pop(pfn, None)
        if freed_pfns and self._ept_rmap:
            # Only once a frame actually frees (refcount 0) do its host
            # translations go stale: a CoW/shared drop keeps them valid.
            for pfn in freed_pfns:
                self._ept_detach(pfn)
        if any_freed and self.invariant_monitor is not None:
            # The instant a frame returns to the allocator is exactly when a
            # still-cached translation becomes a use-after-free window.
            self.invariant_monitor.notify("frame.free")

    def set_page_content(self, pfn: int, tag: str) -> None:
        """Workload hook: tag a frame's contents (drives KSM dedup)."""
        self.page_contents[pfn] = tag

    # ---- NUMA-aware page-table placement (numaPTE) ----------------------------------

    def pt_walk_table(self, core, mm: MmStruct):
        """Table a hardware walk from ``core`` descends, plus the extra ns
        per walk its placement costs: ``(table, extra_ns)``.

        With ``use_pt_replication`` off this is the shared table at zero
        extra -- the flat model, exactly as before. On: a replicated mm
        returns the core's *local* replica (materialized on first use) at
        zero extra; a single-table mm charges the hop distance to the
        table's home node. Batched fault paths hoist this per batch.
        """
        pt = mm.page_table
        if not self.use_pt_replication:
            return pt, 0
        node = core.socket
        if isinstance(pt, ReplicatedPageTable):
            return pt.local_table(node), 0
        table_node = self.pt_home_node
        if table_node == node:
            return pt, 0
        return pt, self.machine.interconnect.pt_walk_cost(node, table_node)

    def note_pt_walks(self, n: int, extra_ns: int) -> None:
        """Count ``n`` hardware walks that each paid ``extra_ns`` for
        table placement (no-op with replication off -- the flat model
        keeps its counter set unchanged). Feeds the numapte experiment."""
        if not self.use_pt_replication or n <= 0:
            return
        if extra_ns:
            self.stats.counter("pt.walk.remote").add(n)
            self.stats.counter("pt.walk.remote_ns").add(n * extra_ns)
        else:
            self.stats.counter("pt.walk.local").add(n)

    def pt_hw_walk(self, core, mm: MmStruct, vpn: int):
        """One counted hardware walk: ``(pte, extra_ns)``.

        For a VM task the walk is two-dimensional: every guest level pays
        a host walk, so ``extra`` additionally carries the 2D step cost
        (a guest hugepage short-circuits one guest level)."""
        table, extra = self.pt_walk_table(core, mm)
        self.note_pt_walks(1, extra)
        pte = table.walk(vpn)
        if self.use_virtualization and mm.host_table is not None:
            twod = (
                self._twod_extra_huge
                if pte is not None and pte.flags & PteFlags.HUGE
                else self._twod_extra
            )
            self.note_2d_walks(1, twod)
            extra += twod
        return pte, extra

    def drain_replica_work(self, core, mm: MmStruct) -> int:
        """Hop-aware ns of pending replica fan-out work for ``mm``.

        The facade counts entry updates per replica node at mutation
        time; this converts the counts into nanoseconds against the
        charging core and resets them. Always 0 (with no side effects)
        when replication is off, so call sites can add it into existing
        ``core.execute`` sums without changing event schedules.
        """
        if not self.pt_replicas_enabled:
            return 0
        pt = mm.page_table
        if not isinstance(pt, ReplicatedPageTable):
            return 0
        pending = pt.take_pending_updates()
        if not pending:
            return 0
        node = core.socket
        # Node pairs recur on every drain; memoize the (deterministic)
        # per-entry hop cost instead of re-deriving it each time.
        costs = self._pt_update_costs
        total = 0
        entries = 0
        for replica_node, n_updates in pending:
            cost = costs.get((node, replica_node))
            if cost is None:
                cost = costs[(node, replica_node)] = (
                    self.machine.interconnect.pt_replica_update_cost(node, replica_node)
                )
            total += n_updates * cost
            entries += n_updates
        self.stats.counter("pt.replica.updates").add(entries)
        self.stats.counter("pt.replica.update_ns").add(total)
        return total

    # ---- two-level translation (EPT/NPT virtualization) ------------------------------

    def ept_fill(self, mm: MmStruct, pfn: int) -> int:
        """Demand-populate the host (EPT) entry backing ``pfn`` for a VM
        task's mm; returns the EPT-violation exit cost (0 when the entry
        already exists, or with virtualization off -- flat model exact).

        Called wherever a guest translation is installed: the first guest
        access to a frame takes an EPT violation, the hypervisor fills the
        gPA->hPA entry, and later guest walks hit it (paying only the 2D
        step cost).
        """
        if not self.use_virtualization:
            return 0
        host = mm.host_table
        if host is None:
            return 0
        if not host.populate(pfn, self.frames.generation(pfn)):
            return 0
        self._ept_rmap.setdefault(pfn, {})[mm.mm_id] = mm
        self.stats.counter("virt.ept.populations").add()
        return self.machine.latency.ept_violation_fill_ns

    def _ept_detach(self, pfn: int) -> int:
        """Drop every host-table (EPT) entry translating to ``pfn``; called
        the instant the frame actually frees. Returns entries dropped."""
        mms = self._ept_rmap.pop(pfn, None)
        if not mms:
            return 0
        dropped = 0
        for mm in mms.values():
            if mm.host_table is not None and mm.host_table.invalidate_pfn(pfn) is not None:
                dropped += 1
        return dropped

    def twod_walk_extra_ns(self, mm: MmStruct) -> int:
        """Extra ns a hardware walk of ``mm`` pays for two-dimensional
        (guest-over-host) translation; 0 for native mms or with the
        escape hatch off. Batched fault paths hoist this per batch."""
        if not self.use_virtualization or mm.host_table is None:
            return 0
        return self._twod_extra

    def note_2d_walks(self, n: int, extra_ns: int) -> None:
        """Count ``n`` two-dimensional hardware walks charged ``extra_ns``
        each (no-op when that extra is 0, so the flat model's counter set
        is untouched)."""
        if n <= 0 or extra_ns <= 0:
            return
        self.stats.counter("virt.walk.2d").add(n)
        self.stats.counter("virt.walk.2d_ns").add(n * extra_ns)

    def host_invalidation_work(self, core, mm: MmStruct, n_entries: int) -> int:
        """Synchronous ns of host-level (EPT) invalidation for a guest
        munmap/madvise clearing ``n_entries`` translations; 0 for native
        mms and with virtualization off, so call sites can fold it into
        existing ``core.execute`` sums without changing event schedules.

        Dispatch on the mechanism's ``host_invalidation`` policy:

        * ``"sync"`` (default, virtualized Linux): per-entry EPT upkeep
          plus an INVEPT kick to *every* vCPU the VM has run on -- the
          shootdown-cost explosion of Yan et al.
        * ``"snoop"`` (HATRIC): translation-coherence hardware snoops the
          host-table updates through the cache fabric; per-entry cost
          only, no vCPU kicks, no VM exits.
        * ``"lazy"`` (LATR): the host invalidation rides the lazy reclaim
          like the guest one -- a state write on the critical path, the
          per-entry upkeep stolen off it.
        """
        if not self.use_virtualization or n_entries <= 0:
            return 0
        if mm.host_table is None:
            return 0
        lat = self.machine.latency
        policy = self.coherence.host_invalidation
        if policy == "snoop":
            cost = n_entries * lat.hatric_snoop_entry_ns
        elif policy == "lazy":
            deferred = n_entries * lat.ept_inval_entry_ns
            core.steal_time(deferred)
            self.stats.counter("virt.host_inval.deferred_ns").add(deferred)
            cost = lat.latr_state_write_ns
        else:  # "sync"
            cost = n_entries * lat.ept_inval_entry_ns + lat.ept_invept_vcpu(0)
            topo = self.machine.topology
            for hops, count in topo.sharer_hop_counts(core.id, mm.cpumask).items():
                cost += count * lat.ept_invept_vcpu(hops)
        self.stats.counter("virt.host_inval.entries").add(n_entries)
        self.stats.counter("virt.host_inval.ns").add(cost)
        return cost

    # ---- convenience ----------------------------------------------------------------

    def core_of(self, task: Task):
        return self.machine.core(task.home_core_id)

    def run(self, until: int) -> None:
        """Advance the simulation to absolute time ``until`` (ns)."""
        self.sim.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Kernel {self.machine.spec.name} mechanism={self.coherence.name} "
            f"procs={len(self.processes)}>"
        )
