"""OS substrate: kernel facade, scheduler, syscalls, daemons."""

from .autonuma import AutoNuma
from .compaction import Compactor
from .invariants import (
    check_all,
    check_frame_refcounts,
    check_lazy_vrange_isolation,
    check_no_stale_entries_for,
    check_tlb_frame_safety,
)
from .kernel import DEFAULT_FRAMES_PER_NODE, Kernel
from .ksm import KsmDaemon
from .pagefault import PageFaultHandler
from .scheduler import Scheduler
from .swapd import SwapDevice
from .syscalls import Syscalls
from .task import KProcess, Task, TaskState
from .thp import Khugepaged

__all__ = [
    "AutoNuma",
    "Compactor",
    "DEFAULT_FRAMES_PER_NODE",
    "Kernel",
    "Khugepaged",
    "KProcess",
    "KsmDaemon",
    "PageFaultHandler",
    "Scheduler",
    "SwapDevice",
    "Syscalls",
    "Task",
    "TaskState",
    "check_all",
    "check_frame_refcounts",
    "check_lazy_vrange_isolation",
    "check_no_stale_entries_for",
    "check_tlb_frame_safety",
]
