"""Virtual-memory syscalls: mmap, munmap, madvise, mprotect, mremap, fork.

The munmap()/madvise() paths are the paper's Figure 2: clear PTEs, collect
the freed frames, invalidate locally, then hand the remote problem to the
coherence mechanism -- synchronous IPI round (Linux) or a 132 ns state
write (LATR). ``mmap_sem`` is held across the whole thing, which is what
couples shootdown latency to address-space operation *throughput* in the
Apache experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from ..coherence.base import ShootdownReason
from ..hw.tlb import TlbEntry, entry_pfn, entry_writable
from ..mm.addr import PAGE_SIZE, VirtRange, page_align_up, vpn_of
from ..mm.fault import FaultResult, SegmentationFault
from ..mm.pte import Pte, PteFlags, make_present_pte
from ..mm.vma import Prot, Vma, VmaKind
from .task import KProcess, Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class Syscalls:
    """The VM syscall surface workloads program against."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel

    @property
    def _lat(self):
        return self.kernel.machine.latency

    # ---- mmap ---------------------------------------------------------------------

    def mmap(
        self,
        task: Task,
        core,
        n_bytes: int,
        prot: Prot = Prot.READ | Prot.WRITE,
        kind: VmaKind = VmaKind.ANON,
        file_key: Optional[str] = None,
        file_offset: int = 0,
        populate: bool = False,
        huge: bool = False,
    ) -> Generator:
        """Map a fresh range; returns its :class:`VirtRange`.

        ``huge`` requests 2 MiB mappings (MAP_HUGETLB-style): the range is
        2 MiB-aligned/sized and faults install PD-level entries backed by
        contiguous frames (falling back to 4 KiB when memory is
        fragmented, like THP)."""
        from ..mm.addr import HUGE_PAGE_SIZE

        lat = self._lat
        mm = task.mm
        if kind is VmaKind.FILE and file_key is None:
            raise ValueError("FILE mapping needs a file_key")
        if huge and kind is not VmaKind.ANON:
            raise ValueError("huge mappings are anonymous only")
        yield from core.execute(lat.syscall_overhead_ns)
        yield mm.mmap_sem.acquire()
        try:
            yield from core.execute(lat.vma_op_ns)
            if huge:
                size = -(-page_align_up(n_bytes) // HUGE_PAGE_SIZE) * HUGE_PAGE_SIZE
                vrange = mm.find_free_range(size, alignment=HUGE_PAGE_SIZE)
            else:
                vrange = mm.find_free_range(page_align_up(n_bytes))
            mm.vmas.insert(
                Vma(
                    range=vrange,
                    prot=prot,
                    kind=kind,
                    file_key=file_key,
                    file_offset=file_offset,
                    huge=huge,
                )
            )
            mm.bump_generation()
        finally:
            mm.mmap_sem.release()
        self.kernel.stats.counter("sys.mmap").add()
        if populate:
            yield from self.touch_pages(task, core, vrange, write=bool(prot & Prot.WRITE))
        return vrange

    # ---- free operations (Table 1, lazy possible) -----------------------------------

    def munmap(self, task: Task, core, vrange: VirtRange) -> Generator:
        """Unmap a range; Figure 2's critical path."""
        yield from self._free_operation(task, core, vrange, remove_vma=True)
        self.kernel.stats.counter("sys.munmap").add()

    def madvise_dontneed(self, task: Task, core, vrange: VirtRange) -> Generator:
        """MADV_DONTNEED/MADV_FREE: drop pages, keep the VMA."""
        yield from self._free_operation(task, core, vrange, remove_vma=False)
        self.kernel.stats.counter("sys.madvise").add()

    def _free_operation(self, task: Task, core, vrange: VirtRange, remove_vma: bool) -> Generator:
        kernel = self.kernel
        lat = self._lat
        mm = task.mm
        start = kernel.sim.now

        yield from core.execute(lat.syscall_overhead_ns)
        yield mm.mmap_sem.acquire()
        try:
            yield from core.execute(lat.vma_op_ns)
            if remove_vma:
                removed = mm.vmas.remove_range(vrange)
                if not removed:
                    kernel.stats.counter("sys.munmap_empty").add()

            from ..mm.addr import HUGE_PAGE_PAGES, huge_base_vpn
            from ..mm.frames import FrameBatch

            pfns = FrameBatch()
            pfns.free_units = 0
            pte_work = 0
            cleared_entries = 0
            # Huge mappings first: one PD-level clear releases 512 frames
            # (partially-covered huge mappings would need a THP split,
            # which we don't model -- unmap them whole). A compound page
            # frees as a few buddy operations, not 512.
            for base_vpn, hpte in list(mm.page_table.huge_in_range(vrange)):
                mm.page_table.clear_huge_pte(base_vpn)
                pte_work += lat.pte_clear_ns
                cleared_entries += 1
                pfns.extend(range(hpte.pfn, hpte.pfn + HUGE_PAGE_PAGES))
                pfns.free_units += 8
            for vpn in vrange.vpns():
                pte = mm.page_table.walk(vpn)
                if pte is None:
                    continue
                if pte.huge:
                    raise ValueError(
                        f"munmap splits huge mapping at vpn {huge_base_vpn(vpn):#x}; "
                        "unmap the whole 2MiB range"
                    )
                mm.page_table.clear_pte(vpn)
                pte_work += lat.pte_clear_ns
                cleared_entries += 1
                if pte.swapped:
                    swap = getattr(kernel, "swap", None)
                    if swap is not None:
                        swap.free_slot(pte.swap_slot)
                    continue
                pfns.append(pte.pfn)
                pfns.free_units += 1
            mm.bump_generation()

            # Reverse-map / mm-wide bookkeeping scales with the cores the
            # address space is live on; remote sharers bounce cachelines
            # across QPI (this is what keeps LATR's 120-core munmap at
            # ~40 us in Figure 7 while Linux pays IPIs on top).
            topo = kernel.machine.topology
            sharer_work = sum(
                lat.rmap_per_sharer(hops) * count
                for hops, count in topo.sharer_hop_counts(
                    core.id, mm.cpumask
                ).items()
            )
            # A VM task's free is nested: after the guest-side PTE clears,
            # the hypervisor must invalidate the host (EPT) level too --
            # synchronously (virtualized Linux's INVEPT-per-vCPU explosion),
            # by hardware snoop (HATRIC), or lazily (LATR). Exactly 0 with
            # virtualization off.
            yield from core.execute(
                pte_work + sharer_work + kernel.drain_replica_work(core, mm)
                + kernel.host_invalidation_work(core, mm, cleared_entries)
            )

            vrange_to_free = vrange if remove_vma else None
            yield from kernel.coherence.shootdown_free(
                core, mm, vrange, pfns, vrange_to_free
            )
        finally:
            mm.mmap_sem.release()
        op = "munmap" if remove_vma else "madvise"
        kernel.stats.latency(op).record(kernel.sim.now - start)

    # ---- synchronous classes (Table 1, lazy NOT possible) -----------------------------

    def mprotect(self, task: Task, core, vrange: VirtRange, new_prot: Prot) -> Generator:
        """Permission change: PTE updates visible system-wide at return."""
        kernel = self.kernel
        lat = self._lat
        mm = task.mm
        start = kernel.sim.now
        yield from core.execute(lat.syscall_overhead_ns)
        yield mm.mmap_sem.acquire()
        try:
            yield from core.execute(lat.vma_op_ns)
            for vma in mm.vmas.overlapping(vrange):
                self._split_to_fit(mm, vma, vrange)
            for vma in mm.vmas.overlapping(vrange):
                vma.prot = new_prot
            pte_work = 0
            for vpn, pte in list(mm.page_table.entries_in_range(vrange)):
                if not pte.present:
                    continue
                if new_prot & Prot.WRITE:
                    updated = pte.with_flags(add=PteFlags.WRITE)
                else:
                    updated = pte.with_flags(drop=PteFlags.WRITE)
                mm.page_table.update_pte(vpn, updated)
                pte_work += lat.pte_set_ns
            mm.bump_generation()
            yield from core.execute(pte_work + kernel.drain_replica_work(core, mm))
            yield from kernel.coherence.shootdown_sync(
                core, mm, vrange, ShootdownReason.MPROTECT
            )
        finally:
            mm.mmap_sem.release()
        kernel.stats.counter("sys.mprotect").add()
        kernel.stats.latency("mprotect").record(kernel.sim.now - start)

    def mremap(self, task: Task, core, old: VirtRange, new_n_bytes: int) -> Generator:
        """Move a mapping; returns the new range. Synchronous shootdown of
        the old range -- stale entries would alias the *moved* physical
        pages, so laziness is impossible (Table 1)."""
        kernel = self.kernel
        lat = self._lat
        mm = task.mm
        yield from core.execute(lat.syscall_overhead_ns)
        yield mm.mmap_sem.acquire()
        try:
            yield from core.execute(lat.vma_op_ns)
            pieces = mm.vmas.remove_range(old)
            if not pieces:
                raise SegmentationFault(old.start)
            template = pieces[0]
            new_range = mm.find_free_range(page_align_up(new_n_bytes))
            mm.vmas.insert(
                Vma(
                    range=new_range,
                    prot=template.prot,
                    kind=template.kind,
                    file_key=template.file_key,
                    file_offset=template.file_offset,
                )
            )
            pte_work = 0
            for offset, vpn in enumerate(old.vpns()):
                pte = mm.page_table.walk(vpn)
                if pte is None:
                    continue
                mm.page_table.clear_pte(vpn)
                new_vpn = new_range.vpn_start + offset
                if new_vpn < new_range.vpn_end:
                    mm.page_table.set_pte(new_vpn, pte)
                elif not pte.swapped:
                    kernel.release_frames([pte.pfn])
                pte_work += lat.pte_clear_ns + lat.pte_set_ns
            mm.bump_generation()
            yield from core.execute(pte_work + kernel.drain_replica_work(core, mm))
            yield from kernel.coherence.shootdown_sync(
                core, mm, old, ShootdownReason.MREMAP
            )
            mm.release_vrange(old)
        finally:
            mm.mmap_sem.release()
        kernel.stats.counter("sys.mremap").add()
        return new_range

    @staticmethod
    def _split_to_fit(mm, vma: Vma, vrange: VirtRange) -> None:
        """Split ``vma`` so no piece straddles ``vrange``'s boundaries."""
        if vma.start < vrange.start < vma.end:
            mm.vmas._remove_vma(vma)
            tail = vma.split_at(vrange.start)
            mm.vmas.insert(vma)
            mm.vmas.insert(tail)
            vma = tail
        if vma.start < vrange.end < vma.end:
            mm.vmas._remove_vma(vma)
            tail = vma.split_at(vrange.end)
            mm.vmas.insert(vma)
            mm.vmas.insert(tail)

    # ---- fork (CoW setup) ---------------------------------------------------------

    def fork(self, task: Task, core, child_name: str) -> Generator:
        """Clone the address space copy-on-write; returns the child KProcess.

        Write-protecting the parent's pages is an ownership change, so every
        VMA gets a synchronous shootdown (Table 1's CoW row).
        """
        kernel = self.kernel
        lat = self._lat
        mm = task.mm
        yield from core.execute(lat.syscall_overhead_ns)
        yield mm.mmap_sem.acquire()
        try:
            child = kernel.create_process(child_name)
            for vma in mm.vmas:
                child.mm.vmas.insert(
                    Vma(
                        range=vma.range,
                        prot=vma.prot,
                        kind=vma.kind,
                        file_key=vma.file_key,
                        file_offset=vma.file_offset,
                    )
                )
                pte_work = 0
                for vpn, pte in list(mm.page_table.entries_in_range(vma.range)):
                    if not pte.present:
                        continue
                    shared = pte.with_flags(add=PteFlags.COW, drop=PteFlags.WRITE)
                    mm.page_table.update_pte(vpn, shared)
                    child.mm.page_table.set_pte(vpn, shared)
                    kernel.frames.get(pte.pfn)
                    pte_work += 2 * lat.pte_set_ns
                yield from core.execute(pte_work + kernel.drain_replica_work(core, mm))
                yield from kernel.coherence.shootdown_sync(
                    core, mm, vma.range, ShootdownReason.COW
                )
            child.mm.bump_generation()
            mm.bump_generation()
        finally:
            mm.mmap_sem.release()
        kernel.stats.counter("sys.fork").add()
        return child

    # ---- memory access -------------------------------------------------------------

    def access(self, task: Task, core, vaddr: int, write: bool = False) -> Generator:
        """One memory access; returns a FaultResult if a fault was taken,
        None on a TLB hit or walk-hit. Raises SegmentationFault on SIGSEGV."""
        kernel = self.kernel
        mm = task.mm
        vpn = vpn_of(vaddr)
        entry = core.tlb.lookup(mm.pcid, vpn)
        if entry is not None and (entry_writable(entry) or not write):
            return None
        # TLB refill: the hardware walk descends the core's local replica
        # (or pays the hop distance to the shared table's home node).
        pte, walk_extra = kernel.pt_hw_walk(core, mm, vpn)
        if pte is not None and pte.present and (pte.writable or not write):
            if pte.huge:
                from ..mm.addr import huge_base_vpn

                core.tlb.fill_huge(
                    mm.pcid,
                    huge_base_vpn(vpn),
                    TlbEntry(
                        pfn=pte.pfn,
                        writable=pte.writable,
                        generation=kernel.frames.generation(pte.pfn),
                        debug_mm_id=mm.mm_id,
                    ),
                )
            else:
                core.tlb.fill_new(
                    mm.pcid,
                    vpn,
                    pte.pfn,
                    pte.writable,
                    kernel.frames.generation(pte.pfn),
                    mm.mm_id,
                )
            extra = kernel.coherence.on_tlb_fill(core, mm, vpn)
            # First guest access to a frame takes an EPT violation; the
            # hypervisor demand-fills the gPA->hPA entry (0 when flat).
            yield from core.execute(
                self._lat.tlb_miss_walk_ns + walk_extra + extra
                + kernel.ept_fill(mm, pte.pfn)
            )
            return None
        result = yield from kernel.fault_handler.handle(task, core, vaddr, write)
        if result.fatal:
            raise SegmentationFault(vaddr)
        return result

    def touch_pages(
        self,
        task: Task,
        core,
        vrange: VirtRange,
        write: bool = False,
        process_data: bool = False,
    ) -> Generator:
        """Touch every page of ``vrange`` once (first byte of each page).

        With ``process_data`` the caller is modelled as actually *working
        through* each page (one pass over its 64 cachelines), so pages
        resident on a remote NUMA node cost more -- the locality effect
        AutoNUMA migrations exist to buy back.

        Plain touches (no ``process_data``) take a flat batched fault path
        by default (see :meth:`_touch_pages_batched`); the
        ``use_batched_faults`` kernel flag is the escape hatch back to the
        generic per-page handler.
        """
        if self.kernel.use_batched_faults and not process_data:
            yield from self._touch_pages_batched(task, core, vrange, write)
            return
        lat = self.kernel.machine.latency
        topo = self.kernel.machine.topology
        for vpn in vrange.vpns():
            yield from self.access(task, core, vpn * PAGE_SIZE, write=write)
            if not process_data:
                continue
            pte = task.mm.page_table.walk(vpn)
            if pte is None or pte.swapped:
                continue
            page_node = self.kernel.frames.node_of(pte.pfn)
            hops = topo.socket_hops(core.socket, page_node)
            yield from core.execute(64 * lat.cacheline(hops))

    def _touch_pages_batched(self, task: Task, core, vrange: VirtRange, write: bool) -> Generator:
        """Flat-loop twin of the ``access``-per-page touch loop.

        The open-loop service workload takes millions of plain anonymous
        demand faults on its arrival path; routed through the generic
        machinery each one costs four nested generators, three redundant
        page-table walks, and a ``FaultResult`` -- pure Python overhead.
        This path keeps the *model* bit-identical (same counters, same
        ``core.execute`` amounts at the same points relative to
        ``mmap_sem`` acquire/release, same TLB fills and coherence hooks,
        same frame-allocation order -- the bench differential gate diffs
        batched vs. unbatched runs) but handles the common case in one
        stack frame. Any page that turns out not to be a plain 4 KiB
        anonymous demand fault is delegated to the generic handler.
        """
        kernel = self.kernel
        lat = self._lat
        mm = task.mm
        stats = kernel.stats
        frames = kernel.frames
        fault_handler = kernel.fault_handler
        tlb = core.tlb
        pcid = mm.pcid
        page_table = mm.page_table
        mmap_sem = mm.mmap_sem
        node = core.socket
        faults_total = stats.counter("faults.total")
        faults_anon = stats.counter("faults.minor-anon")
        on_tlb_fill = kernel.coherence.on_tlb_fill
        base_ns = lat.page_fault_base_ns
        anon_ns = lat.page_alloc_ns + lat.page_zero_ns + lat.pte_set_ns
        # Hardware walks in this batch descend the core's local replica
        # (numaPTE) or pay the shared table's hop distance; both hoisted
        # once per batch. Off-mode: walk_table is page_table, extra is 0.
        walk_table, walk_extra = kernel.pt_walk_table(core, mm)
        # VM tasks pay the 2D (guest-over-host) step cost per walk and an
        # EPT fill per fresh frame; both are identically 0 when flat.
        twod_extra = kernel.twod_walk_extra_ns(mm)
        walk_ns = lat.tlb_miss_walk_ns + walk_extra + twod_extra
        drain_replica_work = kernel.drain_replica_work
        ept_fill = kernel.ept_fill
        fast_fills = 0
        mm_id = mm.mm_id
        for vpn in vrange.vpns():
            entry = tlb.lookup(pcid, vpn)
            if entry is not None and (entry_writable(entry) or not write):
                continue
            vaddr = vpn * PAGE_SIZE
            if walk_table.walk(vpn) is not None:
                # Present/CoW/swapped/hinted mappings: the generic access
                # path already handles every flavour.
                yield from self.access(task, core, vaddr, write=write)
                continue
            # Unmapped page: the fault entry sequence of
            # PageFaultHandler.handle, flattened.
            faults_total.add()
            yield from core.execute(base_ns)
            yield mmap_sem.acquire()
            try:
                # Re-validate under the lock -- a contended acquire may have
                # slept across a concurrent munmap/fault on this very page.
                vma = mm.vmas.find(vaddr)
                fast = (
                    vma is not None
                    and not vma.huge
                    and vma.kind is VmaKind.ANON
                    and (not write or vma.prot & Prot.WRITE)
                    and page_table.walk(vpn) is None
                )
                if fast:
                    pfn = frames.alloc(node)
                    yield from core.execute(anon_ns)
                    writable = bool(vma.prot & Prot.WRITE)
                    page_table.set_pte(vpn, make_present_pte(pfn, writable=writable))
                else:
                    result = yield from fault_handler.resolve_locked(
                        task, core, vaddr, write
                    )
            finally:
                mmap_sem.release()
            if fast:
                # _install_translation without the redundant walk: no yield
                # separates set_pte from here, so the PTE is exactly ours.
                tlb.fill_new(
                    pcid, vpn, pfn, writable, frames.generation(pfn), mm_id
                )
                fast_fills += 1
                yield from core.execute(
                    walk_ns + on_tlb_fill(core, mm, vpn) + drain_replica_work(core, mm)
                    + ept_fill(mm, pfn)
                )
                faults_anon.add()
                continue
            if result.fatal:
                raise SegmentationFault(vaddr)
            if result.pfn is not None:
                yield from fault_handler._install_translation(
                    task, core, vpn, result.pfn, write
                )
            stats.counter(f"faults.{result.kind.value}").add()
        kernel.note_pt_walks(fast_fills, walk_extra)
        kernel.note_2d_walks(fast_fills, twod_extra)

    def write_with_content(self, task: Task, core, vaddr: int, tag: str) -> Generator:
        """Write to a page and tag the backing frame's content (KSM hook).

        The tag lands on the frame the access actually wrote through: a
        still-valid TLB entry may point at a frame whose page-table PTE is
        already a pending NUMA hint (LATR defers the PROT_NONE apply to
        the first sweep), and the write architecturally reaches that frame
        all the same."""
        yield from self.access(task, core, vaddr, write=True)
        vpn = vpn_of(vaddr)
        entry = core.tlb.lookup(task.mm.pcid, vpn)
        if entry is not None and entry_writable(entry):
            self.kernel.set_page_content(entry_pfn(entry), tag)
            return
        pte = task.mm.page_table.walk(vpn)
        if pte is not None and pte.present:
            self.kernel.set_page_content(pte.pfn, tag)
