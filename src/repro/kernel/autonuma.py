"""AutoNUMA: periodic sampling of page placement + two-touch migration.

Linux's flow (paper Figure 3a): a background scanner (task_numa_work)
periodically write-protects sampled pages with PROT_NONE, paying a
synchronous shootdown per sampled chunk; the next touch faults, and a page
touched twice from a remote node migrates there. The shootdown is paid even
when no migration follows -- that waste (5.8%..21.1% of a migration's cost)
is what LATR eliminates: the PTE change itself is deferred into a LATR
state and applied by the first sweeping core (Figure 3b).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple

from ..mm.addr import VirtRange
from ..mm.fault import FaultKind, FaultResult
from ..mm.mmstruct import MmStruct
from ..mm.pte import Pte, PteFlags, make_present_pte
from ..mm.vma import VmaKind
from ..sim.engine import MSEC, Timeout
from .task import KProcess, Task

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class AutoNuma:
    """The AutoNUMA service; install with ``AutoNuma.install(kernel)``."""

    def __init__(
        self,
        kernel: "Kernel",
        scan_period_ns: int = 20 * MSEC,
        scan_pages_per_round: int = 256,
        chunk_pages: int = 16,
    ):
        self.kernel = kernel
        self.scan_period_ns = scan_period_ns
        self.scan_pages_per_round = scan_pages_per_round
        self.chunk_pages = chunk_pages
        #: (mm_id, vpn) -> node of the previous hint fault (last_cpupid).
        self._fault_history: Dict[Tuple[int, int], int] = {}
        self._registered: List[KProcess] = []
        self._cursors: Dict[int, int] = {}
        #: mm_id -> round-robin position over the process's running tasks.
        self._round_robin: Dict[int, int] = {}

    @classmethod
    def install(cls, kernel: "Kernel", **kwargs) -> "AutoNuma":
        service = cls(kernel, **kwargs)
        kernel.autonuma = service
        return service

    def register(self, process: KProcess) -> None:
        """Start scanning this process's address space."""
        self._registered.append(process)
        # Periodic with a generator body: each round runs as a process and
        # the next round starts scan_period_ns after the round completes,
        # exactly like the old `while True: yield Timeout(p); <body>` loop.
        self.kernel.sim.every(self.scan_period_ns, self._scan_round, process)

    # ---- the scanner (task_numa_work) -----------------------------------------------

    def _scan_round(self, process: KProcess) -> Generator:
        kernel = self.kernel
        lat = kernel.machine.latency
        mm = process.mm
        tasks = [t for t in process.tasks if t.state.value == "running"]
        if not tasks:
            return
        # The scan runs in task context: charge a live task's core.
        rr = self._round_robin.get(mm.mm_id, 0)
        task = tasks[rr % len(tasks)]
        self._round_robin[mm.mm_id] = rr + 1
        core = kernel.machine.core(task.home_core_id)
        chunks = self._collect_chunks(mm)
        # task_numa_work spreads its scan across the period; pacing the
        # chunks also keeps LATR's per-core state queue from overflowing
        # on a burst of migration posts.
        pace = self.scan_period_ns // (2 * max(1, len(chunks)))
        for chunk in chunks:
            yield Timeout(pace)
            yield mm.mmap_sem.acquire()
            try:
                vpns = [
                    vpn
                    for vpn in chunk.vpns()
                    if self._samplable(mm, vpn)
                ]
                if not vpns:
                    continue
                yield from core.execute(len(vpns) * lat.numa_scan_per_page_ns)
                kernel.stats.counter("numa.pages_sampled").add(len(vpns))

                def apply_change(mm=mm, vpns=tuple(vpns)) -> None:
                    for vpn in vpns:
                        pte = mm.page_table.walk(vpn)
                        if pte is not None and pte.present:
                            mm.page_table.update_pte(vpn, pte.make_numa_hint())

                yield from kernel.coherence.migration_unmap(
                    core, mm, chunk, apply_change
                )
                # Synchronous mechanisms applied the hint PTEs above; the
                # fan-out to any page-table replicas is charged here (LATR
                # defers the apply, so its fan-out drains at a later site).
                replica_work = kernel.drain_replica_work(core, mm)
                if replica_work:
                    yield from core.execute(replica_work)
            finally:
                mm.mmap_sem.release()

    def _samplable(self, mm: MmStruct, vpn: int) -> bool:
        pte = mm.page_table.walk(vpn)
        return pte is not None and pte.present and not pte.cow and not pte.huge

    def _collect_chunks(self, mm: MmStruct) -> List[VirtRange]:
        """Next window of anon VMA chunks, resuming from a per-mm cursor."""
        anon_vmas = [v for v in mm.vmas if v.kind is VmaKind.ANON]
        if not anon_vmas:
            return []
        chunks: List[VirtRange] = []
        budget = self.scan_pages_per_round
        cursor = self._cursors.get(mm.mm_id, 0)
        ordered = anon_vmas[cursor % len(anon_vmas):] + anon_vmas[: cursor % len(anon_vmas)]
        self._cursors[mm.mm_id] = cursor + 1
        for vma in ordered:
            vpn = vma.range.vpn_start
            while vpn < vma.range.vpn_end and budget > 0:
                n = min(self.chunk_pages, vma.range.vpn_end - vpn, budget)
                chunks.append(VirtRange.from_pages(vpn, n))
                vpn += n
                budget -= n
            if budget <= 0:
                break
        return chunks

    # ---- the fault side (do_numa_page) -------------------------------------------------

    def handle_hint_fault(self, task: Task, core, vpn: int, pte: Pte) -> Generator:
        """Called by the fault handler (mmap_sem held) on a PROT_NONE page."""
        kernel = self.kernel
        lat = kernel.machine.latency
        mm = task.mm
        kernel.stats.counter("numa.hint_faults").add()

        # Paper section 4.4: the migration may only proceed once every core
        # has invalidated its entry for this page; LATR returns the pending
        # state's completion signal here, synchronous mechanisms None.
        gate = kernel.coherence.migration_gate(mm, vpn)
        if gate is not None and not gate.triggered:
            kernel.stats.counter("numa.gate_waits").add()
            yield gate

        current = mm.page_table.walk(vpn)
        if current is None or not current.numa_hint:
            # Lost a race with munmap or another fault.
            return FaultResult(FaultKind.SPURIOUS, vpn, pfn=None if current is None else current.pfn)

        this_node = core.socket
        page_node = kernel.frames.node_of(current.pfn)
        key = (mm.mm_id, vpn)
        prev_node = self._fault_history.get(key)
        self._fault_history[key] = this_node

        migrate = (
            this_node != page_node
            and prev_node == this_node
            and kernel.frames.free_count(this_node) > 0
        )
        if not migrate:
            mm.page_table.update_pte(vpn, current.clear_numa_hint())
            yield from core.execute(lat.pte_set_ns + kernel.drain_replica_work(core, mm))
            return FaultResult(FaultKind.NUMA_HINT, vpn, pfn=current.pfn)

        # Migrate: allocate on the accessing node, copy, switch the PTE.
        old_pfn = current.pfn
        new_pfn = kernel.frames.alloc(this_node)
        yield from core.execute(
            lat.migration_fixed_ns + lat.migration_per_page_ns + lat.page_copy_ns
        )
        tag = kernel.page_contents.get(old_pfn)
        if tag is not None:
            kernel.page_contents[new_pfn] = tag
        mm.page_table.set_pte(vpn, make_present_pte(new_pfn, writable=current.writable))
        kernel.release_frames([old_pfn])
        self._fault_history.pop(key, None)
        kernel.stats.counter("numa.migrations").add()
        kernel.stats.rate("migrations").hit()
        return FaultResult(FaultKind.NUMA_HINT, vpn, pfn=new_pfn, migrated=True)
