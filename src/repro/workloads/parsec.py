"""PARSEC/SPLASH-style application profiles (paper Figures 10, 12; Table 4).

The paper runs the PARSEC suite unmodified and reports *normalized runtime*
(LATR vs Linux) against each benchmark's TLB-shootdown rate. What matters
for reproduction is therefore the per-application rate and shape of VM
activity, not the computation itself. Each profile drives one thread per
core through a fixed amount of work, plus:

* ``free_ops_per_sec`` batched ``madvise``/``munmap`` calls over a shared
  mapping (dedup's allocator churn, vips's buffer recycling, ...),
* ``ctx_switches_per_sec`` synthetic context switches (canneal's frequent
  blocking), which trigger LATR sweeps, and
* an LLC profile for the Table 4 comparison; cache-thrashing apps also pay
  a cold-cache penalty on every sweep (their state-queue lines never stay
  resident).

Rates are calibrated against the shootdowns/sec axis of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import warm_build_system
from ..coherence.latr import LatrCoherence
from ..hw.cache import CacheProfile
from ..mm.addr import PAGE_SIZE
from ..sim.engine import MSEC, SEC
from .base import WorkloadResult


@dataclass(frozen=True)
class ParsecProfile:
    """One application's VM-activity fingerprint."""

    name: str
    #: madvise()-style free operations per second, whole application.
    free_ops_per_sec: float
    #: Pages freed per operation (dedup frees large chunk buffers).
    pages_per_op: int
    #: Synthetic context switches per second per core.
    ctx_switches_per_sec: float
    #: Cold-cache sweep penalty (ns) -- nonzero for LLC-thrashing apps.
    sweep_cold_ns: int = 0
    #: Table 4 LLC profile (None for apps the paper doesn't list).
    cache: Optional[CacheProfile] = None


#: Calibrated against Figure 10's shootdowns/sec (right axis) and Table 4.
#: ctx_switches_per_sec is per core; free_ops_per_sec is application-wide.
PARSEC_PROFILES: Dict[str, ParsecProfile] = {
    "blackscholes": ParsecProfile("blackscholes", 100, 2, 20),
    "bodytrack": ParsecProfile("bodytrack", 5_000, 4, 300),
    "canneal": ParsecProfile(
        "canneal", 300, 2, 9_000, sweep_cold_ns=1_500,
        cache=CacheProfile(38e6, 80.51),
    ),
    "dedup": ParsecProfile(
        "dedup", 25_000, 24, 900, cache=CacheProfile(45e6, 18.33)
    ),
    "facesim": ParsecProfile("facesim", 1_500, 4, 180, cache=CacheProfile(42e6, 0.0)),
    "ferret": ParsecProfile("ferret", 3_000, 4, 700, cache=CacheProfile(44e6, 48.02)),
    "fluidanimate": ParsecProfile("fluidanimate", 400, 2, 260),
    "freqmine": ParsecProfile("freqmine", 150, 2, 60),
    "netdedup": ParsecProfile("netdedup", 18_000, 14, 800),
    "raytrace": ParsecProfile("raytrace", 400, 2, 90),
    "streamcluster": ParsecProfile(
        "streamcluster", 1_000, 2, 350, sweep_cold_ns=900,
        cache=CacheProfile(40e6, 95.42),
    ),
    "swaptions": ParsecProfile(
        "swaptions", 200, 2, 120, cache=CacheProfile(46e6, 47.48)
    ),
    "vips": ParsecProfile("vips", 8_000, 6, 500),
}


@dataclass
class ParsecConfig:
    machine: str = "commodity-2s16c"
    cores: int = 16
    #: Simulated CPU work per core for one "run" of the benchmark.
    work_per_core_ms: int = 120
    seed: int = 1


class ParsecWorkload:
    """Runs one profile to completion; the metric is wall-clock runtime."""

    name = "parsec"

    def __init__(self, profile: ParsecProfile, config: Optional[ParsecConfig] = None):
        self.profile = profile
        self.config = config or ParsecConfig()

    def run(self, mechanism: str, **mechanism_kwargs) -> WorkloadResult:
        cfg = self.config
        prof = self.profile
        system = warm_build_system(
            mechanism, machine=cfg.machine, cores=cfg.cores, seed=cfg.seed, **mechanism_kwargs
        )
        kernel = system.kernel
        if isinstance(kernel.coherence, LatrCoherence):
            kernel.coherence.cold_sweep_extra_ns = prof.sweep_cold_ns

        proc = kernel.create_process(prof.name)
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(cfg.cores)]
        work_ns = cfg.work_per_core_ms * MSEC
        finished = []

        # VM activity interval per core: the app-wide op rate split evenly.
        ops_per_core = prof.free_ops_per_sec / cfg.cores
        op_interval = int(SEC / ops_per_core) if ops_per_core > 0 else None
        ctx_interval = (
            int(SEC / prof.ctx_switches_per_sec) if prof.ctx_switches_per_sec > 0 else None
        )

        def worker(task):
            core = kernel.machine.core(task.home_core_id)
            # Working buffer this thread madvises pieces of.
            buf = yield from kernel.syscalls.mmap(
                task, core, max(prof.pages_per_op, 1) * PAGE_SIZE
            )
            remaining = work_ns
            next_op = op_interval
            next_ctx = ctx_interval
            while remaining > 0:
                slice_ns = min(
                    x for x in (remaining, next_op, next_ctx) if x is not None
                )
                yield from core.execute(slice_ns)
                remaining -= slice_ns
                if next_op is not None:
                    next_op -= slice_ns
                    if next_op <= 0:
                        next_op = op_interval
                        # Touch then free: the canonical shootdown generator.
                        yield from kernel.syscalls.touch_pages(task, core, buf, write=True)
                        # Make the buffer visible to the sibling cores the way
                        # shared heaps are: a neighbour touches it too.
                        sibling = tasks[(task.home_core_id + 1) % cfg.cores]
                        sib_core = kernel.machine.core(sibling.home_core_id)
                        yield from kernel.syscalls.touch_pages(sibling, sib_core, buf)
                        yield from kernel.syscalls.madvise_dontneed(task, core, buf)
                        kernel.stats.rate("parsec.ops").hit()
                if next_ctx is not None:
                    next_ctx -= slice_ns
                    if next_ctx <= 0:
                        next_ctx = ctx_interval
                        kernel.scheduler.synthetic_context_switch(core)
            finished.append(system.sim.now)

        kernel.stats.start_all_windows()
        system.machine.llc.start_window()
        for task in tasks:
            system.sim.spawn(worker(task), name=f"{prof.name}-{task.tid}")
        # Run until every worker finished.
        horizon = system.sim.now + 60 * work_ns
        while len(finished) < cfg.cores and system.sim.now < horizon:
            if not system.sim.step():
                break
        if len(finished) < cfg.cores:
            raise RuntimeError(f"{prof.name} did not finish")
        runtime = max(finished)
        kernel.stats.stop_all_windows()

        llc = system.machine.llc.summary()
        return WorkloadResult(
            workload=f"parsec-{prof.name}",
            mechanism=mechanism,
            metrics={
                "runtime_ms": runtime / MSEC,
                "shootdowns_per_sec": kernel.stats.rate("shootdowns").per_second(),
                "ipis_per_sec": kernel.stats.rate("ipi.sent").per_second(),
                "llc_pollution_lines": llc["pollution_lines"],
                "llc_state_lines": llc["state_lines"],
                "window_ns": float(runtime),
            },
            counters=kernel.stats.counters_snapshot(),
        )


def run_parsec(profile: str, mechanism: str, mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point: boot a fresh system and run one PARSEC
    profile (by name, keeping the cell picklable). Module-level so run
    cells can name it across process boundaries."""
    workload = ParsecWorkload(PARSEC_PROFILES[profile], ParsecConfig(**config_kwargs))
    return workload.run(mechanism, **(mechanism_kwargs or {}))
