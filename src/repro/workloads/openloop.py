"""Open-loop fleet-scale service workload (SLO tail tables).

The Apache model in :mod:`repro.workloads.apache` is *closed loop*: each
core fires the next request only when the previous one finishes, so the
server can never fall behind and the latency tail stays tame even at
saturation. Real fleet front-ends face the opposite regime (the paper's
section 1 "killer microseconds" motivation): requests arrive on their own
clock, and once offered load exceeds capacity the backlog -- and the
p99/p999 -- grows without bound. This workload models that regime:

* a dispatcher draws arrivals from :mod:`repro.sim.arrivals` (Poisson or
  bursty MMPP) at a configured *offered* load, independent of service
  progress;
* requests carry connection affinity: each lands on the worker core that
  owns its connection, queueing behind whatever that core is doing;
* every request runs the mmap/touch/munmap scratch-buffer lifecycle that
  serializes on ``mmap_sem`` and triggers shootdowns -- the path where
  LATR's lazy invalidation buys back capacity;
* long-lived per-connection buffers churn (munmap + fresh mmap) at a
  configured rate, re-faulting on next use the way dropped keep-alive
  connections do.

Request latency is measured *from arrival*, so queueing delay is in the
number -- that is the whole point of open loop. Samples go to the bounded
streaming-quantile recorder (``stats.quantile``), not the keep-every-
sample ``LatencyRecorder``: offered-load sweeps past saturation record
millions of samples per cell.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from .. import warm_build_system
from ..mm.addr import PAGE_SIZE
from ..sim.arrivals import make_arrivals
from ..sim.engine import MSEC, SEC, Signal, Timeout
from .base import WorkloadResult, measured_window


@dataclass
class OpenLoopConfig:
    """Knobs for one open-loop run (all fields picklable for run cells)."""

    machine: str = "large-numa-8s120c"
    cores: Optional[int] = None
    #: Total offered load in kilo-requests/second, across all cores.
    offered_kreq_s: float = 100.0
    #: Arrival process: "poisson" or "bursty" (two-state MMPP).
    arrival: str = "poisson"
    burst_factor: float = 4.0
    base_dwell_ms: float = 8.0
    burst_dwell_ms: float = 2.0
    #: CPU work per request, apart from memory management (Apache-calibrated).
    request_work_ns: int = 59_000
    #: Scratch buffer mapped/touched/unmapped by every request.
    request_pages: int = 3
    #: Long-lived connection buffers (one per connection, owner-core affine).
    connections: int = 240
    conn_pages: int = 4
    #: Connection churn (drop + re-establish) events per second.
    conn_churn_per_sec: float = 1_000.0
    warmup_ms: int = 5
    duration_ms: int = 50
    seed: int = 1
    #: Escape hatches, forwarded to build_system for A/B differentials.
    use_batched_faults: Optional[bool] = None
    gate_latencies: Optional[bool] = None


class OpenLoopWorkload:
    """An open-loop arrival-driven service on one simulated machine."""

    name = "openloop"

    def __init__(self, config: Optional[OpenLoopConfig] = None):
        self.config = config or OpenLoopConfig()

    def run(self, mechanism: str, **mechanism_kwargs) -> WorkloadResult:
        cfg = self.config
        build_kwargs = dict(
            machine=cfg.machine,
            cores=cfg.cores,
            seed=cfg.seed,
            **mechanism_kwargs,
        )
        if cfg.use_batched_faults is not None:
            build_kwargs["use_batched_faults"] = cfg.use_batched_faults
        if cfg.gate_latencies is not None:
            build_kwargs["gate_latencies"] = cfg.gate_latencies
        system = warm_build_system(mechanism, **build_kwargs)
        sim = system.sim
        kernel = system.kernel
        syscalls = kernel.syscalls
        n_cores = kernel.machine.n_cores

        arrivals = make_arrivals(
            cfg.arrival,
            kernel.rng.stream("openloop.arrivals"),
            cfg.offered_kreq_s * 1_000.0,
            burst_factor=cfg.burst_factor,
            base_dwell_ms=cfg.base_dwell_ms,
            burst_dwell_ms=cfg.burst_dwell_ms,
        )
        conn_rng = kernel.rng.stream("openloop.conn")
        churn_rng = kernel.rng.stream("openloop.churn")

        server = kernel.create_process("openloop")
        workers = [kernel.spawn_thread(server, f"w{c}", c) for c in range(n_cores)]

        completed = kernel.stats.counter("openloop.requests")
        request_rate = kernel.stats.rate("openloop.requests")
        offered_rate = kernel.stats.rate("openloop.offered")
        request_latency = kernel.stats.quantile("openloop.request")
        churn_count = kernel.stats.counter("openloop.conn_churn")

        #: conn index -> mapped VirtRange (None until established).
        conn_ranges = [None] * cfg.connections
        #: Per-core request queues: (arrived_ns, kind, conn_idx).
        queues = [deque() for _ in range(n_cores)]
        #: Idle workers park on a Signal the dispatcher fires on enqueue.
        idle = [None] * n_cores

        def enqueue(core_idx: int, item) -> None:
            queues[core_idx].append(item)
            sig = idle[core_idx]
            if sig is not None:
                idle[core_idx] = None
                sig.succeed()

        def handle_request(core, task, conn_idx: int):
            yield from core.execute(cfg.request_work_ns)
            conn_range = conn_ranges[conn_idx]
            if conn_range is not None:
                # Read the connection state; faults again after churn.
                yield from syscalls.touch_pages(task, core, conn_range)
            scratch = yield from syscalls.mmap(
                task, core, cfg.request_pages * PAGE_SIZE
            )
            yield from syscalls.touch_pages(task, core, scratch, write=True)
            yield from syscalls.munmap(task, core, scratch)

        def handle_churn(core, task, conn_idx: int):
            old = conn_ranges[conn_idx]
            if old is not None:
                yield from syscalls.munmap(task, core, old)
            fresh = yield from syscalls.mmap(task, core, cfg.conn_pages * PAGE_SIZE)
            yield from syscalls.touch_pages(task, core, fresh, write=True)
            conn_ranges[conn_idx] = fresh
            churn_count.add()

        def worker_loop(core_idx: int):
            core = kernel.machine.core(core_idx)
            task = workers[core_idx]
            # Establish this core's connections before traffic starts.
            for conn_idx in range(core_idx, cfg.connections, n_cores):
                yield from kernel.scheduler.run_on(
                    core, task, handle_churn(core, task, conn_idx)
                )
            queue = queues[core_idx]
            while True:
                if not queue:
                    sig = idle[core_idx] = Signal(sim)
                    yield sig
                    continue
                arrived_ns, kind, conn_idx = queue.popleft()
                if kind == 0:
                    yield from kernel.scheduler.run_on(
                        core, task, handle_request(core, task, conn_idx)
                    )
                    completed.add()
                    request_rate.hit()
                    request_latency.record(sim.now - arrived_ns)
                else:
                    yield from kernel.scheduler.run_on(
                        core, task, handle_churn(core, task, conn_idx)
                    )

        def dispatcher():
            # Offered load does not care how the server is doing: gaps come
            # from the arrival process alone (this is what "open loop" means).
            while True:
                yield self._timeout(arrivals.next_gap_ns())
                conn_idx = conn_rng.randrange(cfg.connections)
                offered_rate.hit()
                enqueue(conn_idx % n_cores, (sim.now, 0, conn_idx))

        def churner():
            if cfg.conn_churn_per_sec <= 0:
                return
            mean_gap = SEC / cfg.conn_churn_per_sec
            while True:
                yield self._timeout(int(churn_rng.expovariate(1.0) * mean_gap))
                conn_idx = churn_rng.randrange(cfg.connections)
                enqueue(conn_idx % n_cores, (sim.now, 1, conn_idx))

        for c in range(n_cores):
            sim.spawn(worker_loop(c), name=f"openloop-w{c}")
        sim.spawn(dispatcher(), name="openloop-dispatch")
        sim.spawn(churner(), name="openloop-churn")

        window_ns = measured_window(system, cfg.warmup_ms * MSEC, cfg.duration_ms * MSEC)

        backlog = sum(len(q) for q in queues)
        metrics = {
            "offered_kreq_s": offered_rate.per_second() / 1_000.0,
            "achieved_kreq_s": request_rate.per_second() / 1_000.0,
            "latency_p50_us": request_latency.percentile(50) / 1_000.0,
            "latency_p99_us": request_latency.percentile(99) / 1_000.0,
            "latency_p999_us": request_latency.percentile(99.9) / 1_000.0,
            "shootdowns_per_sec": kernel.stats.rate("shootdowns").per_second(),
            "ipis_per_sec": kernel.stats.rate("ipi.sent").per_second(),
            "backlog_requests": float(backlog),
            "samples": float(request_latency.count),
            "window_ns": float(window_ns),
        }
        return WorkloadResult(
            workload=self.name,
            mechanism=mechanism,
            metrics=metrics,
            counters=kernel.stats.counters_snapshot(),
        )

    @staticmethod
    def _timeout(delay_ns: int) -> Timeout:
        return Timeout(max(1, delay_ns))


def run_openloop(mechanism: str, mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point (module-level, picklable arguments)."""
    workload = OpenLoopWorkload(OpenLoopConfig(**config_kwargs))
    return workload.run(mechanism, **(mechanism_kwargs or {}))
