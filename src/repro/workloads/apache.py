"""Apache webserver model (paper sections 1, 6.2.2; Figures 1, 9, 12).

The paper's Apache serves a static 10 KB page; the event MPM's workers
``mmap()`` the requested file, serve it, and ``munmap()`` it -- one
shootdown per request once the process's threads span multiple cores. Wrk
keeps the server saturated (closed loop, 400 connections), so throughput is
bounded by the *slower* of:

* aggregate CPU: request parsing/copying/network work per request, and
* the address-space lock: mmap + page faults + munmap (including the
  synchronous shootdown under Linux) all serialize on ``mmap_sem``.

Linux's flatline beyond ~6 cores in Figure 1 is the second bound; LATR
removes the shootdown from the critical section and scales until the first
bound. ABIS shrinks the IPI *target set* (per-request mappings are touched
by one core) but pays access-bit tracking on every TLB fill and sharer
lookups inside the critical section -- slower than Linux at low core
counts, between Linux and LATR at high counts (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import warm_build_system
from ..hw.cache import CacheProfile
from ..mm.addr import PAGE_SIZE
from ..mm.vma import VmaKind
from ..sim.engine import MSEC
from .base import WorkloadResult, measured_window


@dataclass
class ApacheConfig:
    machine: str = "commodity-2s16c"
    cores: int = 12
    #: Event-MPM server processes; each has worker threads on every core.
    n_processes: int = 1
    #: Distinct static files served (all 10 KB = 3 pages).
    file_pool: int = 16
    file_pages: int = 3
    #: Per-request CPU outside the VM operations: parse, headers, copy, TCP.
    request_work_ns: int = 59_000
    #: False models an nginx-style sendfile server: no per-request mmap.
    use_mmap: bool = True
    pcid: bool = False
    warmup_ms: int = 20
    duration_ms: int = 150
    seed: int = 1


def run_apache(mechanism: str, mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point: boot a fresh system and run the Apache
    workload. Module-level (and all-picklable arguments) so run cells can
    name it across process boundaries."""
    workload = ApacheWorkload(ApacheConfig(**config_kwargs))
    return workload.run(mechanism, **(mechanism_kwargs or {}))


#: Table 4 rows for Apache (baseline LLC miss % measured under Linux).
APACHE_CACHE_PROFILES = {
    1: CacheProfile(accesses_per_sec_per_core=45e6, baseline_miss_pct=6.08),
    6: CacheProfile(accesses_per_sec_per_core=45e6, baseline_miss_pct=1.60),
    12: CacheProfile(accesses_per_sec_per_core=45e6, baseline_miss_pct=1.23),
}


class ApacheWorkload:
    """Figures 1, 9, 12; Tables 4, 5."""

    name = "apache"

    def __init__(self, config: Optional[ApacheConfig] = None):
        self.config = config or ApacheConfig()

    def run(self, mechanism: str, **mechanism_kwargs) -> WorkloadResult:
        cfg = self.config
        system = warm_build_system(
            mechanism,
            machine=cfg.machine,
            cores=cfg.cores,
            seed=cfg.seed,
            pcid=cfg.pcid,
            **mechanism_kwargs,
        )
        kernel = system.kernel
        rng = kernel.rng.stream("apache")

        processes = [kernel.create_process(f"apache{p}") for p in range(cfg.n_processes)]
        workers = {}
        for p, proc in enumerate(processes):
            for c in range(cfg.cores):
                workers[(p, c)] = kernel.spawn_thread(proc, f"w{c}", c)

        completed = kernel.stats.counter("apache.requests")
        request_rate = kernel.stats.rate("apache.requests")

        request_latency = kernel.stats.latency("apache.request")

        def handle_request(proc_idx: int, core):
            proc = processes[proc_idx]
            task = workers[(proc_idx, core.id)]
            started = system.sim.now
            yield from core.execute(cfg.request_work_ns)
            if cfg.use_mmap:
                file_key = f"page{rng.randrange(cfg.file_pool)}.html"
                vrange = yield from kernel.syscalls.mmap(
                    task,
                    core,
                    cfg.file_pages * PAGE_SIZE,
                    kind=VmaKind.FILE,
                    file_key=file_key,
                )
                yield from kernel.syscalls.touch_pages(task, core, vrange)
                yield from kernel.syscalls.munmap(task, core, vrange)
            completed.add()
            request_rate.hit()
            request_latency.record(system.sim.now - started)

        def core_loop(core):
            i = core.id  # desynchronize the process rotation across cores
            while True:
                proc_idx = i % cfg.n_processes
                i += 1
                task = workers[(proc_idx, core.id)]
                yield from kernel.scheduler.run_on(
                    core, task, handle_request(proc_idx, core)
                )

        for c in range(cfg.cores):
            system.sim.spawn(core_loop(kernel.machine.core(c)), name=f"apache-core{c}")

        window_ns = measured_window(
            system, cfg.warmup_ms * MSEC, cfg.duration_ms * MSEC
        )

        metrics = {
            "requests_per_sec": request_rate.per_second(),
            "shootdowns_per_sec": kernel.stats.rate("shootdowns").per_second(),
            "ipis_per_sec": kernel.stats.rate("ipi.sent").per_second(),
            "latency_p50_us": request_latency.percentile(50) / 1000.0,
            "latency_p99_us": request_latency.percentile(99) / 1000.0,
            "latency_p999_us": request_latency.percentile(99.9) / 1000.0,
        }
        # Per-munmap critical-section cost (the virt experiment's headline:
        # two-level translation inflates this via host-level invalidation).
        munmap_lat = kernel.stats.latency("munmap")
        if munmap_lat.count:
            metrics["munmap_us"] = munmap_lat.mean / 1000.0
        # Table 5 breakdown inputs.
        sync_wait = kernel.stats.latency("shootdown.sync_wait")
        if sync_wait.count:
            metrics["sync_shootdown_ns"] = sync_wait.mean
        state_write = kernel.stats.latency("latr.state_write")
        if state_write.count:
            metrics["state_write_ns"] = state_write.mean
        sweep = kernel.stats.latency("latr.sweep")
        if sweep.count:
            metrics["sweep_ns"] = sweep.mean
        # Table 4 inputs: LLC disturbance lines over the window.
        llc = system.machine.llc.summary()
        metrics["llc_pollution_lines"] = llc["pollution_lines"]
        metrics["llc_state_lines"] = llc["state_lines"]
        metrics["window_ns"] = float(window_ns)

        return WorkloadResult(
            workload=self.name,
            mechanism=mechanism,
            metrics=metrics,
            counters=kernel.stats.counters_snapshot(),
        )
