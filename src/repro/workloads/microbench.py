"""The munmap/TLB-shootdown microbenchmark (paper section 6.2.1).

One process, one thread per participating core. Each iteration maps a set
of pages, every core touches them (populating its TLB), and core 0 calls
munmap() -- forcing a shootdown covering all participating cores. The
benchmark reports the munmap() latency and the shootdown-only portion,
exactly the two panels of Figures 6 and 7; sweeping the page count gives
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import warm_build_system
from ..mm.addr import PAGE_SIZE
from ..sim.engine import MSEC, AllOf
from .base import WorkloadResult


@dataclass
class MicrobenchConfig:
    machine: str = "commodity-2s16c"
    cores: int = 16
    pages: int = 1
    #: Iterations measured (the paper runs 250k; means stabilize long
    #: before that in a deterministic simulator).
    reps: int = 60
    seed: int = 1


def run_microbench(mechanism: str, mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point: boot a fresh system and run the munmap
    microbenchmark. Module-level (and all-picklable arguments) so run cells
    can name it across process boundaries."""
    bench = MunmapMicrobench(MicrobenchConfig(**config_kwargs))
    return bench.run(mechanism, **(mechanism_kwargs or {}))


def run_memoverhead(mechanism: str = "latr", mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point for the section 6.4 lazy-memory bound."""
    bench = MunmapMicrobench(MicrobenchConfig(**config_kwargs))
    return bench.lazy_memory_overhead(mechanism, **(mechanism_kwargs or {}))


def run_pt_placement(mechanism: str, mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point for the numaPTE placement experiment."""
    bench = PtPlacementBench(PtPlacementConfig(**config_kwargs))
    return bench.run(mechanism, **(mechanism_kwargs or {}))


@dataclass
class PtPlacementConfig:
    machine: str = "large-numa-8s120c"
    cores: Optional[int] = None
    pages: int = 64
    reps: int = 12
    seed: int = 1


class PtPlacementBench:
    """Page-table placement on a big NUMA box (the numaPTE experiment).

    One thread per socket shares a region homed (tables and all) on
    node 0. Every iteration maps fresh pages, the node-0 thread populates
    them, every remote socket then reads them -- each read is a TLB miss
    whose hardware walk descends the page table -- and node 0 unmaps.
    With ``use_pt_replication`` forced on for every mechanism,
    single-table kernels pay a hop charge per remote-socket walk, while a
    replicated mm walks its local replica and instead pays the fan-out
    cost on each mutation. The table this feeds shows exactly that trade.
    """

    name = "pt-placement"

    def __init__(self, config: Optional[PtPlacementConfig] = None):
        self.config = config or PtPlacementConfig()

    def run(self, mechanism: str, **mechanism_kwargs) -> WorkloadResult:
        cfg = self.config
        system = warm_build_system(
            mechanism,
            machine=cfg.machine,
            cores=cfg.cores,
            seed=cfg.seed,
            use_pt_replication=True,
            **mechanism_kwargs,
        )
        kernel = system.kernel
        machine = kernel.machine
        spec = machine.spec
        # One thread on the first core of each socket.
        leader_cores = [s * spec.cores_per_socket for s in range(spec.sockets)]
        proc = kernel.create_process("ptplace")
        tasks = [
            kernel.spawn_thread(proc, f"s{i}", cid)
            for i, cid in enumerate(leader_cores)
        ]

        def remote_reader(task, vrange):
            core = machine.core(task.home_core_id)
            yield from kernel.syscalls.touch_pages(task, core, vrange)

        finished = {}

        def driver():
            t0, c0 = tasks[0], machine.core(leader_cores[0])
            for _rep in range(cfg.reps):
                vrange = yield from kernel.syscalls.mmap(t0, c0, cfg.pages * PAGE_SIZE)
                yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
                spawned = [
                    system.sim.spawn(remote_reader(task, vrange), name=f"rd{task.tid}")
                    for task in tasks[1:]
                ]
                if spawned:
                    yield AllOf(spawned)
                yield from kernel.syscalls.munmap(t0, c0, vrange)
            finished["ns"] = system.sim.now

        start_ns = system.sim.now
        driver_proc = system.sim.spawn(driver(), name="ptplace-driver")
        system.sim.run(until=start_ns + 60_000 * MSEC)
        if driver_proc.alive:
            raise RuntimeError("pt-placement run did not finish within the horizon")
        runtime_ns = finished["ns"] - start_ns

        stats = kernel.stats
        pt = proc.mm.page_table
        replica_pages = 0
        if hasattr(pt, "table_pages_by_node"):
            by_node = pt.table_pages_by_node()
            replica_pages = sum(
                pages for node, pages in by_node.items() if node != pt.home_node
            )
        return WorkloadResult(
            workload=self.name,
            mechanism=mechanism,
            metrics={
                "runtime_ms": runtime_ns / MSEC,
                "walks_local": float(stats.counter("pt.walk.local").value),
                "walks_remote": float(stats.counter("pt.walk.remote").value),
                "remote_walk_ms": stats.counter("pt.walk.remote_ns").value / MSEC,
                "replica_updates": float(stats.counter("pt.replica.updates").value),
                "replica_update_ms": stats.counter("pt.replica.update_ns").value / MSEC,
                "replica_table_pages": float(replica_pages),
            },
            counters=kernel.stats.counters_snapshot(),
        )


class MunmapMicrobench:
    """Figures 6, 7, 8."""

    name = "microbench"

    def __init__(self, config: Optional[MicrobenchConfig] = None):
        self.config = config or MicrobenchConfig()

    def run(self, mechanism: str, **mechanism_kwargs) -> WorkloadResult:
        cfg = self.config
        system = warm_build_system(
            mechanism,
            machine=cfg.machine,
            cores=cfg.cores,
            seed=cfg.seed,
            **mechanism_kwargs,
        )
        kernel = system.kernel
        proc = kernel.create_process("microbench")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(cfg.cores)]
        munmap_samples = []

        def touch_from(task):
            core = kernel.machine.core(task.home_core_id)

            def gen(vrange):
                yield from kernel.syscalls.touch_pages(task, core, vrange, write=True)

            return gen

        def driver():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _rep in range(cfg.reps):
                vrange = yield from kernel.syscalls.mmap(t0, c0, cfg.pages * PAGE_SIZE)
                # Initiator populates first (takes the faults), then all
                # remote cores fill their TLBs concurrently.
                yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
                spawned = [
                    system.sim.spawn(touch_from(task)(vrange), name=f"touch{task.tid}")
                    for task in tasks[1:]
                ]
                if spawned:
                    yield AllOf(spawned)
                start = system.sim.now
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                munmap_samples.append(system.sim.now - start)

        driver_proc = system.sim.spawn(driver(), name="driver")
        # Generous bound: reps * (page faults + a few ticks of slack).
        horizon = (cfg.reps * max(1, cfg.pages) * 10 + 200) * MSEC // 100
        system.sim.run(until=max(horizon, 500 * MSEC))
        if driver_proc.alive:
            raise RuntimeError("microbench did not finish within the horizon")

        sd = kernel.stats.latency("shootdown.free")
        mean_munmap = sum(munmap_samples) / len(munmap_samples)
        result = WorkloadResult(
            workload=self.name,
            mechanism=mechanism,
            metrics={
                "munmap_us": mean_munmap / 1000.0,
                "munmap_p50_us": sorted(munmap_samples)[int(0.50 * (len(munmap_samples) - 1))]
                / 1000.0,
                "munmap_p99_us": sorted(munmap_samples)[int(0.99 * (len(munmap_samples) - 1))]
                / 1000.0,
                "shootdown_us": sd.mean / 1000.0,
                "shootdown_fraction": (sd.mean / mean_munmap) if mean_munmap else 0.0,
                "fallback_ipis": float(
                    kernel.stats.counter("latr.fallback_ipi").value
                ),
            },
            counters=kernel.stats.counters_snapshot(),
        )
        return result

    def lazy_memory_overhead(self, mechanism: str = "latr", **mechanism_kwargs) -> WorkloadResult:
        """Section 6.4's memory-utilization bound: peak bytes parked on
        lazy lists during the run."""
        cfg = self.config
        system = warm_build_system(
            mechanism, machine=cfg.machine, cores=cfg.cores, seed=cfg.seed, **mechanism_kwargs
        )
        kernel = system.kernel
        proc = kernel.create_process("microbench")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(cfg.cores)]
        peak = {"bytes": 0}

        def sample_peak():
            coherence = kernel.coherence
            if hasattr(coherence, "lazy_bytes_outstanding"):
                peak["bytes"] = max(peak["bytes"], coherence.lazy_bytes_outstanding())

        def driver():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _rep in range(cfg.reps):
                vrange = yield from kernel.syscalls.mmap(t0, c0, cfg.pages * PAGE_SIZE)
                yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
                spawned = [
                    system.sim.spawn(
                        kernel.syscalls.touch_pages(
                            task, kernel.machine.core(task.home_core_id), vrange
                        )
                    )
                    for task in tasks[1:]
                ]
                if spawned:
                    yield AllOf(spawned)
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                sample_peak()

        driver_proc = system.sim.spawn(driver())
        system.sim.run(until=1000 * MSEC)
        if driver_proc.alive:
            raise RuntimeError("memory-overhead run did not finish")
        sample_peak()
        # Page-table memory by NUMA node: a replicated mm (numaPTE) spends
        # extra table pages per remote node; a flat table is all node-0.
        pt = proc.mm.page_table
        if hasattr(pt, "table_pages_by_node"):
            pt_pages = pt.table_pages_by_node()
        else:
            pt_pages = {0: pt.table_pages_allocated}
        metrics = {"peak_lazy_mb": peak["bytes"] / (1024 * 1024)}
        # Fixed per-core state-queue memory (paper 4.1: depth x 68 B per
        # core), summed over the actual queues so the number tracks the
        # live representation -- SoA or object -- not just the spec.
        coherence = kernel.coherence
        if hasattr(coherence, "queues"):
            state_bytes = sum(q.footprint_bytes() for q in coherence.queues.values())
            metrics["latr_state_kb"] = state_bytes / 1024
        for node in range(kernel.machine.spec.sockets):
            metrics[f"pt_pages_node{node}"] = float(pt_pages.get(node, 0))
        return WorkloadResult(
            workload="microbench-memoverhead",
            mechanism=mechanism,
            metrics=metrics,
            counters=kernel.stats.counters_snapshot(),
        )
