"""The munmap/TLB-shootdown microbenchmark (paper section 6.2.1).

One process, one thread per participating core. Each iteration maps a set
of pages, every core touches them (populating its TLB), and core 0 calls
munmap() -- forcing a shootdown covering all participating cores. The
benchmark reports the munmap() latency and the shootdown-only portion,
exactly the two panels of Figures 6 and 7; sweeping the page count gives
Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import warm_build_system
from ..mm.addr import PAGE_SIZE
from ..sim.engine import MSEC, AllOf
from .base import WorkloadResult


@dataclass
class MicrobenchConfig:
    machine: str = "commodity-2s16c"
    cores: int = 16
    pages: int = 1
    #: Iterations measured (the paper runs 250k; means stabilize long
    #: before that in a deterministic simulator).
    reps: int = 60
    seed: int = 1


def run_microbench(mechanism: str, mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point: boot a fresh system and run the munmap
    microbenchmark. Module-level (and all-picklable arguments) so run cells
    can name it across process boundaries."""
    bench = MunmapMicrobench(MicrobenchConfig(**config_kwargs))
    return bench.run(mechanism, **(mechanism_kwargs or {}))


def run_memoverhead(mechanism: str = "latr", mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point for the section 6.4 lazy-memory bound."""
    bench = MunmapMicrobench(MicrobenchConfig(**config_kwargs))
    return bench.lazy_memory_overhead(mechanism, **(mechanism_kwargs or {}))


class MunmapMicrobench:
    """Figures 6, 7, 8."""

    name = "microbench"

    def __init__(self, config: Optional[MicrobenchConfig] = None):
        self.config = config or MicrobenchConfig()

    def run(self, mechanism: str, **mechanism_kwargs) -> WorkloadResult:
        cfg = self.config
        system = warm_build_system(
            mechanism,
            machine=cfg.machine,
            cores=cfg.cores,
            seed=cfg.seed,
            **mechanism_kwargs,
        )
        kernel = system.kernel
        proc = kernel.create_process("microbench")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(cfg.cores)]
        munmap_samples = []

        def touch_from(task):
            core = kernel.machine.core(task.home_core_id)

            def gen(vrange):
                yield from kernel.syscalls.touch_pages(task, core, vrange, write=True)

            return gen

        def driver():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _rep in range(cfg.reps):
                vrange = yield from kernel.syscalls.mmap(t0, c0, cfg.pages * PAGE_SIZE)
                # Initiator populates first (takes the faults), then all
                # remote cores fill their TLBs concurrently.
                yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
                spawned = [
                    system.sim.spawn(touch_from(task)(vrange), name=f"touch{task.tid}")
                    for task in tasks[1:]
                ]
                if spawned:
                    yield AllOf(spawned)
                start = system.sim.now
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                munmap_samples.append(system.sim.now - start)

        driver_proc = system.sim.spawn(driver(), name="driver")
        # Generous bound: reps * (page faults + a few ticks of slack).
        horizon = (cfg.reps * max(1, cfg.pages) * 10 + 200) * MSEC // 100
        system.sim.run(until=max(horizon, 500 * MSEC))
        if driver_proc.alive:
            raise RuntimeError("microbench did not finish within the horizon")

        sd = kernel.stats.latency("shootdown.free")
        mean_munmap = sum(munmap_samples) / len(munmap_samples)
        result = WorkloadResult(
            workload=self.name,
            mechanism=mechanism,
            metrics={
                "munmap_us": mean_munmap / 1000.0,
                "munmap_p50_us": sorted(munmap_samples)[int(0.50 * (len(munmap_samples) - 1))]
                / 1000.0,
                "munmap_p99_us": sorted(munmap_samples)[int(0.99 * (len(munmap_samples) - 1))]
                / 1000.0,
                "shootdown_us": sd.mean / 1000.0,
                "shootdown_fraction": (sd.mean / mean_munmap) if mean_munmap else 0.0,
                "fallback_ipis": float(
                    kernel.stats.counter("latr.fallback_ipi").value
                ),
            },
            counters=kernel.stats.counters_snapshot(),
        )
        return result

    def lazy_memory_overhead(self, mechanism: str = "latr", **mechanism_kwargs) -> WorkloadResult:
        """Section 6.4's memory-utilization bound: peak bytes parked on
        lazy lists during the run."""
        cfg = self.config
        system = warm_build_system(
            mechanism, machine=cfg.machine, cores=cfg.cores, seed=cfg.seed, **mechanism_kwargs
        )
        kernel = system.kernel
        proc = kernel.create_process("microbench")
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(cfg.cores)]
        peak = {"bytes": 0}

        def sample_peak():
            coherence = kernel.coherence
            if hasattr(coherence, "lazy_bytes_outstanding"):
                peak["bytes"] = max(peak["bytes"], coherence.lazy_bytes_outstanding())

        def driver():
            t0, c0 = tasks[0], kernel.machine.core(0)
            for _rep in range(cfg.reps):
                vrange = yield from kernel.syscalls.mmap(t0, c0, cfg.pages * PAGE_SIZE)
                yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
                spawned = [
                    system.sim.spawn(
                        kernel.syscalls.touch_pages(
                            task, kernel.machine.core(task.home_core_id), vrange
                        )
                    )
                    for task in tasks[1:]
                ]
                if spawned:
                    yield AllOf(spawned)
                yield from kernel.syscalls.munmap(t0, c0, vrange)
                sample_peak()

        driver_proc = system.sim.spawn(driver())
        system.sim.run(until=1000 * MSEC)
        if driver_proc.alive:
            raise RuntimeError("memory-overhead run did not finish")
        sample_peak()
        return WorkloadResult(
            workload="microbench-memoverhead",
            mechanism=mechanism,
            metrics={"peak_lazy_mb": peak["bytes"] / (1024 * 1024)},
            counters=kernel.stats.counters_snapshot(),
        )
