"""Workload plumbing: results, measurement windows, run helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..sim.engine import MSEC, SEC


@dataclass
class WorkloadResult:
    """What one simulated run produced."""

    workload: str
    mechanism: str
    #: Headline metrics (requests/sec, munmap_us, normalized runtime, ...).
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Raw counter snapshot for debugging and secondary tables.
    counters: Dict[str, int] = field(default_factory=dict)

    def metric(self, name: str) -> float:
        return self.metrics[name]


def measured_window(system, warmup_ns: int, duration_ns: int):
    """Run ``warmup`` then a measured window of ``duration``; rate windows
    and the LLC model are (re)started at the window edge."""
    sim = system.sim
    stats = system.kernel.stats
    sim.run(until=sim.now + warmup_ns)
    stats.start_all_windows()
    system.machine.llc.start_window()
    start = sim.now
    sim.run(until=sim.now + duration_ns)
    stats.stop_all_windows()
    return sim.now - start
