"""AutoNUMA application models (paper Figure 11).

Graph500, PBZIP2, Metis, fluidanimate and ocean_cp share one structural
story: workers own NUMA-local partitions, but a main thread keeps
re-initializing partitions on node 0 (centrally produced data: input
blocks, shuffled intermediate results). AutoNUMA samples pages -- paying a
synchronous shootdown per sampled chunk under Linux, a LATR state under
LATR -- and migrates the twice-remotely-touched ones back. The Figure 11
deltas track the sampling/migration rate: more migrations per second ->
bigger LATR win (the shootdown is 5.8%..21.1% of migration cost, paper
sections 2.1, 6.3).

Profiles differ in working-set size, scan aggressiveness, and how often
workers walk their partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import warm_build_system
from ..kernel.autonuma import AutoNuma
from ..mm.addr import PAGE_SIZE
from ..sim.engine import MSEC, SEC, Timeout
from .base import WorkloadResult


@dataclass(frozen=True)
class NumaProfile:
    """One application's NUMA behaviour fingerprint."""

    name: str
    #: Pages per worker partition (first-touched locally; the refresher
    #: re-initializes partitions on node 0 to create migration demand).
    pages_per_core: int
    #: How often each worker walks its partition (ns).
    touch_period_ns: int
    #: AutoNUMA scan period for this process (task_numa_work cadence).
    scan_period_ns: int
    #: Pages sampled per scan round.
    scan_pages: int
    #: How often the main thread re-initializes one partition on node 0.
    refresh_period_ns: int = 8 * MSEC


#: Calibrated against Figure 11's migrations/sec axis (0..14k) and deltas.
NUMA_PROFILES: Dict[str, NumaProfile] = {
    "fluidanimate": NumaProfile("fluidanimate", 96, 2 * MSEC, 10 * MSEC, 640),
    "ocean_cp": NumaProfile("ocean_cp", 112, 2 * MSEC, 10 * MSEC, 640),
    "graph500": NumaProfile("graph500", 128, 2 * MSEC, 10 * MSEC, 1024),
    "pbzip2": NumaProfile("pbzip2", 64, 4 * MSEC, 20 * MSEC, 96),
    "metis": NumaProfile("metis", 112, 2 * MSEC, 10 * MSEC, 512),
}


@dataclass
class NumaConfig:
    machine: str = "commodity-2s16c"
    cores: int = 16
    work_per_core_ms: int = 100
    seed: int = 1


class NumaWorkload:
    """Figure 11: normalized runtime + migrations/sec under AutoNUMA."""

    name = "numa"

    def __init__(self, profile: NumaProfile, config: Optional[NumaConfig] = None):
        self.profile = profile
        self.config = config or NumaConfig()

    def run(self, mechanism: str, **mechanism_kwargs) -> WorkloadResult:
        cfg = self.config
        prof = self.profile
        system = warm_build_system(
            mechanism, machine=cfg.machine, cores=cfg.cores, seed=cfg.seed, **mechanism_kwargs
        )
        kernel = system.kernel
        autonuma = AutoNuma.install(
            kernel,
            scan_period_ns=prof.scan_period_ns,
            scan_pages_per_round=prof.scan_pages,
            chunk_pages=16,  # change_prot_numa batches PMD-sized chunks
        )
        proc = kernel.create_process(prof.name)
        tasks = [kernel.spawn_thread(proc, f"t{i}", i) for i in range(cfg.cores)]
        partitions = {}
        ready = []
        finished = []
        work_ns = cfg.work_per_core_ms * MSEC

        def init_main():
            """Set up the partitions; workers first-touch their own pages
            (local placement), so the run starts in the steady state and
            the refresher is the only source of misplaced pages."""
            t0, c0 = tasks[0], kernel.machine.core(0)
            for task in tasks:
                vrange = yield from kernel.syscalls.mmap(
                    t0, c0, prof.pages_per_core * PAGE_SIZE
                )
                partitions[task.tid] = vrange
            autonuma.register(proc)
            ready.append(True)

        def worker(task, index):
            core = kernel.machine.core(task.home_core_id)
            while not ready:
                yield from core.execute(50_000)
            rng = kernel.rng.stream(f"numa-worker-{index}")
            vrange = partitions[task.tid]
            yield from kernel.syscalls.touch_pages(task, core, vrange, write=True)
            remaining = work_ns
            while remaining > 0:
                # Jittered touch period so workers do not phase-lock with
                # the AutoNUMA scanner.
                period = prof.touch_period_ns * rng.uniform(0.8, 1.2)
                chunk = int(min(period, remaining))
                yield from core.execute(chunk)
                remaining -= chunk
                yield from kernel.syscalls.touch_pages(task, core, vrange, process_data=True)
            finished.append(system.sim.now)

        def refresher():
            """The main thread periodically re-initializes one partition on
            node 0 (centrally produced data: pbzip2 reading input blocks,
            Metis distributing map output). Workers on socket 1 then pull
            their partitions back through AutoNUMA -- a steady, controlled
            stream of misplaced pages instead of a bistable ping-pong."""
            t0, c0 = tasks[0], kernel.machine.core(0)
            while not ready:
                yield from c0.execute(50_000)
            idx = 0
            while len(finished) < cfg.cores:
                yield Timeout(prof.refresh_period_ns)
                victim = tasks[idx % cfg.cores]
                idx += 1
                vrange = partitions[victim.tid]
                yield from kernel.syscalls.madvise_dontneed(t0, c0, vrange)
                yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)

        system.sim.spawn(init_main(), name="numa-init")
        system.sim.spawn(refresher(), name="numa-refresher")
        for index, task in enumerate(tasks):
            system.sim.spawn(worker(task, index), name=f"{prof.name}-{task.tid}")
        kernel.stats.start_all_windows()
        horizon = system.sim.now + 100 * work_ns
        while len(finished) < cfg.cores and system.sim.now < horizon:
            if not system.sim.step():
                break
        if len(finished) < cfg.cores:
            raise RuntimeError(f"{prof.name} did not finish")
        runtime = max(finished)
        kernel.stats.stop_all_windows()

        migrations = kernel.stats.counter("numa.migrations").value
        return WorkloadResult(
            workload=f"numa-{prof.name}",
            mechanism=mechanism,
            metrics={
                "runtime_ms": runtime / MSEC,
                "migrations_per_sec": migrations * SEC / runtime,
                "migrations": float(migrations),
                "samples_per_sec": kernel.stats.counter("numa.pages_sampled").value
                * SEC
                / runtime,
                "ipis_per_sec": kernel.stats.rate("ipi.sent").per_second(),
            },
            counters=kernel.stats.counters_snapshot(),
        )


def run_numa(profile: str, mechanism: str, mechanism_kwargs=None, **config_kwargs) -> WorkloadResult:
    """Run-one-cell entry point: boot a fresh system and run one AutoNUMA
    application profile (by name, keeping the cell picklable). Module-level
    so run cells can name it across process boundaries."""
    workload = NumaWorkload(NUMA_PROFILES[profile], NumaConfig(**config_kwargs))
    return workload.run(mechanism, **(mechanism_kwargs or {}))
