"""Workload models driving the evaluation."""

from .apache import APACHE_CACHE_PROFILES, ApacheConfig, ApacheWorkload
from .base import WorkloadResult, measured_window
from .microbench import MicrobenchConfig, MunmapMicrobench
from .numa_apps import NUMA_PROFILES, NumaConfig, NumaProfile, NumaWorkload
from .parsec import PARSEC_PROFILES, ParsecConfig, ParsecProfile, ParsecWorkload

__all__ = [
    "APACHE_CACHE_PROFILES",
    "ApacheConfig",
    "ApacheWorkload",
    "MicrobenchConfig",
    "MunmapMicrobench",
    "NUMA_PROFILES",
    "NumaConfig",
    "NumaProfile",
    "NumaWorkload",
    "PARSEC_PROFILES",
    "ParsecConfig",
    "ParsecProfile",
    "ParsecWorkload",
    "WorkloadResult",
    "measured_window",
]
