"""Analytical cost models (validated against the simulator in tests)."""

from .model import (
    ApacheBound,
    ShootdownBreakdown,
    apache_throughput_bound,
    dominant_term,
    latr_free_critical_path,
    latr_memory_overhead_bytes,
    latr_reclamation_bound_ns,
    latr_staleness_bound_ns,
    latr_sweep_cost_ns,
    linux_shootdown,
    migration_shootdown_share,
)

__all__ = [
    "ApacheBound",
    "ShootdownBreakdown",
    "apache_throughput_bound",
    "dominant_term",
    "latr_free_critical_path",
    "latr_memory_overhead_bytes",
    "latr_reclamation_bound_ns",
    "latr_staleness_bound_ns",
    "latr_sweep_cost_ns",
    "linux_shootdown",
    "migration_shootdown_share",
]
