"""Closed-form cost model of translation coherence.

The simulator *executes* the mechanisms; this module *predicts* them with
the paper's own arithmetic (section 2.1's three overheads: IPI send, remote
handler, ACK wait). Uses:

* sanity-check the simulator (tests assert model ~= simulation),
* reason about configurations without simulating (e.g. "what does a
  munmap cost on 4 sockets x 32 cores?"),
* expose the structure of the result: which term dominates where.

All functions take an explicit :class:`~repro.hw.latency.LatencyModel` and
:class:`~repro.hw.topology.Topology`, so what-if analyses can vary either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hw.latency import DEFAULT_LATENCY, LatencyModel
from ..hw.spec import MachineSpec
from ..hw.topology import Topology
from ..mm.addr import PAGE_SIZE


@dataclass(frozen=True)
class ShootdownBreakdown:
    """Linux's synchronous shootdown, term by term (paper section 2.1)."""

    local_invalidation_ns: float
    ipi_send_ns: float            # initiator occupancy, all unicasts
    slowest_ack_wait_ns: float    # delivery + handler + ack for the last core
    total_ns: float
    #: CPU stolen from remote cores by the handlers (not on the critical
    #: path, but the throughput cost Figures 1/10/11 measure).
    remote_handler_ns: float


def linux_shootdown(
    spec: MachineSpec,
    initiator_core: int = 0,
    target_cores: Optional[List[int]] = None,
    pages: int = 1,
    latency: LatencyModel = DEFAULT_LATENCY,
) -> ShootdownBreakdown:
    """Predict one synchronous IPI shootdown on ``spec``."""
    topo = Topology(spec)
    if target_cores is None:
        target_cores = [c for c in range(spec.total_cores) if c != initiator_core]
    local = latency.local_invalidation(pages, spec.full_flush_threshold)
    handler = latency.ipi_handler(pages, spec.full_flush_threshold)

    send_total = 0
    slowest = 0.0
    for target in target_cores:
        hops = topo.core_hops(initiator_core, target)
        send_total += latency.ipi_send(hops)
        # The IPI to `target` leaves after all earlier sends: its ACK
        # arrives at send-so-far + delivery + handler + ack.
        arrival = (
            send_total
            + latency.ipi_delivery(hops)
            + handler
            + latency.ack_transfer(hops)
        )
        slowest = max(slowest, arrival)
    return ShootdownBreakdown(
        local_invalidation_ns=local,
        ipi_send_ns=send_total,
        slowest_ack_wait_ns=max(0.0, slowest - send_total),
        total_ns=local + slowest if target_cores else local,
        remote_handler_ns=handler * len(target_cores),
    )


def latr_free_critical_path(
    pages: int = 1,
    spec: MachineSpec = None,
    latency: LatencyModel = DEFAULT_LATENCY,
) -> float:
    """LATR's contribution to the munmap critical path: local invalidation
    plus one state write (Figure 2b)."""
    threshold = spec.full_flush_threshold if spec else 32
    return latency.local_invalidation(pages, threshold) + latency.latr_state_write_ns


def latr_staleness_bound_ns(spec: MachineSpec) -> int:
    """Worst-case survival of a stale remote entry: one tick interval
    (every running core sweeps at its next tick, paper section 3)."""
    return spec.tick_interval_ns


def latr_reclamation_bound_ns(spec: MachineSpec, reclaim_delay_ticks: int = 2) -> int:
    """When lazily-freed memory is guaranteed reusable again."""
    return reclaim_delay_ticks * spec.tick_interval_ns


def latr_memory_overhead_bytes(
    munmap_rate_per_sec: float,
    pages_per_munmap: int,
    spec: MachineSpec,
    reclaim_delay_ticks: int = 2,
) -> float:
    """Section 6.4's bound: rate x pages x 4 KiB x reclamation delay."""
    window_sec = latr_reclamation_bound_ns(spec, reclaim_delay_ticks) / 1e9
    return munmap_rate_per_sec * pages_per_munmap * PAGE_SIZE * window_sec


def latr_sweep_cost_ns(
    active_states: int,
    matching_states: int,
    pages_per_state: int,
    spec: MachineSpec,
    latency: LatencyModel = DEFAULT_LATENCY,
    cross_socket_pulls: int = 0,
) -> float:
    """One sweep pass: base + per-entry examination + invalidation work
    (batched into a full flush past the 32-page rule, paper 4.1)."""
    cost = latency.latr_sweep_base_ns + active_states * latency.latr_sweep_per_entry_ns
    cost += cross_socket_pulls * latency.latr_state_pull(1)
    total_pages = matching_states * pages_per_state
    if total_pages > spec.full_flush_threshold:
        cost += latency.tlb_full_flush_ns + matching_states * 30
    else:
        cost += total_pages * latency.tlb_invlpg_ns + matching_states * 30
    return cost


@dataclass(frozen=True)
class ApacheBound:
    """Which resource caps Apache throughput (Figure 1's two regimes)."""

    cpu_bound_rps: float
    lock_bound_rps: float
    predicted_rps: float
    binding: str  # "cpu" or "mmap_sem"


def apache_throughput_bound(
    cores: int,
    request_work_ns: float,
    per_request_cpu_extra_ns: float,
    sem_occupancy_ns: float,
) -> ApacheBound:
    """Closed-loop throughput = min(aggregate CPU, address-space lock).

    ``sem_occupancy_ns`` is the mmap_sem-held time per request (mmap +
    faults + munmap incl. the shootdown under Linux); the lock admits at
    most one request's VM work at a time, which is exactly why removing the
    shootdown from the critical section (LATR) moves the knee.
    """
    cpu_bound = cores * 1e9 / (request_work_ns + per_request_cpu_extra_ns)
    lock_bound = 1e9 / sem_occupancy_ns if sem_occupancy_ns > 0 else float("inf")
    predicted = min(cpu_bound, lock_bound)
    return ApacheBound(
        cpu_bound_rps=cpu_bound,
        lock_bound_rps=lock_bound,
        predicted_rps=predicted,
        binding="cpu" if cpu_bound <= lock_bound else "mmap_sem",
    )


def migration_shootdown_share(
    pages: int,
    spec: MachineSpec,
    latency: LatencyModel = DEFAULT_LATENCY,
) -> float:
    """Fraction of an AutoNUMA migration spent on the shootdown (the
    paper's 5.8% at 1 page .. 21.1% at 512 pages, sections 2.1/6.3)."""
    shootdown = linux_shootdown(spec, pages=1).total_ns * pages
    work = (
        latency.migration_fixed_ns
        + pages * latency.migration_per_page_ns
    )
    return shootdown / (shootdown + work)


def dominant_term(breakdown: ShootdownBreakdown) -> str:
    """Which of the three section-2.1 overheads dominates."""
    terms = {
        "local invalidation": breakdown.local_invalidation_ns,
        "IPI send occupancy": breakdown.ipi_send_ns,
        "ACK wait": breakdown.slowest_ack_wait_ns,
    }
    return max(terms, key=terms.get)
