#!/usr/bin/env python
"""Measure tier-1 line coverage of ``src/repro`` without coverage.py.

CI runs pytest-cov with the committed ``--cov-fail-under`` floor (see
``repro ci``); this tool exists to *set* that floor in environments where
coverage.py is not installed. It runs the tier-1 suite under a
``sys.settrace`` hook that records executed lines for files under
``src/repro`` only, then compares against the executable-line sets
derived from each file's compiled code objects (``co_lines``) -- the same
line universe sys.monitoring-based coverage tools use, and close to
coverage.py's statement counts.

Usage::

    python tools/measure_coverage.py [pytest args...]

Prints a per-file table and the overall percentage. Expect the suite to
run several times slower than normal under the trace hook.
"""

from __future__ import annotations

import dis
import os
import sys
import threading
from typing import Dict, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_PREFIX = os.path.join(REPO_ROOT, "src", "repro")


def executable_lines(path: str) -> Set[int]:
    """All line numbers that compiled code objects attribute bytecode to."""
    with open(path, "r") as fh:
        source = fh.read()
    try:
        top = compile(source, path, "exec")
    except SyntaxError:
        return set()
    lines: Set[int] = set()
    stack = [top]
    while stack:
        code = stack.pop()
        for _start, _end, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if isinstance(const, type(top)):
                stack.append(const)
    return lines


def run_suite(executed: Dict[str, Set[int]], pytest_args) -> int:
    def global_trace(frame, event, _arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        if not filename.startswith(SRC_PREFIX):
            return None
        lines = executed.setdefault(filename, set())
        lines.add(frame.f_lineno)

        def local_trace(frame, event, _arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local_trace

        return local_trace

    import pytest

    sys.settrace(global_trace)
    threading.settrace(global_trace)
    try:
        return pytest.main(list(pytest_args) or ["-x", "-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)


def main(argv) -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    executed: Dict[str, Set[int]] = {}
    code = run_suite(executed, argv)
    if code != 0:
        print(f"pytest exited {code}; coverage numbers below are partial")

    total_exec = 0
    total_hit = 0
    rows = []
    for dirpath, _dirnames, filenames in os.walk(SRC_PREFIX):
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            lines = executable_lines(path)
            if not lines:
                continue
            hit = executed.get(path, set()) & lines
            total_exec += len(lines)
            total_hit += len(hit)
            rows.append(
                (
                    os.path.relpath(path, REPO_ROOT),
                    len(lines),
                    len(hit),
                    100.0 * len(hit) / len(lines),
                )
            )

    width = max(len(r[0]) for r in rows)
    for path, n_exec, n_hit, pct in sorted(rows, key=lambda r: r[3]):
        print(f"{path:<{width}}  {n_hit:5d}/{n_exec:<5d}  {pct:6.1f}%")
    overall = 100.0 * total_hit / total_exec if total_exec else 0.0
    print(f"{'TOTAL':<{width}}  {total_hit:5d}/{total_exec:<5d}  {overall:6.1f}%")
    return code


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
