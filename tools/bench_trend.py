#!/usr/bin/env python
"""Summarize the committed bench trajectory as a text table.

``python -m repro bench`` writes one ``BENCH_<timestamp>.json`` per run
into ``benchmarks/results/`` and each run only compares against its
immediate predecessor. This tool reads *every* committed file (oldest
first) and prints, per case, how events/s and wall-clock moved across
the whole history -- the long-horizon view the pairwise regression gate
cannot give.

Usage::

    python tools/bench_trend.py [--dir benchmarks/results] [--case NAME]

One table per case: a row per BENCH file that contains it, with wall
seconds, events/s, and the delta versus the previous row. Files whose
scale keys differ (quick vs full stress sizes, host-dependent job
counts) are annotated rather than hidden, since an events/s step across
a scale change says nothing about the code.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Keys that change a case's workload size; deltas across a change in any
#: of these are marked "(scale changed)" in the table. Mirrors
#: ``repro.bench.compare_to_previous``.
SCALE_KEYS = ("sim_ms", "jobs", "n_events", "ops", "mc_scope", "drivers")


def load_history(bench_dir: str) -> List[Tuple[str, Dict[str, object]]]:
    """(filename, report) pairs, oldest first (the names embed a sortable
    timestamp). Unreadable files are skipped with a warning."""
    out: List[Tuple[str, Dict[str, object]]] = []
    for path in sorted(glob.glob(os.path.join(bench_dir, "BENCH_*.json"))):
        try:
            with open(path) as fh:
                out.append((os.path.basename(path), json.load(fh)))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
    return out


def case_names(history: List[Tuple[str, Dict[str, object]]]) -> List[str]:
    """Every case name seen, in first-appearance order."""
    names: List[str] = []
    for _fname, report in history:
        for name in report.get("cases", {}):
            if name not in names:
                names.append(name)
    return names


def _scale_signature(entry: Dict[str, object]) -> Tuple:
    return tuple(entry.get(k) for k in SCALE_KEYS)


def trend_rows(
    history: List[Tuple[str, Dict[str, object]]], case: str
) -> List[Tuple[str, float, float, str]]:
    """(file, wall_s, events_per_sec, note) rows for one case."""
    rows: List[Tuple[str, float, float, str]] = []
    prev_eps: Optional[float] = None
    prev_sig: Optional[Tuple] = None
    for fname, report in history:
        entry = report.get("cases", {}).get(case)
        if not isinstance(entry, dict):
            continue
        wall = entry.get("wall_s")
        eps = entry.get("events_per_sec")
        if not isinstance(wall, (int, float)) or not isinstance(eps, (int, float)):
            continue
        sig = _scale_signature(entry)
        if prev_eps is None:
            note = ""
        elif prev_sig != sig:
            note = "(scale changed)"
        elif prev_eps > 0:
            note = f"{100.0 * (eps - prev_eps) / prev_eps:+.1f}% events/s"
        else:
            note = ""
        rows.append((fname, float(wall), float(eps), note))
        prev_eps, prev_sig = eps, sig
    return rows


def render(history: List[Tuple[str, Dict[str, object]]], only: Optional[str]) -> int:
    names = case_names(history)
    if only is not None:
        if only not in names:
            print(f"error: case {only!r} not in history; have {names}", file=sys.stderr)
            return 1
        names = [only]
    for case in names:
        rows = trend_rows(history, case)
        if not rows:
            continue
        print(f"{case} ({len(rows)} run(s))")
        print(f"  {'file':<28} {'wall_s':>9} {'events/s':>14}")
        for fname, wall, eps, note in rows:
            line = f"  {fname:<28} {wall:>9.3f} {eps:>14,.0f}"
            if note:
                line += f"  {note}"
            print(line)
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        default=os.path.join("benchmarks", "results"),
        help="directory holding BENCH_*.json files",
    )
    parser.add_argument("--case", default=None, help="limit to one case name")
    args = parser.parse_args(argv)
    history = load_history(args.dir)
    if not history:
        # Exit 2 (not 1): "no baselines yet" is a setup condition, not a
        # regression -- callers gating on failures can tell them apart.
        print(f"no BENCH_*.json files under {args.dir}", file=sys.stderr)
        return 2
    return render(history, args.case)


if __name__ == "__main__":
    raise SystemExit(main())
