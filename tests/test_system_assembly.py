"""build_system / Machine assembly / measurement-window plumbing."""

import pytest

from repro import System, build_system
from repro.sim.engine import MSEC, SEC
from repro.workloads.base import WorkloadResult, measured_window

from helpers import make_proc


class TestBuildSystem:
    def test_default_build(self):
        system = build_system()
        assert system.kernel.coherence.name == "latr"
        assert system.machine.n_cores == 16
        assert system.machine.spec.sockets == 2

    def test_core_restriction_and_preset(self):
        system = build_system("linux", machine="large-numa-8s120c", cores=30)
        assert system.machine.n_cores == 30
        assert system.machine.spec.sockets == 2  # 15 cores/socket

    def test_unknown_mechanism(self):
        with pytest.raises(KeyError):
            build_system("nope")

    def test_mechanism_kwargs_forwarded(self):
        system = build_system("latr", cores=2, queue_depth=7)
        assert system.kernel.coherence.queue_depth == 7

    def test_frames_override(self):
        system = build_system("latr", cores=2, frames_per_node=123)
        assert system.kernel.frames.frames_per_node == 123

    def test_pcid_flag_reaches_tlbs(self):
        system = build_system("latr", cores=2, pcid=True)
        assert all(c.tlb.pcid_enabled for c in system.machine.cores)

    def test_system_bundle_accessors(self):
        system = build_system("latr", cores=2)
        assert system.stats is system.kernel.stats
        assert system.syscalls is system.kernel.syscalls

    def test_scheduler_started(self):
        system = build_system("latr", cores=2)
        assert system.sim.pending() > 0  # tick loops are queued

    def test_seed_controls_rng(self):
        a = build_system("latr", cores=1, seed=5).kernel.rng.stream("x").random()
        b = build_system("latr", cores=1, seed=5).kernel.rng.stream("x").random()
        c = build_system("latr", cores=1, seed=6).kernel.rng.stream("x").random()
        assert a == b != c


class TestMachineAssembly:
    def test_cores_match_spec(self):
        system = build_system("latr", machine="large-numa-8s120c")
        machine = system.machine
        assert len(machine.cores) == 120
        assert machine.core(119).socket == 7
        assert len(machine.cores_on_node(3)) == 15

    def test_tlb_capacity_from_spec(self):
        system = build_system("latr", cores=2)
        assert system.machine.core(0).tlb.capacity == 64


class TestMeasuredWindow:
    def test_window_runs_and_restarts_rates(self):
        system = build_system("latr", cores=2)
        make_proc(system)
        rate = system.stats.rate("x")
        rate.hit()  # before the window: ignored
        elapsed = measured_window(system, warmup_ns=2 * MSEC, duration_ns=10 * MSEC)
        assert elapsed == 10 * MSEC
        assert rate.events == 0

    def test_workload_result_metric_access(self):
        result = WorkloadResult("w", "latr", metrics={"x": 1.5})
        assert result.metric("x") == 1.5
        with pytest.raises(KeyError):
            result.metric("y")
