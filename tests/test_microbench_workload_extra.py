"""Extra microbenchmark-workload behaviours not covered elsewhere."""

import pytest

from repro.workloads.microbench import MicrobenchConfig, MunmapMicrobench


class TestShapes:
    def test_shootdown_fraction_grows_with_cores_linux(self):
        fractions = []
        for cores in (2, 8, 16):
            result = MunmapMicrobench(MicrobenchConfig(cores=cores, reps=12)).run("linux")
            fractions.append(result.metric("shootdown_fraction"))
        assert fractions[0] < fractions[1] < fractions[2]

    def test_latr_flat_shootdown_across_cores(self):
        """LATR's critical-path cost is core-count independent (one state
        write) -- the flat curve in Figures 6/7."""
        costs = [
            MunmapMicrobench(MicrobenchConfig(cores=cores, reps=12))
            .run("latr")
            .metric("shootdown_us")
            for cores in (2, 8, 16)
        ]
        assert max(costs) - min(costs) < 0.05

    def test_p99_at_least_mean(self):
        result = MunmapMicrobench(MicrobenchConfig(cores=8, reps=30)).run("latr")
        assert result.metric("munmap_p99_us") >= result.metric("munmap_us") * 0.99

    def test_single_core_mechanism_parity(self):
        linux = MunmapMicrobench(MicrobenchConfig(cores=1, reps=12)).run("linux")
        latr = MunmapMicrobench(MicrobenchConfig(cores=1, reps=12)).run("latr")
        assert latr.metric("munmap_us") == pytest.approx(
            linux.metric("munmap_us"), rel=0.05
        )

    def test_machine_preset_selected(self):
        result = MunmapMicrobench(
            MicrobenchConfig(machine="large-numa-8s120c", cores=30, reps=6)
        ).run("latr")
        assert result.metric("munmap_us") > 0
        assert result.counters["sys.munmap"] == 6


class TestStateFootprintMetric:
    def test_memoverhead_reports_latr_state_kb(self):
        """The fixed state-queue memory metric cross-checks the spec's
        closed form (total_cores x 64 slots x 68 B, paper 4.1)."""
        from repro.hw import preset
        from repro.workloads.microbench import run_memoverhead

        cores = 8
        result = run_memoverhead("latr", cores=cores, reps=6)
        spec = preset("commodity-2s16c").with_cores(cores)
        assert result.metrics["latr_state_kb"] == pytest.approx(
            spec.latr_state_footprint_bytes / 1024
        )

    def test_soa_and_object_queues_report_identical_footprint(self):
        from repro.workloads.microbench import run_memoverhead

        soa = run_memoverhead("latr", cores=4, reps=6)
        obj = run_memoverhead(
            "latr", mechanism_kwargs={"use_soa_states": False}, cores=4, reps=6
        )
        assert soa.metrics["latr_state_kb"] == obj.metrics["latr_state_kb"]

    def test_numapte_has_no_state_queue_metric(self):
        from repro.workloads.microbench import run_memoverhead

        result = run_memoverhead("numapte", cores=4, reps=6)
        assert "latr_state_kb" not in result.metrics
