"""Transparent huge pages (paper section 7 extension).

Covers: contiguous frame allocation, PD-level page-table entries, the
split-TLB, MAP_HUGETLB-style mappings, huge munmap shootdowns under both
mechanisms, khugepaged collapse (with its compaction fallback), and the
reuse invariant across a lazy huge-range shootdown.
"""

import pytest

from repro import build_system
from repro.kernel.compaction import Compactor
from repro.kernel.invariants import check_all, check_no_stale_entries_for, check_tlb_frame_safety
from repro.kernel.thp import Khugepaged
from repro.mm.addr import HUGE_PAGE_PAGES, HUGE_PAGE_SIZE, PAGE_SIZE, VirtRange
from repro.mm.frames import FrameAllocator, FrameAllocatorError
from repro.mm.pagetable import PageTable
from repro.mm.pte import make_huge_pte, make_present_pte
from repro.hw.tlb import Tlb, TlbEntry, entry_pfn
from repro.sim.engine import MSEC

from helpers import make_proc, run_to_completion, drain


class TestContiguousAllocation:
    def test_aligned_run(self):
        frames = FrameAllocator(nodes=1, frames_per_node=2048)
        base = frames.alloc_contiguous(512, node=0)
        assert base % 512 == 0
        for i in range(512):
            assert frames.refcount(base + i) == 1

    def test_fragmentation_detected(self):
        frames = FrameAllocator(nodes=1, frames_per_node=1024)
        # Poke a hole in every aligned candidate run.
        pinned = [frames.alloc(0) for _ in range(1)]
        a = frames.alloc_contiguous(512, node=0)  # second half still free?
        # frames 0 was taken, so the run [0,512) is broken; [512,1024) works.
        assert a == 512
        with pytest.raises(FrameAllocatorError):
            frames.alloc_contiguous(512, node=0)

    def test_contiguous_run_available(self):
        frames = FrameAllocator(nodes=1, frames_per_node=1024)
        assert frames.contiguous_run_available(512, 0)
        frames.alloc(0)
        frames.alloc_contiguous(512, node=0)
        assert not frames.contiguous_run_available(512, 0)

    def test_count_validation(self):
        frames = FrameAllocator(1, 16)
        with pytest.raises(ValueError):
            frames.alloc_contiguous(0)


class TestHugePageTable:
    def test_set_and_walk_any_covered_vpn(self):
        pt = PageTable()
        pt.set_huge_pte(1024, make_huge_pte(4096))
        assert pt.walk(1024).huge
        assert pt.walk(1024 + 511).pfn == 4096
        assert pt.walk(1024 + 512) is None

    def test_alignment_enforced(self):
        pt = PageTable()
        with pytest.raises(ValueError):
            pt.set_huge_pte(100, make_huge_pte(0))

    def test_requires_huge_flag(self):
        pt = PageTable()
        with pytest.raises(ValueError):
            pt.set_huge_pte(512, make_present_pte(1))

    def test_blocked_by_4k_entry(self):
        pt = PageTable()
        pt.set_pte(1030, make_present_pte(7))
        with pytest.raises(ValueError):
            pt.set_huge_pte(1024, make_huge_pte(0))

    def test_4k_blocked_under_huge(self):
        pt = PageTable()
        pt.set_huge_pte(1024, make_huge_pte(0))
        with pytest.raises(ValueError):
            pt.set_pte(1030, make_present_pte(7))

    def test_clear_huge(self):
        pt = PageTable()
        pt.set_huge_pte(512, make_huge_pte(0))
        assert pt.clear_huge_pte(512).huge
        assert pt.walk(600) is None
        assert pt.clear_huge_pte(512) is None

    def test_huge_in_range_full_containment_only(self):
        pt = PageTable()
        pt.set_huge_pte(512, make_huge_pte(0))
        full = VirtRange.from_pages(512, 512)
        partial = VirtRange.from_pages(512, 256)
        assert len(list(pt.huge_in_range(full))) == 1
        assert list(pt.huge_in_range(partial)) == []

    def test_entries_in_range_yields_huge_once(self):
        pt = PageTable()
        pt.set_huge_pte(512, make_huge_pte(0))
        vr = VirtRange.from_pages(512, 512)
        entries = list(pt.entries_in_range(vr))
        assert len(entries) == 1
        assert entries[0][0] == 512 and entries[0][1].huge


class TestHugeTlb:
    def test_huge_fill_covers_span(self):
        tlb = Tlb(capacity=4, huge_capacity=2)
        tlb.fill_huge(1, 512, TlbEntry(pfn=100))
        assert entry_pfn(tlb.lookup(1, 512)) == 100
        assert entry_pfn(tlb.lookup(1, 900)) == 100
        assert tlb.lookup(1, 1024) is None

    def test_unaligned_huge_fill_rejected(self):
        tlb = Tlb(capacity=4)
        with pytest.raises(ValueError):
            tlb.fill_huge(1, 5, TlbEntry(pfn=0))

    def test_separate_capacities(self):
        tlb = Tlb(capacity=2, huge_capacity=1)
        tlb.fill_huge(1, 0, TlbEntry(pfn=1))
        tlb.fill_huge(1, 512, TlbEntry(pfn=2))
        assert tlb.peek(1, 0) is None  # evicted from the 1-entry huge array
        assert tlb.peek(1, 600) is not None
        assert tlb.evictions == 1

    def test_invalidate_range_drops_overlapping_huge(self):
        tlb = Tlb(capacity=4)
        tlb.fill_huge(1, 512, TlbEntry(pfn=1))
        # A range overlapping any part of the huge span kills the entry.
        dropped = tlb.invalidate_range(1, 700, 701)
        assert dropped == 1
        assert tlb.peek(1, 512) is None

    def test_invalidate_page_hits_huge(self):
        tlb = Tlb(capacity=4)
        tlb.fill_huge(1, 512, TlbEntry(pfn=1))
        assert tlb.invalidate_page(1, 777)
        assert tlb.peek(1, 512) is None

    def test_flush_clears_both_arrays(self):
        tlb = Tlb(capacity=4)
        tlb.fill(1, 3, TlbEntry(pfn=0))
        tlb.fill_huge(1, 512, TlbEntry(pfn=1))
        assert tlb.flush() == 2
        assert len(tlb) == 0


class TestHugeMappings:
    def test_mmap_huge_alignment_and_single_fault(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(
                t0, c0, HUGE_PAGE_SIZE, huge=True
            )
            assert vrange.start % HUGE_PAGE_SIZE == 0
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            out["vrange"] = vrange

        run_to_completion(system, body())
        # One huge fault covered all 512 pages.
        assert system.stats.counter("faults.huge").value == 1
        assert system.stats.counter("faults.total").value == 1
        assert proc.mm.page_table.huge_count() == 1
        # One huge TLB entry serves the whole range.
        c0 = kernel.machine.core(0)
        assert len(list(c0.tlb.huge_items())) == 1
        assert check_all(kernel) == []

    def test_huge_fallback_to_4k_when_fragmented(self):
        system = build_system("latr", cores=1, frames_per_node=1024)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        # Fragment node 0: break every aligned 512-run.
        pinned = [kernel.frames.alloc(0) for _ in range(1)]
        kernel.frames.alloc_contiguous(512, node=0)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, HUGE_PAGE_SIZE, huge=True)
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)

        run_to_completion(system, body())
        assert system.stats.counter("thp.alloc_fallbacks").value == 1
        assert system.stats.counter("faults.minor-anon").value == 1
        assert proc.mm.page_table.huge_count() == 0

    @pytest.mark.parametrize("mech", ["linux", "latr"])
    def test_huge_munmap_shootdown(self, mech):
        system = build_system(mech, cores=4)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, HUGE_PAGE_SIZE, huge=True)
            for t in tasks:
                core = kernel.machine.core(t.home_core_id)
                yield from kernel.syscalls.access(t, core, vrange.start)
            out["free_before"] = kernel.frames.free_count()
            yield from kernel.syscalls.munmap(t0, c0, vrange)
            out["vrange"] = vrange

        run_to_completion(system, body())
        drain(system, ms=4)
        vrange = out["vrange"]
        # All 512 frames came back and no TLB (4K or huge) still maps them.
        assert kernel.frames.free_count() == out["free_before"] + HUGE_PAGE_PAGES
        assert check_no_stale_entries_for(kernel, proc.mm, vrange) == []
        for core in kernel.machine.cores:
            assert list(core.tlb.huge_items()) == []
        assert check_all(kernel) == []

    def test_lazy_huge_shootdown_pins_all_512_frames(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            vrange = yield from kernel.syscalls.mmap(t0, c0, HUGE_PAGE_SIZE, huge=True)
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)
            yield from kernel.syscalls.access(t1, c1, vrange.start)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        # Until reclamation, the whole 2 MiB stays pinned.
        assert len(proc.mm.lazy_frames) == HUGE_PAGE_PAGES
        assert check_tlb_frame_safety(kernel) == []
        drain(system, ms=4)
        assert proc.mm.lazy_frames == []


class TestKhugepaged:
    def _populated_system(self, mech="latr", pages=HUGE_PAGE_PAGES):
        system = build_system(mech, cores=2)
        kernel = system.kernel
        khugepaged = Khugepaged.install(kernel, scan_period_ns=5 * MSEC)
        proc, tasks = make_proc(system)
        khugepaged.register(proc)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, pages * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            out["vrange"] = vrange

        run_to_completion(system, body())
        return system, kernel, proc, tasks, out["vrange"]

    @pytest.mark.parametrize("mech", ["linux", "latr"])
    def test_collapse_happens(self, mech):
        system, kernel, proc, tasks, vrange = self._populated_system(mech)
        system.sim.run(until=system.sim.now + 40 * MSEC)
        assert kernel.stats.counter("thp.collapses").value == 1
        assert proc.mm.page_table.huge_count() == 1
        # The 512 old frames were freed after the (lazy) invalidation.
        assert kernel.stats.counter("thp.frames_freed").value == HUGE_PAGE_PAGES
        assert check_all(kernel) == []

    def test_unaligned_vma_not_collapsed(self):
        system, kernel, proc, tasks, vrange = self._populated_system(
            pages=HUGE_PAGE_PAGES // 2
        )
        system.sim.run(until=system.sim.now + 40 * MSEC)
        assert kernel.stats.counter("thp.collapses").value == 0

    def test_access_still_works_after_collapse(self):
        system, kernel, proc, tasks, vrange = self._populated_system()
        system.sim.run(until=system.sim.now + 40 * MSEC)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange)

        run_to_completion(system, body())
        # Served by the single huge TLB entry -- at most a couple of misses.
        c0 = kernel.machine.core(0)
        assert len(list(c0.tlb.huge_items())) == 1
        assert check_all(kernel) == []

    def test_collapse_triggers_compaction_when_fragmented(self):
        system = build_system("latr", cores=2, frames_per_node=2608)
        kernel = system.kernel
        compactor = Compactor.install(kernel)
        khugepaged = Khugepaged.install(kernel, scan_period_ns=5 * MSEC)
        proc, tasks = make_proc(system)
        compactor.register(proc)
        khugepaged.register(proc)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            # Interleaved keep/free mappings fragment every aligned 512-run
            # on node 0 (the classic anti-THP pattern).
            pieces = []
            for _ in range(8):
                piece = yield from kernel.syscalls.mmap(t0, c0, 256 * PAGE_SIZE)
                yield from kernel.syscalls.touch_pages(t0, c0, piece, write=True)
                pieces.append(piece)
            # Candidate range to collapse, allocated after the filler so its
            # frames sit above the fragmented region.
            victim = yield from kernel.syscalls.mmap(t0, c0, HUGE_PAGE_PAGES * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, victim, write=True)
            for piece in pieces[1::2]:
                yield from kernel.syscalls.munmap(t0, c0, piece)

        run_to_completion(system, body(), timeout_ms=5_000)
        assert not kernel.frames.contiguous_run_available(HUGE_PAGE_PAGES, 0)
        system.sim.run(until=system.sim.now + 120 * MSEC)
        assert kernel.stats.counter("thp.compactions_triggered").value >= 1
        assert kernel.stats.counter("thp.collapses").value >= 1
        assert check_all(kernel) == []
