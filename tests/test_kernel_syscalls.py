"""Kernel syscall and page-fault behaviour."""

import pytest

from repro import build_system
from repro.kernel.invariants import check_all
from repro.mm.addr import PAGE_SIZE, vpn_of
from repro.mm.fault import FaultKind, SegmentationFault
from repro.mm.vma import Prot, VmaKind

from helpers import make_proc, run_to_completion, drain


class TestMmapMunmap:
    def test_mmap_creates_vma_without_pages(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 3 * PAGE_SIZE)
            assert len(proc.mm.vmas) == 1
            assert len(proc.mm.page_table) == 0  # demand paging
            return vrange

        run_to_completion(system, body())

    def test_populate_faults_everything_in(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE, populate=True)

        run_to_completion(system, body())
        assert len(proc.mm.page_table) == 4
        assert system.stats.counter("faults.minor-anon").value == 4

    def test_munmap_of_partially_populated_range(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 4 * PAGE_SIZE)
            yield from kernel.syscalls.access(t0, c0, vrange.start)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert len(proc.mm.page_table) == 0
        assert len(proc.mm.vmas) == 0
        assert check_all(kernel) == []

    def test_access_unmapped_segfaults(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            yield from kernel.syscalls.access(t0, c0, 0xDEAD000)

        system.sim.spawn(body())
        with pytest.raises(SegmentationFault):
            drain(system, ms=10)

    def test_write_to_readonly_vma_segfaults(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, prot=Prot.ro())
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)

        system.sim.spawn(body())
        with pytest.raises(SegmentationFault):
            drain(system, ms=10)

    def test_madvise_keeps_vma_refault_gets_fresh_page(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)
            out["pfn1"] = proc.mm.page_table.walk(vrange.vpn_start).pfn
            yield from kernel.syscalls.madvise_dontneed(t0, c0, vrange)
            assert len(proc.mm.vmas) == 1  # VMA survives
            assert proc.mm.page_table.walk(vrange.vpn_start) is None
            # Re-touch: demand-zero again.
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)
            out["pfn2"] = proc.mm.page_table.walk(vrange.vpn_start).pfn

        run_to_completion(system, body())
        assert system.stats.counter("sys.madvise").value == 1
        assert system.stats.counter("faults.minor-anon").value == 2


class TestFileMappings:
    def test_file_pages_shared_via_page_cache(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc_a, tasks_a = make_proc(system, n_threads=1, name="a")
        proc_b = kernel.create_process("b")
        task_b = kernel.spawn_thread(proc_b, "t0", 1)
        pfns = {}

        def body():
            t0, c0 = tasks_a[0], kernel.machine.core(0)
            ra = yield from kernel.syscalls.mmap(
                t0, c0, PAGE_SIZE, kind=VmaKind.FILE, file_key="index.html"
            )
            yield from kernel.syscalls.access(t0, c0, ra.start)
            pfns["a"] = proc_a.mm.page_table.walk(ra.vpn_start).pfn

            c1 = kernel.machine.core(1)
            rb = yield from kernel.syscalls.mmap(
                task_b, c1, PAGE_SIZE, kind=VmaKind.FILE, file_key="index.html"
            )
            yield from kernel.syscalls.access(task_b, c1, rb.start)
            pfns["b"] = proc_b.mm.page_table.walk(rb.vpn_start).pfn

        run_to_completion(system, body())
        assert pfns["a"] == pfns["b"]
        assert kernel.page_cache.fills == 1
        assert kernel.page_cache.hits >= 1
        # Cache + two mappings hold references.
        assert kernel.frames.refcount(pfns["a"]) == 3

    def test_first_touch_is_major_fault(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(
                t0, c0, 2 * PAGE_SIZE, kind=VmaKind.FILE, file_key="f"
            )
            yield from kernel.syscalls.touch_pages(t0, c0, vrange)

        run_to_completion(system, body())
        assert system.stats.counter("faults.major-file").value == 2

    def test_munmap_file_pages_stay_cached(self):
        system = build_system("linux", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(
                t0, c0, PAGE_SIZE, kind=VmaKind.FILE, file_key="f"
            )
            yield from kernel.syscalls.access(t0, c0, vrange.start)
            yield from kernel.syscalls.munmap(t0, c0, vrange)

        run_to_completion(system, body())
        assert kernel.page_cache.cached_pages() == 1
        assert check_all(kernel) == []

    def test_file_mapping_requires_key(self):
        system = build_system("latr", cores=1)
        proc, tasks = make_proc(system)
        gen = system.kernel.syscalls.mmap(
            tasks[0], system.kernel.machine.core(0), PAGE_SIZE, kind=VmaKind.FILE
        )
        with pytest.raises(ValueError):
            next(gen)


class TestCowAndFork:
    def test_fork_shares_then_cow_breaks(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system, n_threads=1)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 2 * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            shared_pfn = proc.mm.page_table.walk(vrange.vpn_start).pfn

            child = yield from kernel.syscalls.fork(t0, c0, "child")
            child_task = kernel.spawn_thread(child, "t0", 1)
            c1 = kernel.machine.core(1)
            # Both sides read-share the same frame.
            assert child.mm.page_table.walk(vrange.vpn_start).pfn == shared_pfn
            assert kernel.frames.refcount(shared_pfn) == 2

            # Child write -> CoW break gives it a private copy.
            result = yield from kernel.syscalls.access(
                child_task, c1, vrange.start, write=True
            )
            out["kind"] = result.kind
            out["child_pfn"] = child.mm.page_table.walk(vrange.vpn_start).pfn
            out["parent_pfn"] = proc.mm.page_table.walk(vrange.vpn_start).pfn
            out["shared_pfn"] = shared_pfn

        run_to_completion(system, body())
        assert out["kind"] is FaultKind.COW_BREAK
        assert out["child_pfn"] != out["shared_pfn"]
        assert out["parent_pfn"] == out["shared_pfn"]
        assert system.stats.counter("shootdown.sync.cow").value >= 1
        assert check_all(system.kernel) == []

    def test_cow_sole_owner_upgrades_in_place(self):
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system, n_threads=1)
        out = {}

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange, write=True)
            pfn = proc.mm.page_table.walk(vrange.vpn_start).pfn

            child = yield from kernel.syscalls.fork(t0, c0, "child")
            # Unmap the child's copy: parent becomes sole owner again.
            child_task = kernel.spawn_thread(child, "t0", 1)
            c1 = kernel.machine.core(1)
            yield from kernel.syscalls.munmap(child_task, c1, vrange)
            yield from kernel.syscalls.access(t0, c0, vrange.start, write=True)
            out["pfn_after"] = proc.mm.page_table.walk(vrange.vpn_start).pfn
            out["pfn_before"] = pfn

        run_to_completion(system, body())
        drain(system, ms=5)
        assert out["pfn_after"] == out["pfn_before"]  # no copy needed
        assert check_all(system.kernel) == []


class TestMprotect:
    def test_mprotect_splits_vma(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, 6 * PAGE_SIZE)
            from repro.mm.addr import VirtRange

            middle = VirtRange(vrange.start + 2 * PAGE_SIZE, vrange.start + 4 * PAGE_SIZE)
            yield from kernel.syscalls.mprotect(t0, c0, middle, Prot.ro())
            assert len(proc.mm.vmas) == 3
            assert proc.mm.vmas.find(middle.start).prot == Prot.ro()
            assert proc.mm.vmas.find(vrange.start).prot == Prot.rw()

        run_to_completion(system, body())

    def test_mprotect_downgrades_ptes(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE, populate=True)
            assert proc.mm.page_table.walk(vrange.vpn_start).writable
            yield from kernel.syscalls.mprotect(t0, c0, vrange, Prot.ro())
            assert not proc.mm.page_table.walk(vrange.vpn_start).writable

        run_to_completion(system, body())


class TestTlbInteraction:
    def test_touch_fills_tlb_second_touch_hits(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, PAGE_SIZE)
            yield from kernel.syscalls.access(t0, c0, vrange.start)
            misses = c0.tlb.misses
            yield from kernel.syscalls.access(t0, c0, vrange.start)
            assert c0.tlb.misses == misses
            assert c0.tlb.hits >= 1

        run_to_completion(system, body())

    def test_tlb_capacity_pressure_evicts(self):
        system = build_system("latr", cores=1)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        capacity = kernel.machine.spec.l1_dtlb_entries

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            vrange = yield from kernel.syscalls.mmap(t0, c0, (capacity + 16) * PAGE_SIZE)
            yield from kernel.syscalls.touch_pages(t0, c0, vrange)
            assert len(c0.tlb) == capacity
            assert c0.tlb.evictions == 16

        run_to_completion(system, body())
