"""LLC disturbance model and deterministic RNG streams."""

import pytest

from repro.hw.cache import POLLUTION_MISS_CONVERSION, CacheProfile, LlcModel
from repro.hw.machine import Machine
from repro.hw.spec import COMMODITY_2S16C, LARGE_NUMA_8S120C
from repro.sim.engine import SEC, Simulator
from repro.sim.rng import RngStreams
from repro.sim.stats import StatsRegistry


def make_llc(spec=COMMODITY_2S16C):
    sim = Simulator()
    machine = Machine(sim, spec)
    return sim, machine.llc


class TestLlcModel:
    def test_state_footprint_under_one_percent(self):
        """Paper 4.1: LATR states occupy <1% of the LLC on 32 cores and
        <1.3% even on very large machines."""
        _, llc16 = make_llc(COMMODITY_2S16C)
        assert llc16.state_footprint_fraction < 0.01
        _, llc120 = make_llc(LARGE_NUMA_8S120C)
        assert llc120.state_footprint_fraction < 0.013

    def test_miss_ratio_baseline_without_disturbance(self):
        sim, llc = make_llc()
        llc.start_window()
        profile = CacheProfile(accesses_per_sec_per_core=1e8, baseline_miss_pct=5.0)
        sim.after(SEC // 10, lambda: None)
        sim.run()
        assert llc.miss_ratio(profile, active_cores=16) == pytest.approx(5.0)

    def test_pollution_raises_miss_ratio(self):
        sim, llc = make_llc()
        llc.start_window()
        profile = CacheProfile(accesses_per_sec_per_core=1e8, baseline_miss_pct=5.0)
        llc.record_interrupt_pollution(10_000_000)
        sim.after(SEC // 10, lambda: None)
        sim.run()
        ratio = llc.miss_ratio(profile, active_cores=16)
        expected_extra = 100.0 * 10_000_000 * POLLUTION_MISS_CONVERSION / (1e8 * 16 * 0.1)
        assert ratio == pytest.approx(5.0 + expected_extra)

    def test_window_reset_clears_counts(self):
        sim, llc = make_llc()
        llc.record_state_traffic(500)
        llc.start_window()
        assert llc.summary()["state_lines"] == 0.0

    def test_zero_accesses_returns_baseline(self):
        sim, llc = make_llc()
        llc.start_window()
        profile = CacheProfile(accesses_per_sec_per_core=0.0, baseline_miss_pct=7.0)
        llc.record_interrupt_pollution(100)
        sim.after(100, lambda: None)
        sim.run()
        assert llc.miss_ratio(profile, active_cores=16) == 7.0


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        rng = RngStreams(1)
        assert rng.stream("a") is rng.stream("a")

    def test_reproducible_across_factories(self):
        a = RngStreams(42).stream("x")
        b = RngStreams(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_independent(self):
        """Draws from one stream don't perturb another."""
        rng1 = RngStreams(7)
        s_then = rng1.stream("victim")
        baseline = [s_then.random() for _ in range(3)]

        rng2 = RngStreams(7)
        other = rng2.stream("noisy")
        [other.random() for _ in range(100)]  # heavy use of another stream
        again = [rng2.stream("victim").random() for _ in range(3)]
        assert baseline == again

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").random()
        b = RngStreams(2).stream("x").random()
        assert a != b

    def test_fork_derives_new_space(self):
        parent = RngStreams(9)
        child = parent.fork("worker")
        assert child.stream("x").random() != parent.stream("x").random()
        # Forks are themselves reproducible.
        again = RngStreams(9).fork("worker")
        assert RngStreams(9).fork("worker").stream("x").random() == again.stream("x").random()
