"""CLI error paths and plumbing edge cases for ``python -m repro``."""

from repro.cli import main


def _tables(text):
    """Rendered output minus the bracketed timing lines."""
    return [line for line in text.splitlines() if not line.startswith("[")]


class TestErrorPaths:
    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["definitely-not-an-experiment"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_fuzz_unknown_mutation_exits_2(self, capsys):
        assert main(["fuzz", "--mutate", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown mutation" in err
        # The error names the valid mutations so the flag is discoverable.
        assert "reclaim_delay_zero" in err

    def test_mc_unknown_mutation_exits_2(self, capsys):
        assert main(["mc", "--mutate", "bogus"]) == 2
        assert "unknown mutation" in capsys.readouterr().err

    def test_mc_scope_bounds_exit_2(self, capsys):
        for argv in (
            ["mc", "--cores", "5"],
            ["mc", "--cores", "0"],
            ["mc", "--pages", "4"],
            ["mc", "--pages", "0"],
            ["mc", "--ops", "11"],
        ):
            assert main(argv) == 2, argv
            assert "small-scope" in capsys.readouterr().err


class TestJobsPlumbing:
    def test_jobs_on_single_cell_experiment_matches_serial(self, capsys):
        # tab1 decomposes into exactly one cell; --jobs must still work
        # (the cell goes through the pool) and render identically.
        assert main(["tab1", "--fast"]) == 0
        serial = capsys.readouterr().out
        assert main(["tab1", "--fast", "--jobs", "2"]) == 0
        sharded = capsys.readouterr().out
        assert _tables(serial) == _tables(sharded)

    def test_list_exits_0_and_names_model_exhaust(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "model-exhaust" in out
