"""Regression tests for the stats-accounting fixes: lazy migration latency,
cross-mechanism shootdown.initiated agreement, CSV row shape, and the
percentile sort cache."""

from __future__ import annotations

import csv
import io

from helpers import drain, make_proc, run_to_completion

from repro import build_system
from repro.experiments.runner import ExperimentResult
from repro.mm.addr import PAGE_SIZE
from repro.sim.stats import LatencyRecorder


def _numa_hint_change(mm, vr):
    def apply_change():
        for vpn in vr.vpns():
            pte = mm.page_table.walk(vpn)
            if pte is not None and pte.present:
                mm.page_table.update_pte(vpn, pte.make_numa_hint())

    return apply_change


class TestLazyMigrationLatency:
    def test_lazy_completion_records_shootdown_migration_latency(self):
        # Before the fix only the queue-full IPI fallback recorded
        # shootdown.migration; the normal lazy path (sweeps empty the
        # bitmask) recorded nothing.
        system = build_system("latr", cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        sc = kernel.syscalls

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            vr = yield from sc.mmap(t0, c0, PAGE_SIZE)
            yield from sc.touch_pages(t0, c0, vr, write=True)
            yield from sc.touch_pages(t1, c1, vr)
            yield from kernel.coherence.migration_unmap(
                c0, proc.mm, vr, _numa_hint_change(proc.mm, vr)
            )

        run_to_completion(system, body())
        drain(system, ms=5)  # every core sweeps within one 1 ms tick
        assert system.stats.counter("latr.fallback_ipi").value == 0
        rec = system.stats.latency("shootdown.migration")
        assert rec.count == 1
        # Lazy completion takes until the *last* addressed core sweeps --
        # a real (sub-tick-scale) latency, not an instantaneous fallback.
        assert 0 < rec.mean <= 2_000_000


class TestInitiatedAgreement:
    def _run_ops(self, mechanism):
        system = build_system(mechanism, cores=2)
        kernel = system.kernel
        proc, tasks = make_proc(system)
        sc = kernel.syscalls

        def body():
            t0, c0 = tasks[0], kernel.machine.core(0)
            t1, c1 = tasks[1], kernel.machine.core(1)
            # One munmap with a remote sharer, one with no remote targets
            # (the fast path that used to be silently uncounted), and one
            # migration-class unmap.
            vr = yield from sc.mmap(t0, c0, PAGE_SIZE)
            yield from sc.touch_pages(t0, c0, vr, write=True)
            yield from sc.touch_pages(t1, c1, vr)
            yield from sc.munmap(t0, c0, vr)
            vr = yield from sc.mmap(t0, c0, PAGE_SIZE)
            yield from sc.touch_pages(t0, c0, vr, write=True)
            yield from sc.munmap(t0, c0, vr)
            vr = yield from sc.mmap(t0, c0, PAGE_SIZE)
            yield from sc.touch_pages(t0, c0, vr, write=True)
            yield from sc.touch_pages(t1, c1, vr)
            yield from kernel.coherence.migration_unmap(
                c0, proc.mm, vr, _numa_hint_change(proc.mm, vr)
            )

        run_to_completion(system, body())
        drain(system, ms=6)
        return system.stats.counter("shootdown.initiated").value

    def test_linux_and_latr_count_the_same_ops(self):
        linux = self._run_ops("linux")
        latr = self._run_ops("latr")
        assert linux == latr == 3


class TestCsvShape:
    def test_to_csv_pads_and_truncates_to_header_count(self):
        result = ExperimentResult(
            exp_id="x",
            title="ragged",
            headers=("a", "b", "c"),
            rows=[(1,), (1, 2, 3, 4), ("x", "y", "z")],
        )
        rows = list(csv.reader(io.StringIO(result.to_csv())))
        assert rows[0] == ["a", "b", "c"]
        assert all(len(row) == 3 for row in rows)
        assert rows[1] == ["1", "", ""]
        assert rows[2] == ["1", "2", "3"]


class TestPercentileCache:
    def test_record_invalidates_cached_sort(self):
        rec = LatencyRecorder("x")
        for v in (30, 10, 20):
            rec.record(v)
        assert rec.percentile(50) == 20.0
        assert rec.percentile(100) == 30.0
        rec.record(5)  # must invalidate the cached order
        assert rec.percentile(0) == 5.0
        assert rec.percentile(100) == 30.0

    def test_direct_sample_append_is_still_seen(self):
        # Some tests poke ``samples`` directly; the length guard re-sorts.
        rec = LatencyRecorder("x")
        rec.record(10)
        assert rec.percentile(100) == 10.0
        rec.samples.append(50)
        assert rec.percentile(100) == 50.0
