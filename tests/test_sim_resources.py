"""Unit tests for locks, semaphores and channels."""

import pytest

from repro.sim.engine import SimulationError, Simulator, Timeout
from repro.sim.resources import Channel, Lock, Semaphore


class TestLock:
    def test_uncontended_acquire_is_immediate(self):
        sim = Simulator()
        lock = Lock(sim)
        sig = lock.acquire()
        assert sig.triggered
        assert lock.locked

    def test_contended_acquire_waits_for_release(self):
        sim = Simulator()
        lock = Lock(sim)
        order = []

        def holder():
            yield lock.acquire()
            order.append(("holder", sim.now))
            yield Timeout(50)
            lock.release()

        def waiter():
            yield Timeout(1)
            yield lock.acquire()
            order.append(("waiter", sim.now))
            lock.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert order == [("holder", 0), ("waiter", 50)]

    def test_fifo_ordering(self):
        sim = Simulator()
        lock = Lock(sim)
        order = []

        def worker(tag, start):
            yield Timeout(start)
            yield lock.acquire()
            order.append(tag)
            yield Timeout(10)
            lock.release()

        for i, tag in enumerate("abcd"):
            sim.spawn(worker(tag, i))
        sim.run()
        assert order == ["a", "b", "c", "d"]

    def test_release_unheld_raises(self):
        sim = Simulator()
        lock = Lock(sim)
        with pytest.raises(SimulationError):
            lock.release()

    def test_contention_accounting(self):
        sim = Simulator()
        lock = Lock(sim)

        def worker():
            yield lock.acquire()
            yield Timeout(10)
            lock.release()

        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        assert lock.acquisitions == 2
        assert lock.contended_acquisitions == 1


class TestSemaphore:
    def test_capacity_enforced(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=2)
        concurrent = []
        peak = []

        def worker():
            yield sem.acquire()
            concurrent.append(1)
            peak.append(len(concurrent))
            yield Timeout(10)
            concurrent.pop()
            sem.release()

        for _ in range(5):
            sim.spawn(worker())
        sim.run()
        assert max(peak) == 2

    def test_bad_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Semaphore(Simulator(), capacity=0)

    def test_release_idle_raises(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=1)
        with pytest.raises(SimulationError):
            sem.release()

    def test_available_tracks_usage(self):
        sim = Simulator()
        sem = Semaphore(sim, capacity=3)
        sem.acquire()
        sem.acquire()
        assert sem.available == 1


class TestChannel:
    def test_put_then_get(self):
        sim = Simulator()
        chan = Channel(sim)
        chan.put("x")
        got = []

        def reader():
            value = yield chan.get()
            got.append(value)

        sim.spawn(reader())
        sim.run()
        assert got == ["x"]

    def test_get_then_put_wakes_reader(self):
        sim = Simulator()
        chan = Channel(sim)
        got = []

        def reader():
            value = yield chan.get()
            got.append((sim.now, value))

        sim.spawn(reader())
        sim.after(25, chan.put, "late")
        sim.run()
        assert got == [(25, "late")]

    def test_fifo_order(self):
        sim = Simulator()
        chan = Channel(sim)
        for i in range(3):
            chan.put(i)
        got = []

        def reader():
            for _ in range(3):
                got.append((yield chan.get()))

        sim.spawn(reader())
        sim.run()
        assert got == [0, 1, 2]

    def test_try_get(self):
        sim = Simulator()
        chan = Channel(sim)
        assert chan.try_get() is None
        chan.put(9)
        assert chan.try_get() == 9
        assert len(chan) == 0

    def test_put_count(self):
        sim = Simulator()
        chan = Channel(sim)
        chan.put(1)
        chan.put(2)
        assert chan.put_count == 2
